//===- serial/Serial.cpp - RichWasm binary module format ------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// One structural walk (walkModule below) drives both serialization and
// content hashing through an emitter interface: the write emitter assigns
// type-table indices on first encounter (registering children before
// parents, so the table is topologically ordered) and streams varints; the
// hash emitter folds each type reference's precomputed Merkle hash in O(1)
// without descending. Keeping a single walk is what guarantees the
// cache-key invariant: moduleHash(A) == moduleHash(B) exactly when
// write(A) == write(B) (modulo 128-bit collisions).
//
//===----------------------------------------------------------------------===//

#include "serial/Serial.h"

#include "ir/TypeArena.h"
#include "obs/Obs.h"
#include "support/Casting.h"
#include "support/Hashing.h"
#include "support/LEB128.h"

#include <cassert>
#include <cstring>
#include <functional>
#include <unordered_map>
#include <unordered_set>

using namespace rw;
using namespace rw::serial;
using namespace rw::ir;

namespace {

//===----------------------------------------------------------------------===//
// Wire constants
//===----------------------------------------------------------------------===//

constexpr uint8_t Magic[4] = {'R', 'W', 'B', 'M'};

/// Node record tags. Pretype/heap-type tags embed the kind so the reader
/// dispatches on one byte.
constexpr uint8_t TagSize = 0x01;
constexpr uint8_t TagPre = 0x10;  ///< 0x10 + PretypeKind.
constexpr uint8_t TagHeap = 0x30; ///< 0x30 + HeapTypeKind.
constexpr uint8_t TagFun = 0x40;

/// Node categories, for reference validation.
enum class Cat : uint8_t { Size, Pre, Heap, Fun };

/// Nesting bound for instruction decoding: IR from the frontends nests per
/// syntactic block depth (tens), so this only guards against maliciously
/// deep input overflowing the reader's C++ stack.
constexpr unsigned MaxInstDepth = 2048;

using support::fnv1a;
using support::mix64;

//===----------------------------------------------------------------------===//
// Low-level buffer writers (used for both node records and the body)
//===----------------------------------------------------------------------===//

void wU(std::vector<uint8_t> &B, uint64_t V) { encodeULEB128(V, B); }

void wStr(std::vector<uint8_t> &B, const std::string &S) {
  wU(B, S.size());
  B.insert(B.end(), S.begin(), S.end());
}

/// Qualifier: 0 = unr, 1 = lin, 2+i = variable i.
void wQual(std::vector<uint8_t> &B, const Qual &Q) {
  wU(B, Q.isVar() ? 2 + uint64_t(Q.varIndex()) : (Q.isLinConst() ? 1 : 0));
}

void wLoc(std::vector<uint8_t> &B, const Loc &L) {
  switch (L.kind()) {
  case Loc::Kind::Var:
    wU(B, 0);
    wU(B, L.varIndex());
    break;
  case Loc::Kind::Concrete:
    wU(B, 1);
    wU(B, L.mem() == MemKind::Lin ? 0 : 1);
    wU(B, L.addr());
    break;
  case Loc::Kind::Skolem:
    wU(B, 2);
    wU(B, L.skolemId());
    break;
  }
}

//===----------------------------------------------------------------------===//
// Write emitter: type-table registration + body stream
//===----------------------------------------------------------------------===//

class WriteEmitter {
public:
  std::vector<uint8_t> Nodes; ///< Node records, in index order.
  std::vector<uint8_t> Body;  ///< Module record.
  uint32_t NodeCount = 0;

  void u(uint64_t V) { wU(Body, V); }
  void str(const std::string &S) { wStr(Body, S); }
  void qual(const Qual &Q) { wQual(Body, Q); }
  void loc(const Loc &L) { wLoc(Body, L); }
  void pre(const PretypeRef &P) { wU(Body, addPre(P)); }
  void heap(const HeapTypeRef &H) { wU(Body, addHeap(H)); }
  void fun(const FunTypeRef &F) { wU(Body, addFun(F)); }
  /// Optional size: 0 = null, else table index + 1.
  void size(const SizeRef &S) { wU(Body, S ? addSize(S) + 1 : 0); }
  void type(const Type &T) {
    pre(T.P);
    qual(T.Q);
  }

private:
  /// Pointer-keyed memo: every canonical node is registered once. (A
  /// module mixing arenas would emit structurally equal nodes twice and
  /// be rejected as a duplicate at read — but mixed-arena modules are
  /// already rejected by the checker, linker, and lowering.)
  std::unordered_map<const void *, uint32_t> Idx;

  uint32_t emit(const void *Key, uint8_t Tag,
                const std::function<void(std::vector<uint8_t> &)> &Fields);

  uint32_t addSize(const SizeRef &S);
  uint32_t addPre(const PretypeRef &P);
  uint32_t addHeap(const HeapTypeRef &H);
  uint32_t addFun(const FunTypeRef &F);

  void fType(std::vector<uint8_t> &B, const Type &T) {
    wU(B, addPre(T.P));
    wQual(B, T.Q);
  }
  void fOptSize(std::vector<uint8_t> &B, const SizeRef &S) {
    wU(B, S ? addSize(S) + 1 : 0);
  }
};

uint32_t
WriteEmitter::emit(const void *Key, uint8_t Tag,
                   const std::function<void(std::vector<uint8_t> &)> &Fields) {
  // Children are registered inside Fields, which runs into a scratch
  // buffer *before* this record is assigned its index — preserving
  // child-before-parent order in Nodes even though recursion happens
  // mid-record.
  std::vector<uint8_t> Rec;
  Rec.push_back(Tag);
  Fields(Rec);
  auto [It, New] = Idx.emplace(Key, 0);
  if (!New)
    return It->second; // A child walk registered it meanwhile.
  It->second = NodeCount++;
  Nodes.insert(Nodes.end(), Rec.begin(), Rec.end());
  return It->second;
}

uint32_t WriteEmitter::addSize(const SizeRef &S) {
  assert(S && "serializing a null size");
  auto It = Idx.find(S.get());
  if (It != Idx.end())
    return It->second;
  const NormalSize &N = S->norm();
  return emit(S.get(), TagSize, [&](std::vector<uint8_t> &B) {
    wU(B, N.Const);
    wU(B, N.Vars.size());
    for (uint32_t V : N.Vars)
      wU(B, V);
  });
}

uint32_t WriteEmitter::addPre(const PretypeRef &P) {
  assert(P && "serializing a null pretype");
  auto It = Idx.find(P.get());
  if (It != Idx.end())
    return It->second;
  uint8_t Tag = TagPre + static_cast<uint8_t>(P->kind());
  return emit(P.get(), Tag, [&](std::vector<uint8_t> &B) {
    switch (P->kind()) {
    case PretypeKind::Unit:
      break;
    case PretypeKind::Num:
      wU(B, static_cast<uint64_t>(cast<NumPT>(P.get())->numType()));
      break;
    case PretypeKind::Var:
      wU(B, cast<VarPT>(P.get())->index());
      break;
    case PretypeKind::Skolem: {
      const auto *S = cast<SkolemPT>(P.get());
      wU(B, S->id());
      wQual(B, S->qualLower());
      fOptSize(B, S->sizeUpper());
      wU(B, S->noCaps() ? 1 : 0);
      break;
    }
    case PretypeKind::Prod: {
      const auto &Es = cast<ProdPT>(P.get())->elems();
      wU(B, Es.size());
      for (const Type &T : Es)
        fType(B, T);
      break;
    }
    case PretypeKind::Ref:
    case PretypeKind::Cap: {
      Privilege Priv;
      const Loc *L;
      const HeapTypeRef *HT;
      if (const auto *R = dyn_cast<RefPT>(P.get())) {
        Priv = R->privilege();
        L = &R->loc();
        HT = &R->heapType();
      } else {
        const auto *C = cast<CapPT>(P.get());
        Priv = C->privilege();
        L = &C->loc();
        HT = &C->heapType();
      }
      wU(B, Priv == Privilege::RW ? 1 : 0);
      wLoc(B, *L);
      wU(B, addHeap(*HT));
      break;
    }
    case PretypeKind::Ptr:
      wLoc(B, cast<PtrPT>(P.get())->loc());
      break;
    case PretypeKind::Own:
      wLoc(B, cast<OwnPT>(P.get())->loc());
      break;
    case PretypeKind::Rec: {
      const auto *R = cast<RecPT>(P.get());
      wQual(B, R->bound());
      fType(B, R->body());
      break;
    }
    case PretypeKind::ExLoc:
      fType(B, cast<ExLocPT>(P.get())->body());
      break;
    case PretypeKind::Coderef:
      wU(B, addFun(cast<CoderefPT>(P.get())->funType()));
      break;
    }
  });
}

uint32_t WriteEmitter::addHeap(const HeapTypeRef &H) {
  assert(H && "serializing a null heap type");
  auto It = Idx.find(H.get());
  if (It != Idx.end())
    return It->second;
  uint8_t Tag = TagHeap + static_cast<uint8_t>(H->kind());
  return emit(H.get(), Tag, [&](std::vector<uint8_t> &B) {
    switch (H->kind()) {
    case HeapTypeKind::Variant: {
      const auto &Cs = cast<VariantHT>(H.get())->cases();
      wU(B, Cs.size());
      for (const Type &T : Cs)
        fType(B, T);
      break;
    }
    case HeapTypeKind::Struct: {
      const auto &Fs = cast<StructHT>(H.get())->fields();
      wU(B, Fs.size());
      for (const StructField &F : Fs) {
        fType(B, F.T);
        fOptSize(B, F.Slot);
      }
      break;
    }
    case HeapTypeKind::Array:
      fType(B, cast<ArrayHT>(H.get())->elem());
      break;
    case HeapTypeKind::Ex: {
      const auto *E = cast<ExHT>(H.get());
      wQual(B, E->qualLower());
      fOptSize(B, E->sizeUpper());
      fType(B, E->body());
      break;
    }
    }
  });
}

uint32_t WriteEmitter::addFun(const FunTypeRef &F) {
  assert(F && "serializing a null function type");
  auto It = Idx.find(F.get());
  if (It != Idx.end())
    return It->second;
  return emit(F.get(), TagFun, [&](std::vector<uint8_t> &B) {
    wU(B, F->quants().size());
    for (const Quant &Q : F->quants()) {
      wU(B, static_cast<uint64_t>(Q.K));
      switch (Q.K) {
      case QuantKind::Loc:
        break;
      case QuantKind::Size:
        wU(B, Q.SizeLower.size());
        for (const SizeRef &S : Q.SizeLower)
          fOptSize(B, S);
        wU(B, Q.SizeUpper.size());
        for (const SizeRef &S : Q.SizeUpper)
          fOptSize(B, S);
        break;
      case QuantKind::Qual:
        wU(B, Q.QualLower.size());
        for (const Qual &L : Q.QualLower)
          wQual(B, L);
        wU(B, Q.QualUpper.size());
        for (const Qual &U : Q.QualUpper)
          wQual(B, U);
        break;
      case QuantKind::Type:
        wQual(B, Q.TypeQualLower);
        fOptSize(B, Q.TypeSizeUpper);
        wU(B, Q.TypeNoCaps ? 1 : 0);
        break;
      }
    }
    wU(B, F->arrow().Params.size());
    for (const Type &T : F->arrow().Params)
      fType(B, T);
    wU(B, F->arrow().Results.size());
    for (const Type &T : F->arrow().Results)
      fType(B, T);
  });
}

//===----------------------------------------------------------------------===//
// Hash emitter: same walk, O(1) per type reference
//===----------------------------------------------------------------------===//

class HashEmitter {
public:
  uint64_t A = 0x9e3779b97f4a7c15ull;
  uint64_t B = 0xc2b2ae3d27d4eb4full;

  void mix(uint64_t V) {
    A = mix64(A ^ V);
    B = mix64(B * 0x100000001b3ull + V);
  }
  void u(uint64_t V) { mix(V * 2 + 1); }
  void str(const std::string &S) {
    mix(S.size());
    mix(fnv1a(reinterpret_cast<const uint8_t *>(S.data()), S.size()));
  }
  void qual(const Qual &Q) {
    mix(0x51 ^ (Q.isVar() ? 2 + uint64_t(Q.varIndex())
                          : (Q.isLinConst() ? 1 : 0)));
  }
  void loc(const Loc &L) {
    switch (L.kind()) {
    case Loc::Kind::Var:
      mix(0x100 + L.varIndex());
      break;
    case Loc::Kind::Concrete:
      mix(0x200 + (L.mem() == MemKind::Lin ? 0 : 1));
      mix(L.addr());
      break;
    case Loc::Kind::Skolem:
      mix(0x300);
      mix(L.skolemId());
      break;
    }
  }
  // Type nodes carry structural (Merkle) hashes, stable across arenas.
  void pre(const PretypeRef &P) { mix(P->hashValue()); }
  void heap(const HeapTypeRef &H) { mix(H->hashValue()); }
  void fun(const FunTypeRef &F) { mix(F->hashValue()); }
  void size(const SizeRef &S) { mix(S ? S->hashValue() : 0x77); }
  void type(const Type &T) {
    pre(T.P);
    qual(T.Q);
  }
};

//===----------------------------------------------------------------------===//
// The shared module walk
//===----------------------------------------------------------------------===//

template <class Em> void putArrow(Em &E, const ArrowType &A) {
  E.u(A.Params.size());
  for (const Type &T : A.Params)
    E.type(T);
  E.u(A.Results.size());
  for (const Type &T : A.Results)
    E.type(T);
}

template <class Em>
void putEffects(Em &E, const std::vector<LocalEffect> &Fx) {
  E.u(Fx.size());
  for (const LocalEffect &F : Fx) {
    E.u(F.LocalIdx);
    E.type(F.T);
  }
}

template <class Em> void putIndexArgs(Em &E, const std::vector<Index> &Args) {
  E.u(Args.size());
  for (const Index &I : Args) {
    E.u(static_cast<uint64_t>(I.K));
    switch (I.K) {
    case QuantKind::Loc:
      E.loc(I.L);
      break;
    case QuantKind::Size:
      E.size(I.Sz);
      break;
    case QuantKind::Qual:
      E.qual(I.Q);
      break;
    case QuantKind::Type:
      E.pre(I.P);
      break;
    }
  }
}

template <class Em> void putInsts(Em &E, const InstVec &Is);

template <class Em> void putInst(Em &E, const Inst &I) {
  E.u(static_cast<uint64_t>(I.kind()));
  switch (I.kind()) {
  case InstKind::NumConst: {
    const auto *C = cast<NumConstInst>(&I);
    E.u(static_cast<uint64_t>(C->numType()));
    E.u(C->bits());
    break;
  }
  case InstKind::NumUnop: {
    const auto *U = cast<NumUnopInst>(&I);
    E.u(static_cast<uint64_t>(U->numType()));
    E.u(static_cast<uint64_t>(U->op()));
    break;
  }
  case InstKind::NumBinop: {
    const auto *U = cast<NumBinopInst>(&I);
    E.u(static_cast<uint64_t>(U->numType()));
    E.u(static_cast<uint64_t>(U->op()));
    break;
  }
  case InstKind::NumTestop: {
    const auto *U = cast<NumTestopInst>(&I);
    E.u(static_cast<uint64_t>(U->numType()));
    E.u(static_cast<uint64_t>(U->op()));
    break;
  }
  case InstKind::NumRelop: {
    const auto *U = cast<NumRelopInst>(&I);
    E.u(static_cast<uint64_t>(U->numType()));
    E.u(static_cast<uint64_t>(U->op()));
    break;
  }
  case InstKind::NumCvt: {
    const auto *C = cast<NumCvtInst>(&I);
    E.u(static_cast<uint64_t>(C->from()));
    E.u(static_cast<uint64_t>(C->to()));
    E.u(static_cast<uint64_t>(C->op()));
    break;
  }
  case InstKind::Block: {
    const auto *B = cast<BlockInst>(&I);
    putArrow(E, B->arrow());
    putEffects(E, B->effects());
    putInsts(E, B->body());
    break;
  }
  case InstKind::Loop: {
    const auto *L = cast<LoopInst>(&I);
    putArrow(E, L->arrow());
    putInsts(E, L->body());
    break;
  }
  case InstKind::If: {
    const auto *F = cast<IfInst>(&I);
    putArrow(E, F->arrow());
    putEffects(E, F->effects());
    putInsts(E, F->thenBody());
    putInsts(E, F->elseBody());
    break;
  }
  case InstKind::Br:
  case InstKind::BrIf:
    E.u(cast<BrInst>(&I)->depth());
    break;
  case InstKind::BrTable: {
    const auto *T = cast<BrTableInst>(&I);
    E.u(T->depths().size());
    for (uint32_t D : T->depths())
      E.u(D);
    E.u(T->defaultDepth());
    break;
  }
  case InstKind::GetLocal: {
    const auto *G = cast<GetLocalInst>(&I);
    E.u(G->index());
    E.qual(G->qual());
    break;
  }
  case InstKind::SetLocal:
  case InstKind::TeeLocal:
  case InstKind::GetGlobal:
  case InstKind::SetGlobal:
    E.u(cast<VarIdxInst>(&I)->index());
    break;
  case InstKind::Qualify:
    E.qual(cast<QualifyInst>(&I)->qual());
    break;
  case InstKind::CoderefI:
    E.u(cast<CoderefInst>(&I)->funcIndex());
    break;
  case InstKind::InstIdx:
    putIndexArgs(E, cast<InstIdxInst>(&I)->args());
    break;
  case InstKind::Call: {
    const auto *C = cast<CallInst>(&I);
    E.u(C->funcIndex());
    putIndexArgs(E, C->args());
    break;
  }
  case InstKind::RecFold:
    E.pre(cast<RecFoldInst>(&I)->pretype());
    break;
  case InstKind::MemPack:
    E.loc(cast<MemPackInst>(&I)->loc());
    break;
  case InstKind::MemUnpack: {
    const auto *M = cast<MemUnpackInst>(&I);
    putArrow(E, M->arrow());
    putEffects(E, M->effects());
    putInsts(E, M->body());
    break;
  }
  case InstKind::Group: {
    const auto *G = cast<GroupInst>(&I);
    E.u(G->count());
    E.qual(G->qual());
    break;
  }
  case InstKind::StructMalloc: {
    const auto *S = cast<StructMallocInst>(&I);
    E.u(S->sizes().size());
    for (const SizeRef &Sz : S->sizes())
      E.size(Sz);
    E.qual(S->qual());
    break;
  }
  case InstKind::StructGet:
  case InstKind::StructSet:
  case InstKind::StructSwap:
    E.u(cast<StructIdxInst>(&I)->fieldIndex());
    break;
  case InstKind::VariantMalloc: {
    const auto *V = cast<VariantMallocInst>(&I);
    E.u(V->tag());
    E.u(V->cases().size());
    for (const Type &T : V->cases())
      E.type(T);
    E.qual(V->qual());
    break;
  }
  case InstKind::VariantCase: {
    const auto *V = cast<VariantCaseInst>(&I);
    E.qual(V->qual());
    E.heap(V->heapType());
    putArrow(E, V->arrow());
    putEffects(E, V->effects());
    E.u(V->arms().size());
    for (const InstVec &Arm : V->arms())
      putInsts(E, Arm);
    break;
  }
  case InstKind::ArrayMalloc:
    E.qual(cast<ArrayMallocInst>(&I)->qual());
    break;
  case InstKind::ExistPack: {
    const auto *P = cast<ExistPackInst>(&I);
    E.pre(P->witness());
    E.heap(P->heapType());
    E.qual(P->qual());
    break;
  }
  case InstKind::ExistUnpack: {
    const auto *X = cast<ExistUnpackInst>(&I);
    E.qual(X->qual());
    E.heap(X->heapType());
    putArrow(E, X->arrow());
    putEffects(E, X->effects());
    putInsts(E, X->body());
    break;
  }
  default:
    // Payload-free instructions (SimpleInst) carry only their kind.
    assert(SimpleInst::isSimple(I.kind()) && "unhandled instruction payload");
    break;
  }
}

template <class Em> void putInsts(Em &E, const InstVec &Is) {
  E.u(Is.size());
  for (const InstRef &I : Is)
    putInst(E, *I);
}

template <class Em> void walkModule(Em &E, const ir::Module &M) {
  E.str(M.Name);

  E.u(M.Funcs.size());
  for (const Function &F : M.Funcs) {
    E.u(F.Exports.size());
    for (const std::string &S : F.Exports)
      E.str(S);
    E.fun(F.Ty);
    E.u(F.Locals.size());
    for (const SizeRef &S : F.Locals)
      E.size(S);
    E.u(F.isImport() ? 1 : 0);
    if (F.isImport()) {
      E.str(F.Import->Module);
      E.str(F.Import->Name);
    } else {
      putInsts(E, F.Body);
    }
  }

  E.u(M.Globals.size());
  for (const Global &G : M.Globals) {
    E.u(G.Exports.size());
    for (const std::string &S : G.Exports)
      E.str(S);
    E.u(G.Mut ? 1 : 0);
    E.pre(G.P);
    E.u(G.isImport() ? 1 : 0);
    if (G.isImport()) {
      E.str(G.Import->Module);
      E.str(G.Import->Name);
    } else {
      putInsts(E, G.Init);
    }
  }

  E.u(M.Tab.Exports.size());
  for (const std::string &S : M.Tab.Exports)
    E.str(S);
  E.u(M.Tab.Entries.size());
  for (uint32_t T : M.Tab.Entries)
    E.u(T);
  E.u(M.Tab.Import ? 1 : 0);
  if (M.Tab.Import) {
    E.str(M.Tab.Import->Module);
    E.str(M.Tab.Import->Name);
  }

  E.u(M.Start ? 1 : 0);
  if (M.Start)
    E.u(*M.Start);
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

class Reader {
public:
  Reader(const uint8_t *D, size_t N, TypeArena &A) : D(D), N(N), A(A) {}

  bool run(ir::Module &M) { return nodeTable() && module(M) && atEnd(); }
  const std::string &error() const { return Err; }

private:
  const uint8_t *D;
  size_t N;
  size_t Pos = 0;
  TypeArena &A;
  std::string Err;

  // The decoded type table: one tagged reference per index.
  struct NodeSlot {
    Cat C;
    uint32_t Sub;
  };
  std::vector<NodeSlot> Slots;
  std::vector<SizeRef> Sizes;
  std::vector<PretypeRef> Pres;
  std::vector<HeapTypeRef> Heaps;
  std::vector<FunTypeRef> Funs;
  /// Canonical nodes already decoded from this table: the writer emits
  /// one record per structural identity, so a duplicate entry (same
  /// canonical node twice) is corruption, rejected to keep accepted
  /// tables writer-shaped.
  std::unordered_set<const void *> SeenNodes;

  bool recordNode(const void *Canonical) {
    if (!SeenNodes.insert(Canonical).second)
      return fail("duplicate type-table entry");
    return true;
  }

  bool fail(const std::string &M) {
    if (Err.empty())
      Err = M;
    return false;
  }
  bool atEnd() {
    return Pos == N ? true : fail("trailing bytes after module record");
  }

  /// Strict ULEB128: rejects over-long input, payload bits beyond 64,
  /// and non-minimal (zero-padded) encodings — the writer emits minimal
  /// varints, so anything else is corruption, and accepting it would let
  /// distinct byte strings decode to one module (see the canonicality
  /// note in DESIGN.md §8).
  bool u(uint64_t &V) {
    V = 0;
    unsigned Shift = 0;
    while (true) {
      if (Pos >= N)
        return fail("truncated varint");
      uint8_t B = D[Pos++];
      // At shift 63 only one payload bit remains in the u64.
      if (Shift == 63 && (B & 0xfe))
        return fail("over-long varint");
      V |= uint64_t(B & 0x7f) << Shift;
      if (!(B & 0x80)) {
        if (Shift > 0 && B == 0)
          return fail("non-minimal varint");
        return true;
      }
      Shift += 7;
    }
  }
  bool u32(uint32_t &V, const char *What) {
    uint64_t X;
    if (!u(X))
      return false;
    if (X > UINT32_MAX)
      return fail(std::string(What) + " out of range");
    V = static_cast<uint32_t>(X);
    return true;
  }
  /// A count of items each of which needs at least one encoded byte; the
  /// remaining-input bound keeps corrupt lengths from driving allocation.
  bool count(uint64_t &V, const char *What) {
    if (!u(V))
      return false;
    if (V > N - Pos)
      return fail(std::string("oversized ") + What + " count");
    return true;
  }
  bool str(std::string &S) {
    uint64_t L;
    if (!count(L, "string"))
      return false;
    S.assign(reinterpret_cast<const char *>(D + Pos), L);
    Pos += L;
    return true;
  }
  bool qual(Qual &Q) {
    uint64_t V;
    if (!u(V))
      return false;
    if (V == 0)
      Q = Qual::unr();
    else if (V == 1)
      Q = Qual::lin();
    else if (V - 2 <= UINT32_MAX)
      Q = Qual::var(static_cast<uint32_t>(V - 2));
    else
      return fail("qualifier variable out of range");
    return true;
  }
  bool loc(Loc &L) {
    uint64_t K;
    if (!u(K))
      return false;
    switch (K) {
    case 0: {
      uint32_t Idx;
      if (!u32(Idx, "location variable"))
        return false;
      L = Loc::var(Idx);
      return true;
    }
    case 1: {
      uint64_t Mem, Addr;
      if (!u(Mem) || !u(Addr))
        return false;
      if (Mem > 1)
        return fail("bad memory kind");
      L = Loc::concrete(Mem == 0 ? MemKind::Lin : MemKind::Unr, Addr);
      return true;
    }
    case 2: {
      uint64_t Id;
      if (!u(Id))
        return false;
      L = Loc::skolem(Id);
      return true;
    }
    default:
      return fail("bad location kind");
    }
  }

  bool slot(Cat C, uint32_t &Sub, const char *What) {
    uint32_t Idx;
    if (!u32(Idx, What))
      return false;
    if (Idx >= Slots.size())
      return fail(std::string(What) + " index out of range");
    if (Slots[Idx].C != C)
      return fail(std::string(What) + " index refers to a different node "
                                      "category");
    Sub = Slots[Idx].Sub;
    return true;
  }
  bool preRef(PretypeRef &P) {
    uint32_t S;
    if (!slot(Cat::Pre, S, "pretype"))
      return false;
    P = Pres[S];
    return true;
  }
  bool heapRef(HeapTypeRef &H) {
    uint32_t S;
    if (!slot(Cat::Heap, S, "heap type"))
      return false;
    H = Heaps[S];
    return true;
  }
  bool funRef(FunTypeRef &F) {
    uint32_t S;
    if (!slot(Cat::Fun, S, "function type"))
      return false;
    F = Funs[S];
    return true;
  }
  /// Optional-size convention: 0 = null, else index + 1.
  bool optSize(SizeRef &S) {
    uint64_t V;
    if (!u(V))
      return false;
    if (V == 0) {
      S = nullptr;
      return true;
    }
    if (V - 1 >= Slots.size() || Slots[V - 1].C != Cat::Size)
      return fail("size index out of range");
    S = Sizes[Slots[V - 1].Sub];
    return true;
  }
  bool type(Type &T) {
    PretypeRef P;
    Qual Q = Qual::unr();
    if (!preRef(P) || !qual(Q))
      return false;
    T = Type(std::move(P), Q);
    return true;
  }
  bool types(std::vector<Type> &Ts, const char *What) {
    uint64_t C;
    if (!count(C, What))
      return false;
    Ts.resize(C);
    for (Type &T : Ts)
      if (!type(T))
        return false;
    return true;
  }

  bool nodeTable();
  bool node();
  bool module(ir::Module &M);
  bool function(Function &F);
  bool global(Global &G);
  bool arrow(ArrowType &AT);
  bool effects(std::vector<LocalEffect> &Fx);
  bool indexArgs(std::vector<Index> &Args);
  bool insts(InstVec &Is, unsigned Depth);
  bool inst(InstRef &I, unsigned Depth);
  bool importName(std::optional<ImportName> &IN);
};

bool Reader::nodeTable() {
  uint64_t Count;
  if (!count(Count, "type table"))
    return false;
  Slots.reserve(Count);
  for (uint64_t I = 0; I < Count; ++I)
    if (!node())
      return false;
  return true;
}

bool Reader::node() {
  if (Pos >= N)
    return fail("truncated type table");
  uint8_t Tag = D[Pos++];

  if (Tag == TagSize) {
    NormalSize NS;
    uint64_t NVars;
    if (!u(NS.Const) || !count(NVars, "size variable"))
      return false;
    NS.Vars.resize(NVars);
    uint32_t Prev = 0;
    for (uint64_t I = 0; I < NVars; ++I) {
      if (!u32(NS.Vars[I], "size variable"))
        return false;
      // The writer emits the sorted normal form; enforcing it keeps the
      // encoding canonical (one byte string per structural identity).
      if (I > 0 && NS.Vars[I] < Prev)
        return fail("size normal form not sorted");
      Prev = NS.Vars[I];
    }
    SizeRef S = A.sizeFromNormal(std::move(NS));
    if (!recordNode(S.get()))
      return false;
    Slots.push_back({Cat::Size, static_cast<uint32_t>(Sizes.size())});
    Sizes.push_back(std::move(S));
    return true;
  }

  if (Tag == TagFun) {
    uint64_t NQ;
    if (!count(NQ, "quantifier"))
      return false;
    std::vector<Quant> Qs(NQ);
    for (Quant &Q : Qs) {
      uint64_t K;
      if (!u(K))
        return false;
      if (K > static_cast<uint64_t>(QuantKind::Type))
        return fail("bad quantifier kind");
      Q.K = static_cast<QuantKind>(K);
      switch (Q.K) {
      case QuantKind::Loc:
        break;
      case QuantKind::Size: {
        uint64_t NL, NU;
        if (!count(NL, "size bound"))
          return false;
        Q.SizeLower.resize(NL);
        for (SizeRef &S : Q.SizeLower)
          if (!optSize(S))
            return false;
        if (!count(NU, "size bound"))
          return false;
        Q.SizeUpper.resize(NU);
        for (SizeRef &S : Q.SizeUpper)
          if (!optSize(S))
            return false;
        break;
      }
      case QuantKind::Qual: {
        uint64_t NL, NU;
        if (!count(NL, "qualifier bound"))
          return false;
        Q.QualLower.resize(NL, Qual::unr());
        for (Qual &L : Q.QualLower)
          if (!qual(L))
            return false;
        if (!count(NU, "qualifier bound"))
          return false;
        Q.QualUpper.resize(NU, Qual::unr());
        for (Qual &U : Q.QualUpper)
          if (!qual(U))
            return false;
        break;
      }
      case QuantKind::Type: {
        uint64_t NC;
        if (!qual(Q.TypeQualLower) || !optSize(Q.TypeSizeUpper) || !u(NC))
          return false;
        Q.TypeNoCaps = NC != 0;
        break;
      }
      }
    }
    ArrowType AT;
    if (!types(AT.Params, "parameter") || !types(AT.Results, "result"))
      return false;
    FunTypeRef F = A.fun(std::move(Qs), std::move(AT));
    if (!recordNode(F.get()))
      return false;
    Slots.push_back({Cat::Fun, static_cast<uint32_t>(Funs.size())});
    Funs.push_back(std::move(F));
    return true;
  }

  if (Tag >= TagHeap && Tag < TagHeap + 4) {
    HeapTypeRef H;
    switch (static_cast<HeapTypeKind>(Tag - TagHeap)) {
    case HeapTypeKind::Variant: {
      std::vector<Type> Cs;
      if (!types(Cs, "variant case"))
        return false;
      H = A.variant(std::move(Cs));
      break;
    }
    case HeapTypeKind::Struct: {
      uint64_t NF;
      if (!count(NF, "struct field"))
        return false;
      std::vector<StructField> Fs(NF);
      for (StructField &F : Fs)
        if (!type(F.T) || !optSize(F.Slot))
          return false;
      H = A.structure(std::move(Fs));
      break;
    }
    case HeapTypeKind::Array: {
      Type T;
      if (!type(T))
        return false;
      H = A.array(std::move(T));
      break;
    }
    case HeapTypeKind::Ex: {
      Qual QL = Qual::unr();
      SizeRef SU;
      Type T;
      if (!qual(QL) || !optSize(SU) || !type(T))
        return false;
      H = A.ex(QL, std::move(SU), std::move(T));
      break;
    }
    }
    if (!recordNode(H.get()))
      return false;
    Slots.push_back({Cat::Heap, static_cast<uint32_t>(Heaps.size())});
    Heaps.push_back(std::move(H));
    return true;
  }

  if (Tag >= TagPre && Tag < TagPre + 12) {
    PretypeRef P;
    switch (static_cast<PretypeKind>(Tag - TagPre)) {
    case PretypeKind::Unit:
      P = A.unit();
      break;
    case PretypeKind::Num: {
      uint64_t NT;
      if (!u(NT))
        return false;
      if (NT > static_cast<uint64_t>(NumType::F64))
        return fail("bad numeric type");
      P = A.num(static_cast<NumType>(NT));
      break;
    }
    case PretypeKind::Var: {
      uint32_t Idx;
      if (!u32(Idx, "pretype variable"))
        return false;
      P = A.typeVar(Idx);
      break;
    }
    case PretypeKind::Skolem: {
      uint64_t Id, NC;
      Qual QL = Qual::unr();
      SizeRef SU;
      if (!u(Id) || !qual(QL) || !optSize(SU) || !u(NC))
        return false;
      P = A.skolem(Id, QL, std::move(SU), NC != 0);
      break;
    }
    case PretypeKind::Prod: {
      std::vector<Type> Es;
      if (!types(Es, "tuple element"))
        return false;
      P = A.prod(std::move(Es));
      break;
    }
    case PretypeKind::Ref:
    case PretypeKind::Cap: {
      bool IsRef = static_cast<PretypeKind>(Tag - TagPre) == PretypeKind::Ref;
      uint64_t Priv;
      Loc L = Loc::var(0);
      HeapTypeRef H;
      if (!u(Priv) || !loc(L) || !heapRef(H))
        return false;
      if (Priv > 1)
        return fail("bad privilege");
      Privilege Pr = Priv ? Privilege::RW : Privilege::R;
      P = IsRef ? A.ref(Pr, L, std::move(H)) : A.cap(Pr, L, std::move(H));
      break;
    }
    case PretypeKind::Ptr: {
      Loc L = Loc::var(0);
      if (!loc(L))
        return false;
      P = A.ptr(L);
      break;
    }
    case PretypeKind::Own: {
      Loc L = Loc::var(0);
      if (!loc(L))
        return false;
      P = A.own(L);
      break;
    }
    case PretypeKind::Rec: {
      Qual Bound = Qual::unr();
      Type Body;
      if (!qual(Bound) || !type(Body))
        return false;
      P = A.rec(Bound, std::move(Body));
      break;
    }
    case PretypeKind::ExLoc: {
      Type Body;
      if (!type(Body))
        return false;
      P = A.exLoc(std::move(Body));
      break;
    }
    case PretypeKind::Coderef: {
      FunTypeRef F;
      if (!funRef(F))
        return false;
      P = A.coderef(std::move(F));
      break;
    }
    }
    if (!recordNode(P.get()))
      return false;
    Slots.push_back({Cat::Pre, static_cast<uint32_t>(Pres.size())});
    Pres.push_back(std::move(P));
    return true;
  }

  return fail("unknown type-table tag");
}

bool Reader::arrow(ArrowType &AT) {
  return types(AT.Params, "parameter") && types(AT.Results, "result");
}

bool Reader::effects(std::vector<LocalEffect> &Fx) {
  uint64_t C;
  if (!count(C, "local effect"))
    return false;
  Fx.resize(C);
  for (LocalEffect &F : Fx)
    if (!u32(F.LocalIdx, "local index") || !type(F.T))
      return false;
  return true;
}

bool Reader::indexArgs(std::vector<Index> &Args) {
  uint64_t C;
  if (!count(C, "instantiation argument"))
    return false;
  Args.resize(C);
  for (Index &I : Args) {
    uint64_t K;
    if (!u(K))
      return false;
    if (K > static_cast<uint64_t>(QuantKind::Type))
      return fail("bad instantiation-argument kind");
    I.K = static_cast<QuantKind>(K);
    switch (I.K) {
    case QuantKind::Loc:
      if (!loc(I.L))
        return false;
      break;
    case QuantKind::Size:
      if (!optSize(I.Sz))
        return false;
      break;
    case QuantKind::Qual:
      if (!qual(I.Q))
        return false;
      break;
    case QuantKind::Type:
      if (!preRef(I.P))
        return false;
      break;
    }
  }
  return true;
}

bool Reader::insts(InstVec &Is, unsigned Depth) {
  uint64_t C;
  if (!count(C, "instruction"))
    return false;
  Is.reserve(C);
  for (uint64_t J = 0; J < C; ++J) {
    InstRef I;
    if (!inst(I, Depth))
      return false;
    Is.push_back(std::move(I));
  }
  return true;
}

bool Reader::inst(InstRef &Out, unsigned Depth) {
  if (Depth > MaxInstDepth)
    return fail("instruction nesting too deep");
  uint64_t KV;
  if (!u(KV))
    return false;
  if (KV > static_cast<uint64_t>(InstKind::ExistUnpack))
    return fail("unknown instruction kind");
  InstKind K = static_cast<InstKind>(KV);

  if (SimpleInst::isSimple(K)) {
    Out = std::make_shared<SimpleInst>(K);
    return true;
  }

  switch (K) {
  case InstKind::NumConst: {
    uint64_t NT, Bits;
    if (!u(NT) || !u(Bits))
      return false;
    if (NT > static_cast<uint64_t>(NumType::F64))
      return fail("bad numeric type");
    Out = std::make_shared<NumConstInst>(static_cast<NumType>(NT), Bits);
    return true;
  }
  case InstKind::NumUnop: {
    uint64_t NT, Op;
    if (!u(NT) || !u(Op))
      return false;
    if (NT > static_cast<uint64_t>(NumType::F64) ||
        Op > static_cast<uint64_t>(UnopKind::Nearest))
      return fail("bad numeric unop");
    Out = std::make_shared<NumUnopInst>(static_cast<NumType>(NT),
                                        static_cast<UnopKind>(Op));
    return true;
  }
  case InstKind::NumBinop: {
    uint64_t NT, Op;
    if (!u(NT) || !u(Op))
      return false;
    if (NT > static_cast<uint64_t>(NumType::F64) ||
        Op > static_cast<uint64_t>(BinopKind::Copysign))
      return fail("bad numeric binop");
    Out = std::make_shared<NumBinopInst>(static_cast<NumType>(NT),
                                         static_cast<BinopKind>(Op));
    return true;
  }
  case InstKind::NumTestop: {
    uint64_t NT, Op;
    if (!u(NT) || !u(Op))
      return false;
    if (NT > static_cast<uint64_t>(NumType::F64) ||
        Op > static_cast<uint64_t>(TestopKind::Eqz))
      return fail("bad numeric testop");
    Out = std::make_shared<NumTestopInst>(static_cast<NumType>(NT),
                                          static_cast<TestopKind>(Op));
    return true;
  }
  case InstKind::NumRelop: {
    uint64_t NT, Op;
    if (!u(NT) || !u(Op))
      return false;
    if (NT > static_cast<uint64_t>(NumType::F64) ||
        Op > static_cast<uint64_t>(RelopKind::Ge))
      return fail("bad numeric relop");
    Out = std::make_shared<NumRelopInst>(static_cast<NumType>(NT),
                                         static_cast<RelopKind>(Op));
    return true;
  }
  case InstKind::NumCvt: {
    uint64_t From, To, Op;
    if (!u(From) || !u(To) || !u(Op))
      return false;
    if (From > static_cast<uint64_t>(NumType::F64) ||
        To > static_cast<uint64_t>(NumType::F64) ||
        Op > static_cast<uint64_t>(CvtopKind::Reinterpret))
      return fail("bad conversion");
    Out = std::make_shared<NumCvtInst>(static_cast<NumType>(From),
                                       static_cast<NumType>(To),
                                       static_cast<CvtopKind>(Op));
    return true;
  }
  case InstKind::Block: {
    ArrowType AT;
    std::vector<LocalEffect> Fx;
    InstVec Body;
    if (!arrow(AT) || !effects(Fx) || !insts(Body, Depth + 1))
      return false;
    Out = std::make_shared<BlockInst>(std::move(AT), std::move(Fx),
                                      std::move(Body));
    return true;
  }
  case InstKind::Loop: {
    ArrowType AT;
    InstVec Body;
    if (!arrow(AT) || !insts(Body, Depth + 1))
      return false;
    Out = std::make_shared<LoopInst>(std::move(AT), std::move(Body));
    return true;
  }
  case InstKind::If: {
    ArrowType AT;
    std::vector<LocalEffect> Fx;
    InstVec Then, Else;
    if (!arrow(AT) || !effects(Fx) || !insts(Then, Depth + 1) ||
        !insts(Else, Depth + 1))
      return false;
    Out = std::make_shared<IfInst>(std::move(AT), std::move(Fx),
                                   std::move(Then), std::move(Else));
    return true;
  }
  case InstKind::Br:
  case InstKind::BrIf: {
    uint32_t DI;
    if (!u32(DI, "branch depth"))
      return false;
    Out = std::make_shared<BrInst>(K, DI);
    return true;
  }
  case InstKind::BrTable: {
    uint64_t C;
    if (!count(C, "branch target"))
      return false;
    std::vector<uint32_t> Ds(C);
    for (uint32_t &DI : Ds)
      if (!u32(DI, "branch depth"))
        return false;
    uint32_t Dflt;
    if (!u32(Dflt, "branch depth"))
      return false;
    Out = std::make_shared<BrTableInst>(std::move(Ds), Dflt);
    return true;
  }
  case InstKind::GetLocal: {
    uint32_t Idx;
    Qual Q = Qual::unr();
    if (!u32(Idx, "local index") || !qual(Q))
      return false;
    Out = std::make_shared<GetLocalInst>(Idx, Q);
    return true;
  }
  case InstKind::SetLocal:
  case InstKind::TeeLocal:
  case InstKind::GetGlobal:
  case InstKind::SetGlobal: {
    uint32_t Idx;
    if (!u32(Idx, "variable index"))
      return false;
    Out = std::make_shared<VarIdxInst>(K, Idx);
    return true;
  }
  case InstKind::Qualify: {
    Qual Q = Qual::unr();
    if (!qual(Q))
      return false;
    Out = std::make_shared<QualifyInst>(Q);
    return true;
  }
  case InstKind::CoderefI: {
    uint32_t Idx;
    if (!u32(Idx, "function index"))
      return false;
    Out = std::make_shared<CoderefInst>(Idx);
    return true;
  }
  case InstKind::InstIdx: {
    std::vector<Index> Args;
    if (!indexArgs(Args))
      return false;
    Out = std::make_shared<InstIdxInst>(std::move(Args));
    return true;
  }
  case InstKind::Call: {
    uint32_t Idx;
    std::vector<Index> Args;
    if (!u32(Idx, "function index") || !indexArgs(Args))
      return false;
    Out = std::make_shared<CallInst>(Idx, std::move(Args));
    return true;
  }
  case InstKind::RecFold: {
    PretypeRef P;
    if (!preRef(P))
      return false;
    Out = std::make_shared<RecFoldInst>(std::move(P));
    return true;
  }
  case InstKind::MemPack: {
    Loc L = Loc::var(0);
    if (!loc(L))
      return false;
    Out = std::make_shared<MemPackInst>(L);
    return true;
  }
  case InstKind::MemUnpack: {
    ArrowType AT;
    std::vector<LocalEffect> Fx;
    InstVec Body;
    if (!arrow(AT) || !effects(Fx) || !insts(Body, Depth + 1))
      return false;
    Out = std::make_shared<MemUnpackInst>(std::move(AT), std::move(Fx),
                                          std::move(Body));
    return true;
  }
  case InstKind::Group: {
    uint32_t C;
    Qual Q = Qual::unr();
    if (!u32(C, "group count") || !qual(Q))
      return false;
    Out = std::make_shared<GroupInst>(C, Q);
    return true;
  }
  case InstKind::StructMalloc: {
    uint64_t C;
    if (!count(C, "slot size"))
      return false;
    std::vector<SizeRef> Ss(C);
    for (SizeRef &S : Ss)
      if (!optSize(S))
        return false;
    Qual Q = Qual::unr();
    if (!qual(Q))
      return false;
    Out = std::make_shared<StructMallocInst>(std::move(Ss), Q);
    return true;
  }
  case InstKind::StructGet:
  case InstKind::StructSet:
  case InstKind::StructSwap: {
    uint32_t Idx;
    if (!u32(Idx, "field index"))
      return false;
    Out = std::make_shared<StructIdxInst>(K, Idx);
    return true;
  }
  case InstKind::VariantMalloc: {
    uint32_t Tag;
    std::vector<Type> Cs;
    Qual Q = Qual::unr();
    if (!u32(Tag, "variant tag") || !types(Cs, "variant case") || !qual(Q))
      return false;
    Out = std::make_shared<VariantMallocInst>(Tag, std::move(Cs), Q);
    return true;
  }
  case InstKind::VariantCase: {
    Qual Q = Qual::unr();
    HeapTypeRef H;
    ArrowType AT;
    std::vector<LocalEffect> Fx;
    uint64_t NArms;
    if (!qual(Q) || !heapRef(H) || !arrow(AT) || !effects(Fx) ||
        !count(NArms, "variant arm"))
      return false;
    std::vector<InstVec> Arms(NArms);
    for (InstVec &Arm : Arms)
      if (!insts(Arm, Depth + 1))
        return false;
    Out = std::make_shared<VariantCaseInst>(Q, std::move(H), std::move(AT),
                                            std::move(Fx), std::move(Arms));
    return true;
  }
  case InstKind::ArrayMalloc: {
    Qual Q = Qual::unr();
    if (!qual(Q))
      return false;
    Out = std::make_shared<ArrayMallocInst>(Q);
    return true;
  }
  case InstKind::ExistPack: {
    PretypeRef W;
    HeapTypeRef H;
    Qual Q = Qual::unr();
    if (!preRef(W) || !heapRef(H) || !qual(Q))
      return false;
    Out = std::make_shared<ExistPackInst>(std::move(W), std::move(H), Q);
    return true;
  }
  case InstKind::ExistUnpack: {
    Qual Q = Qual::unr();
    HeapTypeRef H;
    ArrowType AT;
    std::vector<LocalEffect> Fx;
    InstVec Body;
    if (!qual(Q) || !heapRef(H) || !arrow(AT) || !effects(Fx) ||
        !insts(Body, Depth + 1))
      return false;
    Out = std::make_shared<ExistUnpackInst>(Q, std::move(H), std::move(AT),
                                            std::move(Fx), std::move(Body));
    return true;
  }
  default:
    return fail("unknown instruction kind");
  }
}

bool Reader::importName(std::optional<ImportName> &IN) {
  uint64_t Is;
  if (!u(Is))
    return false;
  if (Is == 0) {
    IN.reset();
    return true;
  }
  if (Is != 1)
    return fail("bad import flag");
  ImportName Name;
  if (!str(Name.Module) || !str(Name.Name))
    return false;
  IN = std::move(Name);
  return true;
}

bool Reader::function(Function &F) {
  uint64_t NE;
  if (!count(NE, "export"))
    return false;
  F.Exports.resize(NE);
  for (std::string &S : F.Exports)
    if (!str(S))
      return false;
  if (!funRef(F.Ty))
    return false;
  uint64_t NL;
  if (!count(NL, "local"))
    return false;
  F.Locals.resize(NL);
  for (SizeRef &S : F.Locals)
    if (!optSize(S))
      return false;
  uint64_t Is;
  if (!u(Is))
    return false;
  if (Is == 1) {
    ImportName Name;
    if (!str(Name.Module) || !str(Name.Name))
      return false;
    F.Import = std::move(Name);
    return true;
  }
  if (Is != 0)
    return fail("bad import flag");
  return insts(F.Body, 0);
}

bool Reader::global(Global &G) {
  uint64_t NE;
  if (!count(NE, "export"))
    return false;
  G.Exports.resize(NE);
  for (std::string &S : G.Exports)
    if (!str(S))
      return false;
  uint64_t Mut;
  if (!u(Mut))
    return false;
  G.Mut = Mut != 0;
  if (!preRef(G.P))
    return false;
  uint64_t Is;
  if (!u(Is))
    return false;
  if (Is == 1) {
    ImportName Name;
    if (!str(Name.Module) || !str(Name.Name))
      return false;
    G.Import = std::move(Name);
    return true;
  }
  if (Is != 0)
    return fail("bad import flag");
  return insts(G.Init, 0);
}

bool Reader::module(ir::Module &M) {
  if (!str(M.Name))
    return false;

  uint64_t NF;
  if (!count(NF, "function"))
    return false;
  M.Funcs.resize(NF);
  for (Function &F : M.Funcs)
    if (!function(F))
      return false;

  uint64_t NG;
  if (!count(NG, "global"))
    return false;
  M.Globals.resize(NG);
  for (Global &G : M.Globals)
    if (!global(G))
      return false;

  uint64_t NE;
  if (!count(NE, "table export"))
    return false;
  M.Tab.Exports.resize(NE);
  for (std::string &S : M.Tab.Exports)
    if (!str(S))
      return false;
  uint64_t NT;
  if (!count(NT, "table entry"))
    return false;
  M.Tab.Entries.resize(NT);
  for (uint32_t &T : M.Tab.Entries)
    if (!u32(T, "table entry"))
      return false;
  if (!importName(M.Tab.Import))
    return false;

  uint64_t HasStart;
  if (!u(HasStart))
    return false;
  if (HasStart == 1) {
    uint32_t S;
    if (!u32(S, "start function"))
      return false;
    M.Start = S;
  } else if (HasStart != 0) {
    return fail("bad start flag");
  }
  return true;
}

void putU32LE(std::vector<uint8_t> &B, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    B.push_back(static_cast<uint8_t>(V >> (8 * I)));
}
void putU64LE(std::vector<uint8_t> &B, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    B.push_back(static_cast<uint8_t>(V >> (8 * I)));
}
uint32_t getU32LE(const uint8_t *D) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= uint32_t(D[I]) << (8 * I);
  return V;
}
uint64_t getU64LE(const uint8_t *D) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= uint64_t(D[I]) << (8 * I);
  return V;
}

} // namespace

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

std::vector<uint8_t> rw::serial::write(const ir::Module &M) {
  OBS_SPAN("serial_write");
  static obs::Counter BytesWritten("serial.bytes_written");
  WriteEmitter E;
  walkModule(E, M);

  std::vector<uint8_t> Payload;
  Payload.reserve(E.Nodes.size() + E.Body.size() + 8);
  wU(Payload, E.NodeCount);
  Payload.insert(Payload.end(), E.Nodes.begin(), E.Nodes.end());
  Payload.insert(Payload.end(), E.Body.begin(), E.Body.end());

  std::vector<uint8_t> Header;
  Header.reserve(HeaderSize);
  Header.insert(Header.end(), Magic, Magic + 4);
  putU32LE(Header, FormatVersion);
  putU64LE(Header, Payload.size());
  putU64LE(Header, fnv1a(Payload.data(), Payload.size()));

  std::vector<uint8_t> Out(HeaderSize + Payload.size());
  std::memcpy(Out.data(), Header.data(), HeaderSize);
  std::memcpy(Out.data() + HeaderSize, Payload.data(), Payload.size());
  BytesWritten.add(Out.size());
  return Out;
}

Expected<ir::Module> rw::serial::read(const std::vector<uint8_t> &Bytes,
                                      std::shared_ptr<ir::TypeArena> Arena) {
  OBS_SPAN("serial_read", Bytes.size());
  static obs::Counter BytesRead("serial.bytes_read");
  BytesRead.add(Bytes.size());
  if (!Arena)
    return Error("null target arena");
  if (Bytes.size() < HeaderSize)
    return Error("truncated header");
  if (std::memcmp(Bytes.data(), Magic, 4) != 0)
    return Error("bad magic (not a RichWasm binary module)");
  uint32_t Ver = getU32LE(Bytes.data() + 4);
  if (Ver != FormatVersion)
    return Error("unsupported format version " + std::to_string(Ver) +
                 " (expected " + std::to_string(FormatVersion) + ")");
  uint64_t Len = getU64LE(Bytes.data() + 8);
  if (Len != Bytes.size() - HeaderSize)
    return Error("payload length mismatch");
  uint64_t Sum = getU64LE(Bytes.data() + 16);
  if (Sum != fnv1a(Bytes.data() + HeaderSize, Len))
    return Error("payload checksum mismatch");

  // Two-phase decode: parse into a throwaway arena first, so a payload
  // that fails *structural* validation (the checksum is not a MAC — an
  // attacker can recompute it) leaves no trace in the target arena.
  // Interning into a long-lived shared arena is otherwise a permanent
  // allocation: the arena has no eviction, and rollback requires
  // quiescence the reader cannot assume. Only a fully validated payload
  // is re-parsed into the target, which then gains exactly the module's
  // own nodes. Short-lived arenas are cheap (lazy leaf caches), so the
  // cost is one extra parse on the success path — off the warm path,
  // which is served by the cache on content hashes, not by read().
  {
    TypeArena Scratch;
    ir::Module Probe;
    Reader R(Bytes.data() + HeaderSize, Len, Scratch);
    if (!R.run(Probe))
      return Error("malformed module: " + R.error());
  }

  ir::Module M;
  M.Arena = Arena;
  Reader R(Bytes.data() + HeaderSize, Len, *Arena);
  if (!R.run(M))
    return Error("malformed module: " + R.error());
  return M;
}

serial::ModuleHash rw::serial::moduleHash(const ir::Module &M) {
  OBS_SPAN("module_hash");
  static obs::Counter ModulesHashed("serial.modules_hashed");
  ModulesHashed.inc();
  HashEmitter E;
  walkModule(E, M);
  // One final avalanche so prefix-equal modules with different tails
  // still differ in both words.
  return ModuleHash{mix64(E.A ^ 0x2545f4914f6cdd1dull), mix64(E.B)};
}
