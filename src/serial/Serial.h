//===- serial/Serial.h - RichWasm binary module format ----------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A binary wire format for RichWasm IR modules (DESIGN.md §8), the
/// persistence layer under the admission cache and any on-disk module
/// registry: write() flattens a module into bytes, read() rebuilds it by
/// interning every type directly into a target arena — so a round trip
/// restores *canonical* types (pointer-identical to the originals when the
/// same arena is used, structurally identical otherwise).
///
/// Layout:
///
///   header   — magic "RWBM", format version (u32 LE), payload length
///              (u64 LE), FNV-1a checksum of the payload (u64 LE);
///   payload  — a type table followed by one module record, everything
///              varint (LEB128) encoded.
///
/// The type table is arena-aware: each interned Size/Pretype/HeapType/
/// FunType node reachable from the module is emitted exactly once, in
/// child-before-parent order, and every later occurrence (in other nodes
/// or in instructions) is a table index. Sizes are stored as their
/// +-normal form, so the encoding — like the arena — has one
/// representation per structural identity; serializing the same module
/// from two different arenas yields identical bytes.
///
/// read() is total on untrusted input: truncated streams, corrupt
/// headers, bad checksums, out-of-range indices/enums, and oversized
/// length fields all produce an Error, never a crash or an allocation
/// explosion.
///
/// moduleHash() is the admission-cache key (src/cache/): a 128-bit
/// content hash folding the arena's per-node Merkle hashes (stable
/// across arenas) with an instruction-stream walk, without serializing.
/// Two modules share a hash iff — modulo 128-bit collisions — they
/// serialize to the same bytes.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_SERIAL_SERIAL_H
#define RICHWASM_SERIAL_SERIAL_H

#include "ir/Module.h"
#include "support/Error.h"

#include <cstdint>
#include <vector>

namespace rw::serial {

/// Format version of write(); read() rejects other versions.
constexpr uint32_t FormatVersion = 1;

/// Fixed-size header: magic (4) + version (4) + payload length (8) +
/// payload checksum (8).
constexpr size_t HeaderSize = 24;

/// Serializes \p M (name, functions, globals, table, start, and every
/// reachable type) into the wire format.
std::vector<uint8_t> write(const ir::Module &M);

/// Parses \p Bytes, interning all types into \p Arena (which becomes the
/// module's owning arena). Fails with a diagnostic on any malformed,
/// truncated, or corrupt input.
Expected<ir::Module>
read(const std::vector<uint8_t> &Bytes,
     std::shared_ptr<ir::TypeArena> Arena = ir::TypeArena::globalPtr());

/// 128-bit module content hash (see file comment). Stable across arenas
/// and process runs; independent of the interning order.
struct ModuleHash {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator==(const ModuleHash &O) const {
    return Hi == O.Hi && Lo == O.Lo;
  }
  bool operator!=(const ModuleHash &O) const { return !(*this == O); }
};

ModuleHash moduleHash(const ir::Module &M);

} // namespace rw::serial

#endif // RICHWASM_SERIAL_SERIAL_H
