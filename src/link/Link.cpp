//===- link/Link.cpp - Multi-module linking and instantiation ------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "link/Link.h"

#include "cache/AdmissionCache.h"
#include "exec/Engine.h"
#include "ir/Print.h"
#include "obs/Obs.h"
#include "ir/TypeOps.h"
#include "support/ThreadPool.h"
#include "typing/Checker.h"
#include "wasm/Validate.h"

#include "support/FlatMap.h"
#include "support/Hashing.h"

#include <cstring>
#include <optional>
#include <unordered_map>

using namespace rw;
using namespace rw::link;
using sem::Closure;
using sem::Instance;
using sem::Machine;
using sem::Store;

std::optional<uint32_t> rw::link::findExport(const ir::Module &M,
                                             const std::string &Name) {
  for (uint32_t I = 0; I < M.Funcs.size(); ++I)
    for (const std::string &E : M.Funcs[I].Exports)
      if (E == Name)
        return I;
  return std::nullopt;
}

namespace {

using Provider = std::pair<uint32_t, uint32_t>;

/// Hash key of one export: the exporting module's name and the export
/// name, both borrowed from the module structures (which outlive the
/// link).
struct ExportKey {
  const std::string *Mod;
  const std::string *Name;

  bool operator==(const ExportKey &O) const {
    return *Mod == *O.Mod && *Name == *O.Name;
  }
};

/// Sampled string hash: length mixed with the first and last eight bytes.
/// Import resolution hashes two strings per probe, so full-content
/// hashing is the dominant cost of the batch path; sampling keeps probes
/// O(1)-ish in name length. Colliding names (same length, same ends) are
/// disambiguated by the full equality compare — a pathological bucket
/// degrades toward the sequential scan, never to a wrong resolution.
/// support::mix64 (murmur3's finalizer): full avalanche, so sampled
/// inputs whose entropy sits in a few bytes (shared prefixes, trailing
/// digits) still spread over the low bits a power-of-two table masks
/// with.
using support::mix64;

static uint64_t sampledHash(const std::string &S) {
  size_t N = S.size();
  uint64_t A = 0, B = 0;
  if (N >= 8) {
    std::memcpy(&A, S.data(), 8);
    std::memcpy(&B, S.data() + N - 8, 8);
  } else if (N > 0) {
    std::memcpy(&A, S.data(), N);
    B = A;
  }
  return mix64(A ^ (B * 0x9e3779b97f4a7c15ull) ^
               (N * 0xff51afd7ed558ccdull));
}

struct ExportKeyHash {
  size_t operator()(const ExportKey &K) const {
    return static_cast<size_t>(
        mix64(sampledHash(*K.Mod) ^
              (sampledHash(*K.Name) * 0x9e3779b97f4a7c15ull)));
  }
};

/// The cross-module export index of the batch resolution phase: one map
/// per namespace from (module, name) to (provider, canonical type node).
/// A single probe resolves an import *and* decides the cross-module type
/// check — the stored type is a canonical pointer, so the check is one
/// pointer comparison against the importer's declared type. (Folding the
/// type into the hash key instead was measured slower: it doubles the
/// string hashing on every add and needs a second name-only index to tell
/// "unresolved" from "type mismatch".) Insertion overwrites, so the
/// newest provider of a re-exported name wins — the same shadowing rule
/// as newest-first sequential scanning.
class ExportIndex {
public:
  struct Entry {
    Provider P;
    const void *Ty; ///< Canonical FunType* / Pretype* of the export.
  };

  /// Pre-sizes the hash tables for the whole link set, so incremental
  /// add() never rehashes mid-link.
  void reserve(size_t FuncExports, size_t GlobalExports) {
    Funcs.reserve(FuncExports);
    Globals.reserve(GlobalExports);
  }

  void add(uint32_t InstIdx, const ir::Module &M) {
    for (uint32_t I = 0; I < M.Funcs.size(); ++I)
      for (const std::string &E : M.Funcs[I].Exports)
        Funcs.insert_or_assign({&M.Name, &E},
                               Entry{{InstIdx, I}, M.Funcs[I].Ty.get()});
    for (uint32_t I = 0; I < M.Globals.size(); ++I)
      for (const std::string &E : M.Globals[I].Exports)
        Globals.insert_or_assign({&M.Name, &E},
                                 Entry{{InstIdx, I}, M.Globals[I].P.get()});
  }

  const Entry *findFunc(const ir::ImportName &N) const {
    return Funcs.find({&N.Module, &N.Name});
  }
  const Entry *findGlobal(const ir::ImportName &N) const {
    return Globals.find({&N.Module, &N.Name});
  }

private:
  // Open-addressed: std::unordered_map pays one node allocation per
  // export, which dominated the batch path's profile.
  using Map = support::FlatMap<ExportKey, Entry, ExportKeyHash>;

  Map Funcs, Globals;
};

/// The reference resolution: scan earlier modules' export lists, newest
/// first (so a re-exported name shadows an older provider, matching the
/// index's overwrite-on-add semantics).
std::optional<Provider> scanFunc(const std::vector<const ir::Module *> &Mods,
                                 uint32_t Before, const ir::ImportName &N) {
  for (uint32_t MI = Before; MI > 0; --MI) {
    const ir::Module &P = *Mods[MI - 1];
    if (P.Name != N.Module)
      continue;
    for (uint32_t FI = static_cast<uint32_t>(P.Funcs.size()); FI > 0; --FI)
      for (const std::string &E : P.Funcs[FI - 1].Exports)
        if (E == N.Name)
          return Provider{MI - 1, FI - 1};
  }
  return std::nullopt;
}

std::optional<Provider> scanGlobal(const std::vector<const ir::Module *> &Mods,
                                   uint32_t Before, const ir::ImportName &N) {
  for (uint32_t MI = Before; MI > 0; --MI) {
    const ir::Module &P = *Mods[MI - 1];
    if (P.Name != N.Module)
      continue;
    for (uint32_t GI = static_cast<uint32_t>(P.Globals.size()); GI > 0; --GI)
      for (const std::string &E : P.Globals[GI - 1].Exports)
        if (E == N.Name)
          return Provider{MI - 1, GI - 1};
  }
  return std::nullopt;
}

/// Shared arena guard: canonical-pointer type equality is only meaningful
/// within one arena, so cross-arena links are rejected with a directed
/// diagnostic rather than a puzzling "type mismatch".
template <class Node>
Status checkSameArena(const Node &ImpTy, const Node &ProvTy,
                      const ir::Module &M, const ir::Module &PM) {
  if (ImpTy.arena() && ProvTy.arena() && ImpTy.arena() != ProvTy.arena())
    return Error("modules '" + M.Name + "' and '" + PM.Name +
                 "' use different type arenas; linked modules must "
                 "intern their types into one shared arena");
  return Status::success();
}

} // namespace

Expected<std::vector<ResolvedModule>>
rw::link::resolveImports(const std::vector<const ir::Module *> &Mods,
                         const ResolveOptions &Opts) {
  OBS_SPAN("resolve", Mods.size());
  std::vector<ResolvedModule> Out;
  Out.reserve(Mods.size());
  ExportIndex Index;
  bool Batch = Opts.Mode == ResolveMode::Batch;
  if (Batch) {
    size_t FuncExports = 0, GlobalExports = 0;
    for (const ir::Module *M : Mods) {
      for (const ir::Function &F : M->Funcs)
        FuncExports += F.Exports.size();
      for (const ir::Global &G : M->Globals)
        GlobalExports += G.Exports.size();
    }
    Index.reserve(FuncExports, GlobalExports);
  }

  for (uint32_t Idx = 0; Idx < Mods.size(); ++Idx) {
    const ir::Module &M = *Mods[Idx];
    ResolvedModule R;

    for (uint32_t FI = 0; FI < M.Funcs.size(); ++FI) {
      const ir::Function &F = M.Funcs[FI];
      if (!F.isImport())
        continue;
      std::optional<Provider> P;
      if (Batch) {
        // One probe resolves and type-checks: the stored canonical
        // FunType* pointer-compares against the importer's declared type.
        if (const ExportIndex::Entry *E = Index.findFunc(*F.Import)) {
          if (E->Ty == F.Ty.get()) {
            R.FuncImports.push_back(E->P);
            continue;
          }
          P = E->P; // Name resolves; fall through to diagnose the type.
        }
      } else {
        P = scanFunc(Mods, Idx, *F.Import);
      }
      if (!P) {
        if (Opts.AllowUnresolvedFuncs) {
          // Shipping-path semantics: no in-set provider means the import
          // stays open, to be satisfied by the host after lowering.
          R.FuncImports.push_back(
              {ResolvedModule::Unresolved, ResolvedModule::Unresolved});
          continue;
        }
        return Error("unresolved import " + F.Import->Module + "." +
                     F.Import->Name + " in module '" + M.Name + "'");
      }
      // The cross-module safety check: declared import type must equal the
      // provider's declared export type. Types are hash-consed, so this is
      // a pointer comparison — valid because all linked modules intern
      // into one shared arena (ir::Module::Arena defaults to the
      // process-wide one).
      const ir::Module &PM = *Mods[P->first];
      const ir::FunTypeRef &ProvTy = PM.Funcs[P->second].Ty;
      if (Status S = checkSameArena(*F.Ty, *ProvTy, M, PM); !S)
        return S.error();
      if (!ir::funTypeEquals(*F.Ty, *ProvTy))
        return Error("import type mismatch for " + F.Import->Module + "." +
                     F.Import->Name + ": importer expects " +
                     ir::printFunType(*F.Ty) + " but provider exports " +
                     ir::printFunType(*ProvTy));
      R.FuncImports.push_back(*P);
    }

    for (uint32_t GI = 0; GI < M.Globals.size(); ++GI) {
      const ir::Global &G = M.Globals[GI];
      if (!G.isImport())
        continue;
      std::optional<Provider> P;
      if (Batch) {
        if (const ExportIndex::Entry *E = Index.findGlobal(*G.Import)) {
          if (E->Ty == G.P.get()) {
            R.GlobalImports.push_back(E->P);
            continue;
          }
          P = E->P;
        }
      } else {
        P = scanGlobal(Mods, Idx, *G.Import);
      }
      if (!P)
        return Error("unresolved global import " + G.Import->Module + "." +
                     G.Import->Name + " in module '" + M.Name + "'");
      const ir::Module &PM = *Mods[P->first];
      const ir::Global &PG = PM.Globals[P->second];
      if (Status S = checkSameArena(*G.P, *PG.P, M, PM); !S)
        return S.error();
      if (!ir::pretypeEquals(*G.P, *PG.P))
        return Error("global import type mismatch for " + G.Import->Module +
                     "." + G.Import->Name);
      R.GlobalImports.push_back(*P);
    }

    if (Batch)
      Index.add(Idx, M);
    Out.push_back(std::move(R));
  }
  return Out;
}

Expected<std::unique_ptr<Machine>>
rw::link::instantiate(const std::vector<const ir::Module *> &Mods,
                      const LinkOptions &Opts) {
  // Phase 1: type-check every module in isolation (the paper's per-module
  // judgment; problematic interactions already fail here when a module's
  // declared imports are unsatisfiable).
  if (Opts.TypeCheck)
    for (const ir::Module *M : Mods)
      if (Status S = typing::checkModule(*M); !S)
        return Error("module '" + M->Name + "': " + S.error().message());

  // Phase 2a: the batch resolution phase — every import of every module
  // mapped to its provider (with the canonical-type equality check) before
  // any instance state exists.
  Expected<std::vector<ResolvedModule>> Resolved =
      resolveImports(Mods, Opts.Resolution);
  if (!Resolved)
    return Resolved.error();

  auto Mach = std::make_unique<Machine>(Store{});
  Store &S = Mach->store();

  // Phase 2b: build instances from the resolution.
  for (uint32_t Idx = 0; Idx < Mods.size(); ++Idx) {
    const ir::Module &M = *Mods[Idx];
    const ResolvedModule &R = (*Resolved)[Idx];
    Instance Inst;
    Inst.Mod = &M;

    size_t NextF = 0, NextG = 0;
    for (uint32_t FI = 0; FI < M.Funcs.size(); ++FI)
      if (M.Funcs[FI].isImport()) {
        const auto &[PMod, PIdx] = R.FuncImports[NextF++];
        Inst.Funcs.push_back({PMod, PIdx});
      } else {
        Inst.Funcs.push_back({Idx, FI});
      }

    for (uint32_t GI = 0; GI < M.Globals.size(); ++GI)
      if (M.Globals[GI].isImport()) {
        const auto &[PMod, PIdx] = R.GlobalImports[NextG++];
        Inst.Globals.push_back(S.Insts[PMod].Globals[PIdx]);
      } else {
        Inst.Globals.push_back(sem::Value::unit());
      }

    for (uint32_t TE : M.Tab.Entries) {
      if (TE >= Inst.Funcs.size())
        return Error("table entry out of range in module '" + M.Name + "'");
      Inst.Table.push_back(Inst.Funcs[TE]);
    }

    S.Insts.push_back(std::move(Inst));
  }

  if (!Opts.RunStart)
    return Mach;

  // Phase 3: run global initializers, then start functions, in module
  // order.
  for (uint32_t Idx = 0; Idx < Mods.size(); ++Idx) {
    const ir::Module &M = *Mods[Idx];
    for (uint32_t GI = 0; GI < M.Globals.size(); ++GI) {
      const ir::Global &G = M.Globals[GI];
      if (G.isImport() || G.Init.empty())
        continue;
      Mach->setupProgram(Idx, G.Init);
      Expected<std::vector<sem::Value>> R = Mach->run();
      if (!R)
        return Error("global initializer failed in module '" + M.Name +
                     "': " + R.error().message());
      if (R->size() != 1)
        return Error("global initializer must produce exactly one value");
      S.Insts[Idx].Globals[GI] = (*R)[0];
    }
  }
  for (uint32_t Idx = 0; Idx < Mods.size(); ++Idx) {
    const ir::Module &M = *Mods[Idx];
    if (!M.Start)
      continue;
    Expected<std::vector<sem::Value>> R = Mach->invoke(Idx, *M.Start, {}, {});
    if (!R)
      return Error("start function failed in module '" + M.Name +
                   "': " + R.error().message());
  }
  return Mach;
}

Expected<LoweredInstance>
rw::link::instantiateLowered(const std::vector<const ir::Module *> &Mods,
                             const LinkOptions &Opts) {
  // Warm path: the whole link set is content-addressed; a hit skips
  // checking, resolution, lowering, validation, and flat translation.
  serial::ModuleHash Key;
  if (Opts.Cache)
    Key = cache::programKey(Mods);
  // Head sampling for direct callers: inside ingest::admit the thread
  // already carries the admission's sampling decision; a bare
  // instantiateLowered with a cache gets its own deterministic decision
  // from the program content key (same modules → same decision, any
  // thread or pool size). Must precede OBS_SPAN so the scope outlives
  // the span's destructor-time recording check.
  std::optional<obs::TraceSampleScope> SampleScope;
  if (Opts.Cache && !obs::traceSampleActive())
    SampleScope.emplace(obs::traceSampleSelect(Key.Hi ^ Key.Lo));
  // Umbrella span for the whole admission (the per-phase spans nest
  // inside it in the trace).
  OBS_SPAN("admission", Mods.size());
  std::shared_ptr<const cache::LoweredArtifact> Art;
  if (Opts.Cache)
    Art = Opts.Cache->lookupProgram(Key);

  if (!Art) {
    // Cold path. The import-resolution phase is shared with instantiate()
    // (link/Resolve.h): the batch index decides providers, shadowing, and
    // the canonical-pointer import type checks; lowerProgram consumes the
    // Resolution instead of re-resolving. The type check runs exactly
    // once: checkModules records the per-module InfoMaps (the type
    // information §6's compiler consumes) and hands them to lowerProgram,
    // which then performs zero checkModule calls. With a pool, checking
    // is function-parallel and body lowering (module, function)-parallel
    // — both deterministic for any pool size.
    Expected<std::vector<ResolvedModule>> Resolved = resolveImports(
        Mods, ResolveOptions{Opts.Resolution, /*AllowUnresolvedFuncs=*/true});
    if (!Resolved)
      return Resolved.error();
    std::vector<typing::InfoMap> OwnInfos;
    const std::vector<typing::InfoMap> *Infos = Opts.Infos;
    if (Infos) {
      if (Infos->size() != Mods.size())
        return Error("InfoMap hand-off does not match the module list");
    } else if (Opts.Pool) {
      std::vector<Status> Checks =
          typing::checkModules(Mods, *Opts.Pool, &OwnInfos);
      for (size_t I = 0; I < Checks.size(); ++I)
        if (!Checks[I])
          return Error("module '" + Mods[I]->Name + "': " +
                       Checks[I].error().message());
      Infos = &OwnInfos;
    }
    // With neither hand-off nor pool, Infos stays null and lowerProgram's
    // own sequential checkModule fallback runs — one check either way.
    lower::LowerOptions LO;
    LO.Resolved = &*Resolved;
    LO.Infos = Infos;
    LO.Pool = Opts.Pool;
    Expected<lower::LoweredProgram> LP = lower::lowerProgram(Mods, LO);
    if (!LP)
      return LP.error();
    auto A = std::make_shared<cache::LoweredArtifact>();
    A->Program = LP.take();
    // A memoized artifact is served to *every* later caller, including
    // ones that ask for validation — so with a cache in play, validation
    // always runs before the store (ValidateWasm=false only skips it for
    // uncached one-shot instantiation). Warm hits are therefore always
    // validated artifacts.
    if (Opts.ValidateWasm || Opts.Cache)
      if (Status S = wasm::validate(A->Program.Module); !S)
        return S.error().addContext("lowered module validation");
    // Translate once here (not lazily in the engine) so the memoized
    // artifact serves both engines on every later hit; validated lowered
    // modules always translate. Without a cache, only the flat-bytecode
    // tiers (Flat and the Jit that compiles from it) need it.
    if (Opts.Cache || Opts.Engine != wasm::EngineKind::Tree) {
      Expected<exec::FlatModule> FM = exec::translate(A->Program.Module);
      if (!FM)
        return FM.error().addContext("flat translation");
      A->Flat = FM.take();
    }
    Art = A;
    if (Opts.Cache)
      Opts.Cache->storeProgram(Key, Art);
  }

  OBS_SPAN("instantiate", Mods.size());
  std::unique_ptr<wasm::Instance> Inst;
  if (Opts.Engine != wasm::EngineKind::Tree) {
    auto FI = std::make_unique<exec::FlatInstance>(Art->Program.Module,
                                                   Opts.Engine);
    // Borrow the artifact's translation (zero-copy): the aliasing handle
    // keeps the artifact alive, and the translation is immutable — all
    // mutable execution state is per-instance (the tier-3 compiler only
    // reads it).
    FI->adoptPretranslated(
        std::shared_ptr<const exec::FlatModule>(Art, &Art->Flat));
    if (Opts.JitThreshold)
      FI->setTierPolicy(*Opts.JitThreshold, Opts.JitBackground);
    Inst = std::move(FI);
  } else {
    Inst = wasm::createInstance(Art->Program.Module, Opts.Engine);
  }
  if (Opts.Profile)
    Inst->enableProfiling();
  // RunStart only gates the start function; instance state (memory,
  // globals, data, host/flat preparation) always exists.
  if (Status S = Inst->initialize(Opts.RunStart); !S)
    return S.error();
  // Alias the artifact's program so eviction cannot free it under us.
  return LoweredInstance{
      std::shared_ptr<const lower::LoweredProgram>(Art, &Art->Program),
      std::move(Inst)};
}
