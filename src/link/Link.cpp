//===- link/Link.cpp - Multi-module linking and instantiation ------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "link/Link.h"

#include "ir/Print.h"
#include "ir/TypeOps.h"
#include "typing/Checker.h"
#include "wasm/Validate.h"

#include <map>

using namespace rw;
using namespace rw::link;
using sem::Closure;
using sem::Instance;
using sem::Machine;
using sem::Store;

std::optional<uint32_t> rw::link::findExport(const ir::Module &M,
                                             const std::string &Name) {
  for (uint32_t I = 0; I < M.Funcs.size(); ++I)
    for (const std::string &E : M.Funcs[I].Exports)
      if (E == Name)
        return I;
  return std::nullopt;
}

namespace {

/// Index of exported names across already-instantiated modules.
class ExportIndex {
public:
  void add(uint32_t InstIdx, const ir::Module &M) {
    for (uint32_t I = 0; I < M.Funcs.size(); ++I)
      for (const std::string &E : M.Funcs[I].Exports)
        Funcs[{M.Name, E}] = {InstIdx, I};
    for (uint32_t I = 0; I < M.Globals.size(); ++I)
      for (const std::string &E : M.Globals[I].Exports)
        Globals[{M.Name, E}] = {InstIdx, I};
  }

  std::optional<Closure> findFunc(const ir::ImportName &N) const {
    auto It = Funcs.find({N.Module, N.Name});
    if (It == Funcs.end())
      return std::nullopt;
    return Closure{It->second.first, It->second.second};
  }
  std::optional<std::pair<uint32_t, uint32_t>>
  findGlobal(const ir::ImportName &N) const {
    auto It = Globals.find({N.Module, N.Name});
    if (It == Globals.end())
      return std::nullopt;
    return It->second;
  }

private:
  std::map<std::pair<std::string, std::string>, std::pair<uint32_t, uint32_t>>
      Funcs, Globals;
};

} // namespace

Expected<std::unique_ptr<Machine>>
rw::link::instantiate(const std::vector<const ir::Module *> &Mods,
                      const LinkOptions &Opts) {
  // Phase 1: type-check every module in isolation (the paper's per-module
  // judgment; problematic interactions already fail here when a module's
  // declared imports are unsatisfiable).
  if (Opts.TypeCheck)
    for (const ir::Module *M : Mods)
      if (Status S = typing::checkModule(*M); !S)
        return Error("module '" + M->Name + "': " + S.error().message());

  auto Mach = std::make_unique<Machine>(Store{});
  Store &S = Mach->store();
  ExportIndex Exports;

  // Phase 2: resolve imports and build instances.
  for (uint32_t Idx = 0; Idx < Mods.size(); ++Idx) {
    const ir::Module &M = *Mods[Idx];
    Instance Inst;
    Inst.Mod = &M;

    for (uint32_t FI = 0; FI < M.Funcs.size(); ++FI) {
      const ir::Function &F = M.Funcs[FI];
      if (!F.isImport()) {
        Inst.Funcs.push_back({Idx, FI});
        continue;
      }
      std::optional<Closure> Provider = Exports.findFunc(*F.Import);
      if (!Provider)
        return Error("unresolved import " + F.Import->Module + "." +
                     F.Import->Name + " in module '" + M.Name + "'");
      // The cross-module safety check: declared import type must equal the
      // provider's declared export type. Types are hash-consed, so this is
      // a pointer comparison — valid because all linked modules intern
      // into one shared arena (ir::Module::Arena defaults to the
      // process-wide one).
      const ir::Module &PM = *Mods[Provider->InstIdx];
      const ir::FunTypeRef &ProvTy = PM.Funcs[Provider->FuncIdx].Ty;
      if (F.Ty->arena() && ProvTy->arena() &&
          F.Ty->arena() != ProvTy->arena())
        return Error("modules '" + M.Name + "' and '" + PM.Name +
                     "' use different type arenas; linked modules must "
                     "intern their types into one shared arena");
      if (!ir::funTypeEquals(*F.Ty, *ProvTy))
        return Error("import type mismatch for " + F.Import->Module + "." +
                     F.Import->Name + ": importer expects " +
                     ir::printFunType(*F.Ty) + " but provider exports " +
                     ir::printFunType(*ProvTy));
      Inst.Funcs.push_back(*Provider);
    }

    for (uint32_t GI = 0; GI < M.Globals.size(); ++GI) {
      const ir::Global &G = M.Globals[GI];
      if (!G.isImport()) {
        Inst.Globals.push_back(sem::Value::unit());
        continue;
      }
      auto Provider = Exports.findGlobal(*G.Import);
      if (!Provider)
        return Error("unresolved global import " + G.Import->Module + "." +
                     G.Import->Name + " in module '" + M.Name + "'");
      const ir::Module &PM = *Mods[Provider->first];
      const ir::Global &PG = PM.Globals[Provider->second];
      if (G.P->arena() && PG.P->arena() && G.P->arena() != PG.P->arena())
        return Error("modules '" + M.Name + "' and '" + PM.Name +
                     "' use different type arenas; linked modules must "
                     "intern their types into one shared arena");
      if (!ir::pretypeEquals(*G.P, *PG.P))
        return Error("global import type mismatch for " + G.Import->Module +
                     "." + G.Import->Name);
      Inst.Globals.push_back(S.Insts[Provider->first].Globals[Provider->second]);
    }

    for (uint32_t TE : M.Tab.Entries) {
      if (TE >= Inst.Funcs.size())
        return Error("table entry out of range in module '" + M.Name + "'");
      Inst.Table.push_back(Inst.Funcs[TE]);
    }

    S.Insts.push_back(std::move(Inst));
    Exports.add(Idx, M);
  }

  if (!Opts.RunStart)
    return Mach;

  // Phase 3: run global initializers, then start functions, in module
  // order.
  for (uint32_t Idx = 0; Idx < Mods.size(); ++Idx) {
    const ir::Module &M = *Mods[Idx];
    for (uint32_t GI = 0; GI < M.Globals.size(); ++GI) {
      const ir::Global &G = M.Globals[GI];
      if (G.isImport() || G.Init.empty())
        continue;
      Mach->setupProgram(Idx, G.Init);
      Expected<std::vector<sem::Value>> R = Mach->run();
      if (!R)
        return Error("global initializer failed in module '" + M.Name +
                     "': " + R.error().message());
      if (R->size() != 1)
        return Error("global initializer must produce exactly one value");
      S.Insts[Idx].Globals[GI] = (*R)[0];
    }
  }
  for (uint32_t Idx = 0; Idx < Mods.size(); ++Idx) {
    const ir::Module &M = *Mods[Idx];
    if (!M.Start)
      continue;
    Expected<std::vector<sem::Value>> R = Mach->invoke(Idx, *M.Start, {}, {});
    if (!R)
      return Error("start function failed in module '" + M.Name +
                   "': " + R.error().message());
  }
  return Mach;
}

Expected<LoweredInstance>
rw::link::instantiateLowered(const std::vector<const ir::Module *> &Mods,
                             const LinkOptions &Opts) {
  // lowerProgram performs the per-module type check and the import
  // signature checks as part of lowering (the same guarantees as
  // instantiate, on the shipping path).
  Expected<lower::LoweredProgram> LP = lower::lowerProgram(Mods);
  if (!LP)
    return LP.error();
  auto Program = std::make_unique<lower::LoweredProgram>(LP.take());
  if (Opts.ValidateWasm)
    if (Status S = wasm::validate(Program->Module); !S)
      return S.error().addContext("lowered module validation");
  std::unique_ptr<wasm::Instance> Inst =
      wasm::createInstance(Program->Module, Opts.Engine);
  // RunStart only gates the start function; instance state (memory,
  // globals, data, host/flat preparation) always exists.
  if (Status S = Inst->initialize(Opts.RunStart); !S)
    return S.error();
  return LoweredInstance{std::move(Program), std::move(Inst)};
}
