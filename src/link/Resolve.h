//===- link/Resolve.h - Batch import resolution ----------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine-independent import-resolution phase of linking, split out of
/// link/Link.h so the RichWasm→Wasm lowering can consume a precomputed
/// Resolution instead of re-resolving imports itself (DESIGN.md §7):
/// link::instantiate, link::instantiateLowered, and lower::lowerProgram all
/// run imports through this one phase, so provider selection, shadowing,
/// and the canonical-pointer import/export type check cannot drift between
/// the reference and shipping paths.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_LINK_RESOLVE_H
#define RICHWASM_LINK_RESOLVE_H

#include "ir/Module.h"
#include "support/Error.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace rw::link {

/// How resolveImports matches imports against providers.
enum class ResolveMode : uint8_t {
  /// Reference path: each import linearly scans the earlier modules'
  /// export lists (latest provider wins). O(modules x exports) per
  /// import — kept as the baseline the batch index is benchmarked
  /// against (bench/fig3, BENCH_link.json).
  Sequential,
  /// Batch path: one cross-module export index, hashed on
  /// (module, name) and carrying the export's canonical type pointer in
  /// the entry, built incrementally in link order. Resolving N modules'
  /// imports is O(total imports + total exports) hash operations, and
  /// one probe both resolves an import and decides the import/export
  /// type check — a pointer comparison of the stored canonical type
  /// against the importer's declared type (DESIGN.md §7).
  Batch,
};

/// Import resolution for one module: the providing (module index,
/// function/global index) of every *imported* function (resp. global),
/// in declaration order. Defined entries are omitted — they trivially
/// resolve to themselves, and materializing them would make resolution
/// cost proportional to module size instead of import count.
struct ResolvedModule {
  /// Sentinel provider index: a function import with no in-set provider
  /// (only produced under ResolveOptions::AllowUnresolvedFuncs; the
  /// lowering turns these into Wasm host imports).
  static constexpr uint32_t Unresolved = 0xffffffffu;

  std::vector<std::pair<uint32_t, uint32_t>> FuncImports;
  std::vector<std::pair<uint32_t, uint32_t>> GlobalImports;
};

struct ResolveOptions {
  ResolveMode Mode = ResolveMode::Batch;
  /// Shipping-path semantics (lower::lowerProgram): a function import no
  /// earlier module provides is not an error — it resolves to
  /// ResolvedModule::Unresolved and becomes a Wasm import satisfiable by
  /// the host. A *named* provider with a mismatched type is still an
  /// error, and global imports must always resolve.
  bool AllowUnresolvedFuncs = false;
};

/// The batch resolution phase of linking, engine-independent: resolves
/// every import of every module against the exports of *earlier* modules
/// (Wasm instantiation order; latest provider wins for a duplicated
/// export name), checking import/export type equality on canonical
/// pointers. Does not type-check module bodies, run initializers, or
/// build instances — instantiate() layers those on top. Fails on the
/// first unresolved or type-mismatched import, in (module, import) order
/// regardless of mode.
Expected<std::vector<ResolvedModule>>
resolveImports(const std::vector<const ir::Module *> &Mods,
               const ResolveOptions &Opts);

inline Expected<std::vector<ResolvedModule>>
resolveImports(const std::vector<const ir::Module *> &Mods,
               ResolveMode Mode = ResolveMode::Batch) {
  return resolveImports(Mods, ResolveOptions{Mode, false});
}

} // namespace rw::link

#endif // RICHWASM_LINK_RESOLVE_H
