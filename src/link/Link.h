//===- link/Link.h - Multi-module linking and instantiation -----*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linking is where RichWasm's cross-language guarantees bite: modules
/// compiled separately (say, from ML and from L3) are combined into one
/// store, and every import is checked against the provider's declared
/// export type with full structural equality of RichWasm types. A module
/// pair whose interaction would break memory safety — the Fig 1 / Fig 3
/// stash example — fails either module type checking or this signature
/// check; nothing unsafe ever reaches execution.
///
/// Instantiation follows Wasm: modules are instantiated in order, imports
/// resolve against earlier instances, global initializers run, then start
/// functions.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_LINK_LINK_H
#define RICHWASM_LINK_LINK_H

#include "ir/Module.h"
#include "link/Resolve.h"
#include "lower/Lower.h"
#include "sem/Machine.h"
#include "support/Error.h"
#include "typing/Checker.h"
#include "wasm/Instance.h"

#include <memory>
#include <vector>

namespace rw::cache {
class AdmissionCache;
} // namespace rw::cache

namespace rw::support {
class ThreadPool;
} // namespace rw::support

namespace rw::link {

struct LinkOptions {
  /// Type-check every module before instantiation (the RichWasm
  /// guarantee); disable only for measuring raw instantiation cost.
  bool TypeCheck = true;
  /// Run global initializers and start functions.
  bool RunStart = true;
  /// Execution engine for the lowered path (instantiateLowered): the
  /// tree-walking reference interpreter, the flat-bytecode engine, or
  /// the flat engine with eager tier-3 native compilation (Jit).
  wasm::EngineKind Engine = wasm::EngineKind::Tree;
  /// Tier-up threshold override for Flat/Jit instances (see
  /// exec::FlatInstance::setTierPolicy): 0 compiles every function at
  /// prepare(), N >= 1 tiers a function once its profile mass reaches N,
  /// FlatInstance::NeverTier disables tiering. Unset keeps the engine
  /// default (Jit tiers eagerly; Flat honors RW_JIT_THRESHOLD).
  std::optional<uint64_t> JitThreshold;
  /// Run threshold-triggered tier-up compiles on a background thread.
  bool JitBackground = false;
  /// Validate the lowered Wasm module before instantiation. With a Cache
  /// set this is effectively always on: an artifact is validated before
  /// it is stored (it will be served to every later caller), so warm
  /// hits are always validated artifacts.
  bool ValidateWasm = true;
  /// Import resolution strategy (see link/Resolve.h).
  ResolveMode Resolution = ResolveMode::Batch;
  /// Optional content-addressed admission cache (src/cache/). When set,
  /// instantiateLowered keys the whole link set by module content hashes:
  /// a warm resubmission skips type checking, lowering, validation, and
  /// flat translation entirely and goes straight to instantiation of the
  /// cached artifact. Not owned; must outlive the call.
  cache::AdmissionCache *Cache = nullptr;
  /// Optional thread pool for the *cold* lowered path: batch checking
  /// runs function-parallel (typing::checkModules) and body lowering
  /// (module, function)-parallel (lower::LowerOptions::Pool), both with
  /// deterministic, pool-size-independent output. Not owned.
  support::ThreadPool *Pool = nullptr;
  /// Per-module InfoMaps from a typing::checkModules(…, &Infos) the caller
  /// already ran (an admission server checks for verdicts first): the cold
  /// lowered path then performs *zero* further checkModule calls. Size
  /// must match the module list; the modules' arena must stay alive and
  /// un-rolled-back for the call (see Checker.h's InfoMap contract). Not
  /// owned.
  const std::vector<typing::InfoMap> *Infos = nullptr;
  /// Enable per-function execution profiling (invocation + loop-head
  /// counters, wasm::Instance::functionProfiles) on the instance the
  /// lowered path creates. The flat engine re-translates locally with
  /// profile bumps fused in — the cached artifact stays unprofiled — so
  /// a warm cache hit still skips check/lower/validate.
  bool Profile = false;
};

/// Links and instantiates \p Mods in order. The returned machine owns the
/// store; instance i corresponds to Mods[i]. Module pointers must outlive
/// the machine.
Expected<std::unique_ptr<sem::Machine>>
instantiate(const std::vector<const ir::Module *> &Mods,
            const LinkOptions &Opts = LinkOptions());

/// Finds the index of the function exporting \p Name in \p M, if any.
std::optional<uint32_t> findExport(const ir::Module &M,
                                   const std::string &Name);

/// The shipping path: a whole program linked, lowered to one Wasm
/// module, and instantiated on the engine selected by
/// LinkOptions::Engine. Holds the lowered module (the instance borrows
/// it) and the GC metadata the embedder needs to run collections.
/// Ownership is shared so an admission cache can hand the same lowered
/// artifact to many instances (and evict it while instances still run).
struct LoweredInstance {
  std::shared_ptr<const lower::LoweredProgram> Program;
  std::unique_ptr<wasm::Instance> Instance;

  /// Invokes "module.export" (the lowered export naming scheme).
  Expected<std::vector<wasm::WValue>>
  invokeExport(const std::string &Name, std::vector<wasm::WValue> Args,
               uint64_t MaxFuel = 1'000'000'000) {
    return Instance->invokeByName(Name, std::move(Args), MaxFuel);
  }
};

/// Type-checks, links, and lowers \p Mods (modules in link order, like
/// instantiate), then instantiates the lowered Wasm module on the
/// engine chosen in \p Opts. Module pointers must outlive the result.
Expected<LoweredInstance>
instantiateLowered(const std::vector<const ir::Module *> &Mods,
                   const LinkOptions &Opts = LinkOptions());

} // namespace rw::link

#endif // RICHWASM_LINK_LINK_H
