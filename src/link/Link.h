//===- link/Link.h - Multi-module linking and instantiation -----*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linking is where RichWasm's cross-language guarantees bite: modules
/// compiled separately (say, from ML and from L3) are combined into one
/// store, and every import is checked against the provider's declared
/// export type with full structural equality of RichWasm types. A module
/// pair whose interaction would break memory safety — the Fig 1 / Fig 3
/// stash example — fails either module type checking or this signature
/// check; nothing unsafe ever reaches execution.
///
/// Instantiation follows Wasm: modules are instantiated in order, imports
/// resolve against earlier instances, global initializers run, then start
/// functions.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_LINK_LINK_H
#define RICHWASM_LINK_LINK_H

#include "ir/Module.h"
#include "lower/Lower.h"
#include "sem/Machine.h"
#include "support/Error.h"
#include "wasm/Instance.h"

#include <memory>
#include <vector>

namespace rw::link {

/// How instantiate resolves imports against providers.
enum class ResolveMode : uint8_t {
  /// Reference path: each import linearly scans the earlier modules'
  /// export lists (latest provider wins). O(modules x exports) per
  /// import — kept as the baseline the batch index is benchmarked
  /// against (bench/fig3, BENCH_link.json).
  Sequential,
  /// Batch path: one cross-module export index, hashed on
  /// (module, name) and carrying the export's canonical type pointer in
  /// the entry, built incrementally in link order. Resolving N modules'
  /// imports is O(total imports + total exports) hash operations, and
  /// one probe both resolves an import and decides the import/export
  /// type check — a pointer comparison of the stored canonical type
  /// against the importer's declared type (DESIGN.md §7).
  Batch,
};

struct LinkOptions {
  /// Type-check every module before instantiation (the RichWasm
  /// guarantee); disable only for measuring raw instantiation cost.
  bool TypeCheck = true;
  /// Run global initializers and start functions.
  bool RunStart = true;
  /// Execution engine for the lowered path (instantiateLowered): the
  /// tree-walking reference interpreter or the flat-bytecode engine.
  wasm::EngineKind Engine = wasm::EngineKind::Tree;
  /// Validate the lowered Wasm module before instantiation.
  bool ValidateWasm = true;
  /// Import resolution strategy (see ResolveMode).
  ResolveMode Resolution = ResolveMode::Batch;
};

/// Import resolution for one module: the providing (module index,
/// function/global index) of every *imported* function (resp. global),
/// in declaration order. Defined entries are omitted — they trivially
/// resolve to themselves, and materializing them would make resolution
/// cost proportional to module size instead of import count.
struct ResolvedModule {
  std::vector<std::pair<uint32_t, uint32_t>> FuncImports;
  std::vector<std::pair<uint32_t, uint32_t>> GlobalImports;
};

/// The batch resolution phase of linking, engine-independent: resolves
/// every import of every module against the exports of *earlier* modules
/// (Wasm instantiation order; latest provider wins for a duplicated
/// export name), checking import/export type equality on canonical
/// pointers. Does not type-check module bodies, run initializers, or
/// build instances — instantiate() layers those on top. Fails on the
/// first unresolved or type-mismatched import, in (module, import) order
/// regardless of mode.
Expected<std::vector<ResolvedModule>>
resolveImports(const std::vector<const ir::Module *> &Mods,
               ResolveMode Mode = ResolveMode::Batch);

/// Links and instantiates \p Mods in order. The returned machine owns the
/// store; instance i corresponds to Mods[i]. Module pointers must outlive
/// the machine.
Expected<std::unique_ptr<sem::Machine>>
instantiate(const std::vector<const ir::Module *> &Mods,
            const LinkOptions &Opts = LinkOptions());

/// Finds the index of the function exporting \p Name in \p M, if any.
std::optional<uint32_t> findExport(const ir::Module &M,
                                   const std::string &Name);

/// The shipping path: a whole program linked, lowered to one Wasm
/// module, and instantiated on the engine selected by
/// LinkOptions::Engine. Owns the lowered module (the instance borrows
/// it) and the GC metadata the embedder needs to run collections.
struct LoweredInstance {
  std::unique_ptr<lower::LoweredProgram> Program;
  std::unique_ptr<wasm::Instance> Instance;

  /// Invokes "module.export" (the lowered export naming scheme).
  Expected<std::vector<wasm::WValue>>
  invokeExport(const std::string &Name, std::vector<wasm::WValue> Args,
               uint64_t MaxFuel = 1'000'000'000) {
    return Instance->invokeByName(Name, std::move(Args), MaxFuel);
  }
};

/// Type-checks, links, and lowers \p Mods (modules in link order, like
/// instantiate), then instantiates the lowered Wasm module on the
/// engine chosen in \p Opts. Module pointers must outlive the result.
Expected<LoweredInstance>
instantiateLowered(const std::vector<const ir::Module *> &Mods,
                   const LinkOptions &Opts = LinkOptions());

} // namespace rw::link

#endif // RICHWASM_LINK_LINK_H
