//===- cache/AdmissionCache.cpp - Content-addressed admission cache -------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Each shard is one mutex-guarded LRU over both entry kinds (check
// verdicts and lowered artifacts) with its slice of the byte budget: a
// recency list whose nodes own the values, plus one hash index per kind
// pointing into it. Every operation is a couple of hash probes and a
// list splice, so a lock is held for nanoseconds; the default single
// shard gives exact global recency, and a server constructs with more
// shards to spread client threads across independent locks (the shard
// is picked from the content key, so a given key always lands on the
// same shard). Also defines the cached typing::checkModules overload,
// which lives here (not in typing/) so the typing layer keeps no cache
// dependency beyond a forward declaration.
//
//===----------------------------------------------------------------------===//

#include "cache/AdmissionCache.h"

#include "obs/Obs.h"
#include "support/FaultInject.h"
#include "support/Hashing.h"
#include "support/ThreadPool.h"
#include "typing/Checker.h"

#include <list>
#include <mutex>
#include <unordered_map>

using namespace rw;
using namespace rw::cache;

serial::ModuleHash
rw::cache::programKey(const std::vector<const ir::Module *> &Mods) {
  // Fold per-module hashes in link order (order decides shadowing). The
  // multiplier keeps [A, B] distinct from [B, A].
  using support::mix64;
  serial::ModuleHash K{0x9e3779b97f4a7c15ull, 0x2545f4914f6cdd1dull};
  for (const ir::Module *M : Mods) {
    serial::ModuleHash H = serial::moduleHash(*M);
    K.Hi = mix64(K.Hi * 0x100000001b3ull ^ H.Hi);
    K.Lo = mix64(K.Lo * 0x100000001b3ull ^ H.Lo);
  }
  return K;
}

namespace {

struct KeyHash {
  size_t operator()(const serial::ModuleHash &K) const {
    return static_cast<size_t>(K.Hi ^ (K.Lo * 0x9e3779b97f4a7c15ull));
  }
};

//===----------------------------------------------------------------------===//
// Byte accounting
//===----------------------------------------------------------------------===//

uint64_t instBytes(const wasm::WInst &I) {
  uint64_t B = sizeof(wasm::WInst) + I.Table.size() * sizeof(uint32_t) +
               (I.BT.Params.size() + I.BT.Results.size());
  for (const wasm::WInst &C : I.Body)
    B += instBytes(C);
  for (const wasm::WInst &C : I.Else)
    B += instBytes(C);
  return B;
}

uint64_t artifactBytes(const LoweredArtifact &A) {
  uint64_t B = sizeof(LoweredArtifact);
  const wasm::WModule &M = A.Program.Module;
  for (const wasm::FuncType &T : M.Types)
    B += sizeof(wasm::FuncType) + T.Params.size() + T.Results.size();
  for (const wasm::WFunc &F : M.Funcs) {
    B += sizeof(wasm::WFunc) + F.Locals.size();
    for (const wasm::WInst &I : F.Body)
      B += instBytes(I);
  }
  for (const wasm::WGlobal &G : M.Globals) {
    B += sizeof(wasm::WGlobal);
    for (const wasm::WInst &I : G.Init)
      B += instBytes(I);
  }
  B += M.TableElems.size() * sizeof(uint32_t);
  for (const wasm::WExport &E : M.Exports)
    B += sizeof(wasm::WExport) + E.Name.size();
  for (const wasm::WImportFunc &F : M.ImportFuncs)
    B += sizeof(wasm::WImportFunc) + F.Mod.size() + F.Name.size();
  for (const wasm::WData &D : M.Data)
    B += sizeof(wasm::WData) + D.Bytes.size();
  for (const auto &[Name, Idx] : A.Program.Exports)
    B += Name.size() + 64;
  B += (A.Program.FuncMap.size() + A.Program.TableBase.size()) * 64;
  B += A.Program.RefGlobals.size() * sizeof(uint32_t);
  for (const exec::FlatFunc &F : A.Flat.Funcs)
    B += sizeof(exec::FlatFunc) + F.Code.size() * sizeof(uint32_t);
  B += A.Flat.CanonType.size() * sizeof(uint32_t);
  return B;
}

uint64_t checkBytes(const CheckResult &R) {
  return 64 + R.Diagnostics.size();
}

} // namespace

//===----------------------------------------------------------------------===//
// LRU store
//===----------------------------------------------------------------------===//

struct AdmissionCache::Impl {
  enum class Kind : uint8_t { Check, Program };

  struct Entry {
    Kind K;
    serial::ModuleHash Key;
    CheckResult Check;
    std::shared_ptr<const LoweredArtifact> Art;
    uint64_t Bytes = 0;
  };

  using Lru = std::list<Entry>;
  using Map = std::unordered_map<serial::ModuleHash, Lru::iterator, KeyHash>;

  mutable std::mutex M;
  Lru Recency; ///< Front = most recently used.
  Map Checks, Programs;
  CacheStats St;

  Map &mapFor(Kind K) { return K == Kind::Check ? Checks : Programs; }

  void touch(Lru::iterator It) { Recency.splice(Recency.begin(), Recency, It); }

  /// Evicts from the LRU tail until the resident bytes fit the budget.
  /// (Entries larger than the whole budget never get in — see insert.)
  void evict(uint64_t Budget) {
    while (St.Bytes > Budget && !Recency.empty()) {
      Entry &E = Recency.back();
      mapFor(E.K).erase(E.Key);
      St.Bytes -= E.Bytes;
      --St.Entries;
      ++St.Evictions;
      Recency.pop_back();
    }
  }

  void insert(Kind K, const serial::ModuleHash &Key, Entry E,
              uint64_t Budget) {
    // An entry the whole budget cannot hold is rejected up front: pushing
    // it through the LRU would evict every resident entry before the
    // oversized one itself went, flushing the warm set for nothing.
    if (E.Bytes > Budget)
      return;
    Map &M = mapFor(K);
    auto It = M.find(Key);
    if (It != M.end()) {
      // Content-addressed: a re-store carries the same value; refresh
      // recency and keep the resident entry.
      touch(It->second);
      return;
    }
    St.Bytes += E.Bytes;
    ++St.Entries;
    Recency.push_front(std::move(E));
    M.emplace(Key, Recency.begin());
    evict(Budget);
  }
};

AdmissionCache::AdmissionCache(uint64_t ByteBudget, unsigned Shards)
    : Budget(ByteBudget), NumShards(Shards == 0 ? 1 : Shards),
      ShardBudget(ByteBudget / (Shards == 0 ? 1 : Shards)) {
  Sh.reserve(NumShards);
  for (unsigned S = 0; S < NumShards; ++S)
    Sh.push_back(std::make_unique<Impl>());
  // Every cache joins obs::snapshot() for its lifetime (a second live
  // cache shows up as "cache#2.*"). stats() takes the shard mutexes,
  // which is why snapshot() samples sources outside the registry lock.
  // A sharded cache also emits per-shard keys ("shard0.hits", ...) so
  // partition skew and per-shard pressure are visible; renderPrometheus
  // lifts the "shard<i>" segment into a shard="<i>" label.
  ObsSourceId = obs::registerSource("cache", [this](const obs::EmitFn &E) {
    CacheStats S = stats();
    E("hits", S.hits());
    E("misses", S.misses());
    E("check_hits", S.CheckHits);
    E("check_misses", S.CheckMisses);
    E("program_hits", S.ProgramHits);
    E("program_misses", S.ProgramMisses);
    E("evictions", S.Evictions);
    E("bytes", S.Bytes);
    E("entries", S.Entries);
    E("shards", NumShards);
    if (NumShards > 1) {
      for (unsigned I = 0; I < NumShards; ++I) {
        CacheStats P = shardStats(I);
        std::string Prefix = "shard" + std::to_string(I) + ".";
        E((Prefix + "hits").c_str(), P.hits());
        E((Prefix + "misses").c_str(), P.misses());
        E((Prefix + "evictions").c_str(), P.Evictions);
        E((Prefix + "bytes").c_str(), P.Bytes);
        E((Prefix + "entries").c_str(), P.Entries);
      }
    }
  });
}

AdmissionCache::~AdmissionCache() { obs::unregisterSource(ObsSourceId); }

AdmissionCache::Impl &AdmissionCache::shardFor(const serial::ModuleHash &Key) {
  if (NumShards == 1)
    return *Sh[0];
  // Mix the words through two rounds so the shard choice neither shares
  // bits with the per-shard map's KeyHash (which folds Lo into Hi) nor
  // collapses for correlated Hi/Lo pairs (Lo ^ (Hi << 1) is constant
  // along the line Lo = 2*Hi + c — cache_test pins this with synthetic
  // keys; real keys are Merkle hashes but cost here is two multiplies).
  return *Sh[support::mix64(Key.Lo ^ support::mix64(Key.Hi)) % NumShards];
}

std::optional<CheckResult>
AdmissionCache::lookupCheck(const serial::ModuleHash &Key) {
  OBS_SPAN("cache_probe");
  Impl &I = shardFor(Key);
  std::lock_guard<std::mutex> G(I.M);
  auto It = I.Checks.find(Key);
  if (It == I.Checks.end()) {
    ++I.St.CheckMisses;
    return std::nullopt;
  }
  ++I.St.CheckHits;
  I.touch(It->second);
  return It->second->Check;
}

void AdmissionCache::storeCheck(const serial::ModuleHash &Key, CheckResult R) {
  OBS_SPAN("cache_store");
  // Store-failure seam: a dropped store degrades to uncached admission —
  // the verdict is simply recomputed on the next submission.
  if (RW_FAULT_POINT(support::fault::Seam::CacheStore))
    return;
  Impl::Entry E;
  E.K = Impl::Kind::Check;
  E.Key = Key;
  E.Bytes = checkBytes(R);
  E.Check = std::move(R);
  Impl &I = shardFor(Key);
  std::lock_guard<std::mutex> G(I.M);
  I.insert(Impl::Kind::Check, Key, std::move(E), ShardBudget);
}

std::shared_ptr<const LoweredArtifact>
AdmissionCache::lookupProgram(const serial::ModuleHash &Key) {
  OBS_SPAN("cache_probe");
  Impl &I = shardFor(Key);
  std::lock_guard<std::mutex> G(I.M);
  auto It = I.Programs.find(Key);
  if (It == I.Programs.end()) {
    ++I.St.ProgramMisses;
    return nullptr;
  }
  ++I.St.ProgramHits;
  I.touch(It->second);
  return It->second->Art;
}

void AdmissionCache::storeProgram(const serial::ModuleHash &Key,
                                  std::shared_ptr<const LoweredArtifact> Art) {
  OBS_SPAN("cache_store");
  if (RW_FAULT_POINT(support::fault::Seam::CacheStore))
    return;
  if (!Art)
    return;
  Impl::Entry E;
  E.K = Impl::Kind::Program;
  E.Key = Key;
  E.Bytes = artifactBytes(*Art);
  E.Art = std::move(Art);
  Impl &I = shardFor(Key);
  std::lock_guard<std::mutex> G(I.M);
  I.insert(Impl::Kind::Program, Key, std::move(E), ShardBudget);
}

CacheStats AdmissionCache::stats() const {
  CacheStats Out;
  for (const std::unique_ptr<Impl> &I : Sh) {
    std::lock_guard<std::mutex> G(I->M);
    Out.CheckHits += I->St.CheckHits;
    Out.CheckMisses += I->St.CheckMisses;
    Out.ProgramHits += I->St.ProgramHits;
    Out.ProgramMisses += I->St.ProgramMisses;
    Out.Evictions += I->St.Evictions;
    Out.Bytes += I->St.Bytes;
    Out.Entries += I->St.Entries;
  }
  return Out;
}

CacheStats AdmissionCache::shardStats(unsigned Shard) const {
  if (Shard >= NumShards)
    return {};
  std::lock_guard<std::mutex> G(Sh[Shard]->M);
  return Sh[Shard]->St;
}

void AdmissionCache::clear() {
  for (const std::unique_ptr<Impl> &I : Sh) {
    std::lock_guard<std::mutex> G(I->M);
    I->Recency.clear();
    I->Checks.clear();
    I->Programs.clear();
    I->St.Bytes = 0;
    I->St.Entries = 0;
  }
}

//===----------------------------------------------------------------------===//
// Cached batch admission (the typing::checkModules overload)
//===----------------------------------------------------------------------===//

std::vector<Status>
rw::typing::checkModules(std::span<const ir::Module *const> Mods,
                         support::ThreadPool &Pool,
                         cache::AdmissionCache *Cache) {
  if (!Cache)
    return checkModules(Mods, Pool);

  // Umbrella over the whole memoized batch — keying, probes, the actual
  // check of the misses, and verdict assembly — so a trace attributes
  // admission time that is cache bookkeeping rather than checking.
  OBS_SPAN("check_batch_cached", Mods.size());
  size_t N = Mods.size();
  std::vector<serial::ModuleHash> Keys(N);
  for (size_t I = 0; I < N; ++I)
    Keys[I] = serial::moduleHash(*Mods[I]);

  // Probe in input order (so stats are deterministic), deduplicating
  // identical content *within* the batch: a module submitted twice is
  // checked once and both submissions report the same diagnostics.
  std::vector<std::optional<CheckResult>> Hits(N);
  std::unordered_map<serial::ModuleHash, size_t, KeyHash> FirstMiss;
  std::vector<const ir::Module *> MissMods;
  std::vector<serial::ModuleHash> MissKeys;
  std::vector<size_t> MissSlot(N, SIZE_MAX); ///< Index into MissMods.
  for (size_t I = 0; I < N; ++I) {
    auto Dup = FirstMiss.find(Keys[I]);
    if (Dup != FirstMiss.end()) {
      MissSlot[I] = Dup->second;
      continue;
    }
    Hits[I] = Cache->lookupCheck(Keys[I]);
    if (!Hits[I]) {
      FirstMiss.emplace(Keys[I], MissMods.size());
      MissSlot[I] = MissMods.size();
      MissMods.push_back(Mods[I]);
      MissKeys.push_back(Keys[I]);
    }
  }

  std::vector<Status> MissOut;
  if (!MissMods.empty()) {
    MissOut = checkModules(MissMods, Pool);
    for (size_t J = 0; J < MissMods.size(); ++J) {
      CheckResult R;
      R.Ok = MissOut[J].ok();
      if (!R.Ok)
        R.Diagnostics = MissOut[J].error().message();
      Cache->storeCheck(MissKeys[J], std::move(R));
    }
  }

  std::vector<Status> Out;
  Out.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    if (Hits[I]) {
      Out.push_back(Hits[I]->Ok ? Status::success()
                                : Status(Error(Hits[I]->Diagnostics)));
      continue;
    }
    const Status &S = MissOut[MissSlot[I]];
    Out.push_back(S.ok() ? Status::success() : Status(Error(S.error().message())));
  }
  return Out;
}
