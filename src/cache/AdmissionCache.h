//===- cache/AdmissionCache.h - Content-addressed admission cache -*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission-server memoization layer (DESIGN.md §8): real traffic is
/// heavily repetitive — the same library modules are submitted over and
/// over — yet every submission re-pays check + lower + translate. The
/// arena assigns every type a Merkle hash, so admission results are
/// naturally content-addressable; this cache keys them by
/// serial::moduleHash (arena Merkle hashes ⊕ instruction-stream hash) and
/// memoizes:
///
///   * per module — the check verdict plus its exact diagnostics bytes
///     (a warm re-check returns byte-identical errors), via the
///     typing::checkModules overload declared in typing/Checker.h;
///   * per program (an ordered link set) — the whole lowered artifact:
///     the Wasm module, runtime/GC metadata, and the flat bytecode from
///     exec::translate, so a warm resubmission through
///     link::instantiateLowered (LinkOptions::Cache) skips straight to
///     instantiation on either engine.
///
/// Entries hold no arena nodes (verdicts are strings, artifacts are pure
/// Wasm), so cached results survive TypeArena rollback and need no
/// invalidation: the key *is* the content. Thread-safe (mutex per shard;
/// probes copy shared handles out); artifacts are handed out as
/// shared_ptr<const ...>, so eviction never invalidates a running
/// instance. Capacity is a byte budget with LRU eviction.
///
/// Sharding: the default single shard is one mutex + one global LRU —
/// exact global recency, the right trade for benches and small pools. A
/// server hammering one cache from many client threads constructs with
/// Shards > 1: keys hash-partition across independent shards (budget
/// split evenly), contention drops by the shard count, and recency
/// becomes per-shard (a hot key only competes with its shard's
/// residents). stats() aggregates; shardStats() exposes the partition,
/// and the obs source emits per-shard "shard<i>.*" keys when sharded.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_CACHE_ADMISSIONCACHE_H
#define RICHWASM_CACHE_ADMISSIONCACHE_H

#include "exec/Translate.h"
#include "lower/Lower.h"
#include "serial/Serial.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace rw::cache {

/// A memoized per-module admission verdict. Diagnostics holds the exact
/// error bytes of the failed check (empty on success), so replaying a hit
/// reproduces the sequential checker's output byte for byte.
struct CheckResult {
  bool Ok = false;
  std::string Diagnostics;
};

/// The whole-program artifact of the shipping path: one lowered Wasm
/// module plus its flat-bytecode translation. Flat.Source points at
/// Program.Module, so the pair must live (and be shared) together.
struct LoweredArtifact {
  lower::LoweredProgram Program;
  exec::FlatModule Flat;
};

/// Hit/miss/eviction counters and the current resident size. Bytes are
/// estimates (sizeof-based for artifacts), consistent with what eviction
/// accounts against the budget.
struct CacheStats {
  uint64_t CheckHits = 0;
  uint64_t CheckMisses = 0;
  uint64_t ProgramHits = 0;
  uint64_t ProgramMisses = 0;
  uint64_t Evictions = 0;
  uint64_t Bytes = 0;   ///< Resident entry bytes.
  uint64_t Entries = 0; ///< Resident entry count.

  uint64_t hits() const { return CheckHits + ProgramHits; }
  uint64_t misses() const { return CheckMisses + ProgramMisses; }
};

/// The content key of an ordered link set: module hashes folded in link
/// order (order matters — it decides import shadowing).
serial::ModuleHash programKey(const std::vector<const ir::Module *> &Mods);

class AdmissionCache {
public:
  static constexpr uint64_t DefaultByteBudget = 64ull << 20;

  /// Shards = 1 (the default) is a single global LRU; Shards > 1
  /// hash-partitions keys across independent per-shard LRUs, each with
  /// ByteBudget / Shards of the budget (entries larger than a shard's
  /// budget are rejected, matching the single-shard oversize rule).
  explicit AdmissionCache(uint64_t ByteBudget = DefaultByteBudget,
                          unsigned Shards = 1);
  ~AdmissionCache();
  AdmissionCache(const AdmissionCache &) = delete;
  AdmissionCache &operator=(const AdmissionCache &) = delete;

  /// Check-verdict memoization. lookup refreshes LRU recency and counts a
  /// hit or miss; store inserts (or refreshes) and may evict.
  std::optional<CheckResult> lookupCheck(const serial::ModuleHash &Key);
  void storeCheck(const serial::ModuleHash &Key, CheckResult R);

  /// Lowered-program memoization. The returned artifact is immutable and
  /// stays alive independently of eviction.
  std::shared_ptr<const LoweredArtifact>
  lookupProgram(const serial::ModuleHash &Key);
  void storeProgram(const serial::ModuleHash &Key,
                    std::shared_ptr<const LoweredArtifact> Art);

  uint64_t byteBudget() const { return Budget; }
  unsigned shardCount() const { return NumShards; }
  /// Aggregate across all shards.
  CacheStats stats() const;
  /// One shard's counters (Shard < shardCount()).
  CacheStats shardStats(unsigned Shard) const;
  /// Drops every entry (stats counters are kept; Bytes/Entries reset).
  void clear();

private:
  struct Impl;
  Impl &shardFor(const serial::ModuleHash &Key);
  const uint64_t Budget;
  const unsigned NumShards;
  const uint64_t ShardBudget;
  std::vector<std::unique_ptr<Impl>> Sh;
  /// obs registry handle ("cache.*" snapshot source); 0 when compiled out.
  uint64_t ObsSourceId = 0;
};

} // namespace rw::cache

#endif // RICHWASM_CACHE_ADMISSIONCACHE_H
