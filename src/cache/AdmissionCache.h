//===- cache/AdmissionCache.h - Content-addressed admission cache -*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission-server memoization layer (DESIGN.md §8): real traffic is
/// heavily repetitive — the same library modules are submitted over and
/// over — yet every submission re-pays check + lower + translate. The
/// arena assigns every type a Merkle hash, so admission results are
/// naturally content-addressable; this cache keys them by
/// serial::moduleHash (arena Merkle hashes ⊕ instruction-stream hash) and
/// memoizes:
///
///   * per module — the check verdict plus its exact diagnostics bytes
///     (a warm re-check returns byte-identical errors), via the
///     typing::checkModules overload declared in typing/Checker.h;
///   * per program (an ordered link set) — the whole lowered artifact:
///     the Wasm module, runtime/GC metadata, and the flat bytecode from
///     exec::translate, so a warm resubmission through
///     link::instantiateLowered (LinkOptions::Cache) skips straight to
///     instantiation on either engine.
///
/// Entries hold no arena nodes (verdicts are strings, artifacts are pure
/// Wasm), so cached results survive TypeArena rollback and need no
/// invalidation: the key *is* the content. Thread-safe (one mutex; probes
/// copy shared handles out); artifacts are handed out as
/// shared_ptr<const ...>, so eviction never invalidates a running
/// instance. Capacity is a byte budget with LRU eviction.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_CACHE_ADMISSIONCACHE_H
#define RICHWASM_CACHE_ADMISSIONCACHE_H

#include "exec/Translate.h"
#include "lower/Lower.h"
#include "serial/Serial.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace rw::cache {

/// A memoized per-module admission verdict. Diagnostics holds the exact
/// error bytes of the failed check (empty on success), so replaying a hit
/// reproduces the sequential checker's output byte for byte.
struct CheckResult {
  bool Ok = false;
  std::string Diagnostics;
};

/// The whole-program artifact of the shipping path: one lowered Wasm
/// module plus its flat-bytecode translation. Flat.Source points at
/// Program.Module, so the pair must live (and be shared) together.
struct LoweredArtifact {
  lower::LoweredProgram Program;
  exec::FlatModule Flat;
};

/// Hit/miss/eviction counters and the current resident size. Bytes are
/// estimates (sizeof-based for artifacts), consistent with what eviction
/// accounts against the budget.
struct CacheStats {
  uint64_t CheckHits = 0;
  uint64_t CheckMisses = 0;
  uint64_t ProgramHits = 0;
  uint64_t ProgramMisses = 0;
  uint64_t Evictions = 0;
  uint64_t Bytes = 0;   ///< Resident entry bytes.
  uint64_t Entries = 0; ///< Resident entry count.

  uint64_t hits() const { return CheckHits + ProgramHits; }
  uint64_t misses() const { return CheckMisses + ProgramMisses; }
};

/// The content key of an ordered link set: module hashes folded in link
/// order (order matters — it decides import shadowing).
serial::ModuleHash programKey(const std::vector<const ir::Module *> &Mods);

class AdmissionCache {
public:
  static constexpr uint64_t DefaultByteBudget = 64ull << 20;

  explicit AdmissionCache(uint64_t ByteBudget = DefaultByteBudget);
  ~AdmissionCache();
  AdmissionCache(const AdmissionCache &) = delete;
  AdmissionCache &operator=(const AdmissionCache &) = delete;

  /// Check-verdict memoization. lookup refreshes LRU recency and counts a
  /// hit or miss; store inserts (or refreshes) and may evict.
  std::optional<CheckResult> lookupCheck(const serial::ModuleHash &Key);
  void storeCheck(const serial::ModuleHash &Key, CheckResult R);

  /// Lowered-program memoization. The returned artifact is immutable and
  /// stays alive independently of eviction.
  std::shared_ptr<const LoweredArtifact>
  lookupProgram(const serial::ModuleHash &Key);
  void storeProgram(const serial::ModuleHash &Key,
                    std::shared_ptr<const LoweredArtifact> Art);

  uint64_t byteBudget() const { return Budget; }
  CacheStats stats() const;
  /// Drops every entry (stats counters are kept; Bytes/Entries reset).
  void clear();

private:
  struct Impl;
  const uint64_t Budget;
  std::unique_ptr<Impl> I;
  /// obs registry handle ("cache.*" snapshot source); 0 when compiled out.
  uint64_t ObsSourceId = 0;
};

} // namespace rw::cache

#endif // RICHWASM_CACHE_ADMISSIONCACHE_H
