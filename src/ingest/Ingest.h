//===- ingest/Ingest.h - Hardened untrusted-ingestion front door -*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single entry point an admission server feeds raw untrusted bytes:
/// ingest::admit() sniffs the container magic, then runs the full
/// decode → validate → resolve → lower → translate → instantiate pipeline
/// under an explicit ingest::Limits resource policy. It is **total on
/// arbitrary bytes**: any input either yields a runnable AdmittedModule or
/// a structured IngestError (category + byte offset + context) — never a
/// crash, unbounded allocation, or unbounded recursion (DESIGN.md §12).
///
/// Two admissible containers:
///   * `\0asm` — a WebAssembly binary: wasm::decode under Limits,
///     wasm::validate with the operand-depth cap, then instantiation on
///     LinkOptions::Engine (flat translation included for Flat/Jit).
///   * `RWBM`  — a serialized RichWasm module (serial/): serial::read
///     into a *private* arena (a rejected admission leaves zero residue in
///     the process-wide arena by construction), typing::checkModule, then
///     the standard link/lower/validate/translate admission via
///     link::instantiateLowered — cache, pool, and engine selection all
///     honor the caller's LinkOptions.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_INGEST_INGEST_H
#define RICHWASM_INGEST_INGEST_H

#include "ingest/Limits.h"
#include "ir/Module.h"
#include "link/Link.h"
#include "support/Error.h"
#include "wasm/Instance.h"

#include <memory>

namespace rw::ingest {

/// Which container format an admission came in as.
enum class Route : uint8_t { Wasm, RichWasm };

inline const char *routeName(Route R) {
  return R == Route::Wasm ? "wasm" : "richwasm";
}

/// A fully admitted module: the decoded artifact plus a ready instance.
/// Owns everything it hands out; safe to move across threads as a unit.
struct AdmittedModule {
  Route R = Route::Wasm;
  /// FNV-1a of the admitted input bytes (both routes) — a cheap identity
  /// for logs; the RichWasm route's cache key is the content hash inside
  /// link::instantiateLowered.
  uint64_t InputHash = 0;

  /// Wasm route: the decoded module (the instance borrows it).
  std::unique_ptr<wasm::WModule> WasmMod;
  std::unique_ptr<wasm::Instance> WasmInst;

  /// RichWasm route: the parsed module (owns its private arena via
  /// ir::Module::Arena) and the lowered program + instance.
  std::unique_ptr<ir::Module> RichMod;
  link::LoweredInstance Lowered;

  /// The live instance, whichever route produced it.
  wasm::Instance *instance() {
    return R == Route::Wasm ? WasmInst.get() : Lowered.Instance.get();
  }

  /// Invokes an export by name. On the RichWasm route exports use the
  /// lowered "module.export" naming scheme.
  Expected<std::vector<wasm::WValue>>
  invoke(const std::string &Name, std::vector<wasm::WValue> Args,
         uint64_t MaxFuel = 1'000'000'000) {
    return instance()->invokeByName(Name, std::move(Args), MaxFuel);
  }
};

/// Admits \p Bytes under resource policy \p L and admission options
/// \p Opts. On rejection, \p ErrOut (when non-null) receives the
/// structured error the returned Error renders. Total on arbitrary bytes.
Expected<AdmittedModule> admit(const std::vector<uint8_t> &Bytes,
                               const Limits &L = Limits(),
                               const link::LinkOptions &Opts = {},
                               IngestError *ErrOut = nullptr);

} // namespace rw::ingest

#endif // RICHWASM_INGEST_INGEST_H
