//===- ingest/Limits.h - Resource limits + ingestion error taxonomy -*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resource-limit policy and structured error taxonomy for the
/// untrusted-ingestion front door (DESIGN.md §12). This header is a leaf —
/// it depends only on the standard library — so the layers the front door
/// wraps (wasm::decode in particular) can enforce the limits without a
/// dependency cycle back into ingest/.
///
/// Limits are enforced *during* decode, before the corresponding
/// allocation happens: a count read from the wire is checked against both
/// its per-kind cap and the bytes remaining in its section (an N-element
/// vector needs at least N wire bytes), and every vector reservation is
/// charged against a total allocation budget. A hostile 60-byte module
/// claiming 2^32 locals is rejected after reading the count, not after
/// 16 GiB of push_backs.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_INGEST_LIMITS_H
#define RICHWASM_INGEST_LIMITS_H

#include <cstdint>
#include <string>

namespace rw::ingest {

/// Resource caps applied to one admission. The defaults are generous for
/// real modules (every bench/example workload fits with 100x headroom)
/// while bounding hostile amplification: no single admission can make the
/// decoder allocate more than MaxTotalAlloc bytes or recurse deeper than
/// MaxNestingDepth frames, whatever the input bytes claim.
struct Limits {
  /// Whole-module byte-size cap, checked before decoding starts.
  uint64_t MaxModuleBytes = 64ull << 20;
  /// Cap on the number of sections (custom sections included).
  uint32_t MaxSections = 64;
  uint32_t MaxTypes = 1u << 16;
  uint32_t MaxImports = 1u << 16;
  uint32_t MaxFuncs = 1u << 16;
  uint32_t MaxGlobals = 1u << 16;
  uint32_t MaxExports = 1u << 16;
  uint32_t MaxElems = 1u << 20;
  /// Per-function body size in bytes.
  uint64_t MaxBodyBytes = 8ull << 20;
  /// Per-function local count after RLE expansion.
  uint32_t MaxLocals = 1u << 16;
  /// Structured-control nesting depth (blocks/loops/ifs); bounds decoder
  /// and validator recursion.
  uint32_t MaxNestingDepth = 256;
  /// Validator operand-stack depth cap per function.
  uint32_t MaxOperandDepth = 1u << 16;
  /// Linear-memory size cap in 64 KiB pages (min and max clauses).
  uint32_t MaxMemoryPages = 1u << 16;
  /// Total bytes the decoder may allocate for one module (vectors, names,
  /// bodies). Charged before each reservation.
  uint64_t MaxTotalAlloc = 256ull << 20;

  /// A policy that never trips — for trusted in-process round-trips.
  static Limits unlimited() {
    Limits L;
    L.MaxModuleBytes = ~0ull;
    L.MaxSections = ~0u;
    L.MaxTypes = L.MaxImports = L.MaxFuncs = ~0u;
    L.MaxGlobals = L.MaxExports = L.MaxElems = ~0u;
    L.MaxBodyBytes = ~0ull;
    L.MaxLocals = ~0u;
    L.MaxNestingDepth = 1u << 14;
    L.MaxOperandDepth = ~0u;
    L.MaxMemoryPages = 1u << 16; // spec ceiling, not a policy knob
    L.MaxTotalAlloc = ~0ull;
    return L;
  }
};

/// What stage/class of failure rejected an admission. Categories are the
/// unit of obs accounting (`ingest.rejected.<token>`) and of operator
/// triage: Malformed/Truncated/BadMagic are hostile-or-corrupt bytes,
/// LimitExceeded is policy, Validate/Check/Link are semantic rejections of
/// well-formed bytes, and Resource is an induced environment failure.
enum class Category : uint8_t {
  None,          ///< No error (sentinel).
  TooLarge,      ///< Module bytes exceed Limits::MaxModuleBytes.
  BadMagic,      ///< Unrecognized container magic/version.
  Truncated,     ///< Input ends mid-structure.
  Malformed,     ///< Structurally invalid bytes (bad LEB, enum, count...).
  LimitExceeded, ///< A Limits cap tripped.
  Unsupported,   ///< Well-formed but outside the supported feature set.
  Validate,      ///< wasm::validate rejected the decoded module.
  Check,         ///< typing::checkModule rejected the RichWasm module.
  Link,          ///< Import resolution failed.
  Lower,         ///< RichWasm→Wasm lowering failed.
  Translate,     ///< Flat-bytecode translation failed.
  Engine,        ///< Instance creation/initialization failed.
  Resource,      ///< Environment failure (allocation, mmap, ...).
};

inline const char *categoryName(Category C) {
  switch (C) {
  case Category::None:
    return "None";
  case Category::TooLarge:
    return "TooLarge";
  case Category::BadMagic:
    return "BadMagic";
  case Category::Truncated:
    return "Truncated";
  case Category::Malformed:
    return "Malformed";
  case Category::LimitExceeded:
    return "LimitExceeded";
  case Category::Unsupported:
    return "Unsupported";
  case Category::Validate:
    return "Validate";
  case Category::Check:
    return "Check";
  case Category::Link:
    return "Link";
  case Category::Lower:
    return "Lower";
  case Category::Translate:
    return "Translate";
  case Category::Engine:
    return "Engine";
  case Category::Resource:
    return "Resource";
  }
  return "?";
}

/// Lowercase token for metric names (`ingest.rejected.<token>`).
inline const char *categoryToken(Category C) {
  switch (C) {
  case Category::None:
    return "none";
  case Category::TooLarge:
    return "too_large";
  case Category::BadMagic:
    return "bad_magic";
  case Category::Truncated:
    return "truncated";
  case Category::Malformed:
    return "malformed";
  case Category::LimitExceeded:
    return "limit_exceeded";
  case Category::Unsupported:
    return "unsupported";
  case Category::Validate:
    return "validate";
  case Category::Check:
    return "check";
  case Category::Link:
    return "link";
  case Category::Lower:
    return "lower";
  case Category::Translate:
    return "translate";
  case Category::Engine:
    return "engine";
  case Category::Resource:
    return "resource";
  }
  return "?";
}

/// Structured rejection: what class of failure, where in the input, and a
/// human-readable context string. Offset is the byte position the decoder
/// was at when it rejected (0 for post-decode stages, where byte offsets
/// no longer mean anything).
struct IngestError {
  Category Cat = Category::None;
  uint64_t Offset = 0;
  std::string Context;

  /// Renders "category @offset: context" for embedding in support::Error
  /// messages and logs.
  std::string render() const {
    std::string S = categoryName(Cat);
    S += " @";
    S += std::to_string(Offset);
    S += ": ";
    S += Context;
    return S;
  }
};

} // namespace rw::ingest

#endif // RICHWASM_INGEST_LIMITS_H
