//===- ingest/Ingest.cpp - Hardened untrusted-ingestion front door --------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ingest/Ingest.h"

#include "ir/TypeArena.h"
#include "obs/Obs.h"
#include "serial/Serial.h"
#include "typing/Checker.h"
#include "wasm/Binary.h"
#include "wasm/Validate.h"

using namespace rw;
using namespace rw::ingest;

namespace {

uint64_t fnv1a(const std::vector<uint8_t> &Bytes) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (uint8_t B : Bytes) {
    H ^= B;
    H *= 0x100000001b3ull;
  }
  return H;
}

obs::Counter &rejectedCounter(Category C) {
  // One static counter per category so snapshots break rejects down by
  // cause without a registry lookup on the reject path.
  switch (C) {
  case Category::TooLarge: {
    static obs::Counter X("ingest.rejected.too_large");
    return X;
  }
  case Category::BadMagic: {
    static obs::Counter X("ingest.rejected.bad_magic");
    return X;
  }
  case Category::Truncated: {
    static obs::Counter X("ingest.rejected.truncated");
    return X;
  }
  case Category::Malformed: {
    static obs::Counter X("ingest.rejected.malformed");
    return X;
  }
  case Category::LimitExceeded: {
    static obs::Counter X("ingest.rejected.limit_exceeded");
    return X;
  }
  case Category::Unsupported: {
    static obs::Counter X("ingest.rejected.unsupported");
    return X;
  }
  case Category::Validate: {
    static obs::Counter X("ingest.rejected.validate");
    return X;
  }
  case Category::Check: {
    static obs::Counter X("ingest.rejected.check");
    return X;
  }
  case Category::Link: {
    static obs::Counter X("ingest.rejected.link");
    return X;
  }
  case Category::Lower: {
    static obs::Counter X("ingest.rejected.lower");
    return X;
  }
  case Category::Translate: {
    static obs::Counter X("ingest.rejected.translate");
    return X;
  }
  case Category::Engine: {
    static obs::Counter X("ingest.rejected.engine");
    return X;
  }
  case Category::Resource: {
    static obs::Counter X("ingest.rejected.resource");
    return X;
  }
  case Category::None:
    break;
  }
  static obs::Counter X("ingest.rejected.none");
  return X;
}

/// Builds the rejection both callers see: the structured error in ErrOut
/// and the rendered string Error, with the per-category counter bumped.
Error reject(IngestError *ErrOut, Category C, uint64_t Off,
             std::string Ctx) {
  IngestError E;
  E.Cat = C;
  E.Offset = Off;
  E.Context = std::move(Ctx);
  rejectedCounter(C).inc();
  std::string Msg = "ingest: " + E.render();
  if (ErrOut)
    *ErrOut = std::move(E);
  return Error(std::move(Msg));
}

/// Classifies a serial::read failure message. The reader predates the
/// taxonomy and reports strings; map the stable prefixes it emits.
Category classifySerial(const std::string &Msg) {
  if (Msg.find("magic") != std::string::npos)
    return Category::BadMagic;
  if (Msg.find("version") != std::string::npos)
    return Category::Unsupported;
  if (Msg.find("truncated") != std::string::npos ||
      Msg.find("length mismatch") != std::string::npos)
    return Category::Truncated;
  return Category::Malformed;
}

/// Classifies a link::instantiateLowered failure by the stage contexts the
/// admission pipeline attaches to its errors.
Category classifyAdmission(const std::string &Msg) {
  if (Msg.find("validation") != std::string::npos)
    return Category::Validate;
  if (Msg.find("flat translation") != std::string::npos)
    return Category::Translate;
  if (Msg.find("lower") != std::string::npos)
    return Category::Lower;
  if (Msg.find("import") != std::string::npos ||
      Msg.find("resolve") != std::string::npos ||
      Msg.find("export") != std::string::npos)
    return Category::Link;
  if (Msg.find("injected") != std::string::npos)
    return Category::Resource;
  return Category::Engine;
}

Expected<AdmittedModule> admitWasm(const std::vector<uint8_t> &Bytes,
                                   const Limits &L,
                                   const link::LinkOptions &Opts,
                                   IngestError *ErrOut) {
  IngestError DecErr;
  Expected<wasm::WModule> M = wasm::decode(Bytes, L, &DecErr);
  if (!M) {
    rejectedCounter(DecErr.Cat).inc();
    if (ErrOut)
      *ErrOut = DecErr;
    return M.error();
  }
  if (Status S = wasm::validate(*M, L.MaxOperandDepth); !S)
    return reject(ErrOut, Category::Validate, 0, S.error().message());

  AdmittedModule A;
  A.R = Route::Wasm;
  A.WasmMod = std::make_unique<wasm::WModule>(M.take());
  // createInstance covers all engines; for Flat/Jit it performs the flat
  // translation during initialize(), whose failure surfaces here.
  A.WasmInst = wasm::createInstance(*A.WasmMod, Opts.Engine);
  if (Status S = A.WasmInst->initialize(Opts.RunStart); !S) {
    const std::string &Msg = S.error().message();
    Category C = Msg.find("translat") != std::string::npos
                     ? Category::Translate
                     : Category::Engine;
    return reject(ErrOut, C, 0, Msg);
  }
  return std::move(A);
}

Expected<AdmittedModule> admitRichWasm(const std::vector<uint8_t> &Bytes,
                                       const Limits &L,
                                       const link::LinkOptions &Opts,
                                       IngestError *ErrOut) {
  // A private arena per admission: a rejected module's types die with it,
  // so hostile bytes cannot grow the process-wide arena (which has no
  // eviction). serial::read additionally probes a scratch arena first, so
  // even the private arena only ever holds a structurally valid module.
  auto Arena = std::make_shared<ir::TypeArena>();
  Expected<ir::Module> M = serial::read(Bytes, Arena);
  if (!M)
    return reject(ErrOut, classifySerial(M.error().message()), 0,
                  M.error().message());

  if (M->Funcs.size() > L.MaxFuncs)
    return reject(ErrOut, Category::LimitExceeded, 0,
                  "module has " + std::to_string(M->Funcs.size()) +
                      " functions, limit is " + std::to_string(L.MaxFuncs));
  if (M->Globals.size() > L.MaxGlobals)
    return reject(ErrOut, Category::LimitExceeded, 0,
                  "module has " + std::to_string(M->Globals.size()) +
                      " globals, limit is " + std::to_string(L.MaxGlobals));
  if (M->Tab.Entries.size() > L.MaxElems)
    return reject(ErrOut, Category::LimitExceeded, 0,
                  "module has " + std::to_string(M->Tab.Entries.size()) +
                      " table entries, limit is " +
                      std::to_string(L.MaxElems));

  AdmittedModule A;
  A.R = Route::RichWasm;
  A.RichMod = std::make_unique<ir::Module>(M.take());

  // Check explicitly (precise Category::Check attribution), then hand the
  // InfoMap to the admission pipeline so it runs zero further checks.
  std::vector<typing::InfoMap> Infos(1);
  if (Status S = typing::checkModule(*A.RichMod, &Infos[0]); !S)
    return reject(ErrOut, Category::Check, 0, S.error().message());

  link::LinkOptions LO = Opts;
  LO.TypeCheck = true;
  LO.Infos = &Infos;
  Expected<link::LoweredInstance> LI =
      link::instantiateLowered({A.RichMod.get()}, LO);
  if (!LI)
    return reject(ErrOut, classifyAdmission(LI.error().message()), 0,
                  LI.error().message());
  A.Lowered = LI.take();
  return std::move(A);
}

} // namespace

Expected<AdmittedModule> rw::ingest::admit(const std::vector<uint8_t> &Bytes,
                                           const Limits &L,
                                           const link::LinkOptions &Opts,
                                           IngestError *ErrOut) {
  // The content hash doubles as the head-sampling key: the same input
  // bytes trace (or not) identically regardless of thread, pool size, or
  // arrival order, so an always-on server traces a stable deterministic
  // 1-in-N slice of its admissions (RW_OBS_TRACE_SAMPLE=N).
  uint64_t InputHash = fnv1a(Bytes);
  obs::TraceSampleScope SampleScope(obs::traceSampleSelect(InputHash));
  OBS_SPAN("ingest_admit", Bytes.size());
  static obs::Counter Accepted("ingest.accepted");
  static obs::Counter BytesIn("ingest.bytes");
  BytesIn.add(Bytes.size());
  if (ErrOut)
    *ErrOut = IngestError();

  if (Bytes.size() > L.MaxModuleBytes)
    return reject(ErrOut, Category::TooLarge, 0,
                  "module of " + std::to_string(Bytes.size()) +
                      " bytes exceeds limit of " +
                      std::to_string(L.MaxModuleBytes));
  if (Bytes.size() < 4)
    return reject(ErrOut, Category::BadMagic, 0,
                  "input too short for a container magic");

  Expected<AdmittedModule> A = Error("unreachable");
  if (Bytes[0] == 0x00 && Bytes[1] == 'a' && Bytes[2] == 's' &&
      Bytes[3] == 'm')
    A = admitWasm(Bytes, L, Opts, ErrOut);
  else if (Bytes[0] == 'R' && Bytes[1] == 'W' && Bytes[2] == 'B' &&
           Bytes[3] == 'M')
    A = admitRichWasm(Bytes, L, Opts, ErrOut);
  else
    return reject(ErrOut, Category::BadMagic, 0,
                  "unrecognized container magic");

  if (!A)
    return A;
  A->InputHash = InputHash;
  Accepted.inc();
  return A;
}
