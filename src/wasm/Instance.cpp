//===- wasm/Instance.cpp - Engine-independent instance state ---------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "wasm/Instance.h"

#include "obs/Obs.h"

#include <cassert>
#include <cstring>

using namespace rw;
using namespace rw::wasm;

Instance::~Instance() { obs::unregisterSource(ObsSourceId); }

void Instance::ensureProfileTable() {
  size_t N = M->ImportFuncs.size() + M->Funcs.size();
  if (Prof.size() < N)
    Prof.resize(N);
}

void Instance::enableProfiling() {
  if (ProfileOn)
    return;
  ProfileOn = true;
  ensureProfileTable();
  // The source reads Prof by reference; ~Instance unregisters before the
  // table dies. Only non-zero rows are emitted to keep snapshots small.
  ObsSourceId = obs::registerSource("exec.profile", [this](
                                                       const obs::EmitFn &E) {
    for (size_t I = 0; I < Prof.size(); ++I) {
      if (!Prof[I].Invocations && !Prof[I].LoopHeads)
        continue;
      std::string Base = "func" + std::to_string(I);
      E((Base + ".inv").c_str(), Prof[I].Invocations);
      E((Base + ".loops").c_str(), Prof[I].LoopHeads);
    }
  });
}

std::string Instance::trapNote(uint32_t FuncIdx) const {
  std::string S = " [func " + std::to_string(FuncIdx);
  if (ProfileOn && FuncIdx < Prof.size())
    S += "; inv " + std::to_string(Prof[FuncIdx].Invocations) + ", loops " +
         std::to_string(Prof[FuncIdx].LoopHeads);
  return S + "]";
}

uint32_t Instance::load32(uint32_t Addr) const {
  assert(Addr + 4 <= Mem.size() && "host load out of bounds");
  uint32_t V;
  std::memcpy(&V, Mem.data() + Addr, 4);
  return V;
}

void Instance::store32(uint32_t Addr, uint32_t V) {
  assert(Addr + 4 <= Mem.size() && "host store out of bounds");
  std::memcpy(Mem.data() + Addr, &V, 4);
}

std::optional<uint32_t> Instance::findExport(const std::string &Name,
                                             ExportKind Kind) const {
  for (const WExport &E : M->Exports)
    if (E.Kind == Kind && E.Name == Name)
      return E.Idx;
  return std::nullopt;
}

Status Instance::initialize(bool RunStart) {
  HostTable.clear();
  HostTable.reserve(M->ImportFuncs.size());
  for (const WImportFunc &I : M->ImportFuncs) {
    auto It = Hosts.find({I.Mod, I.Name});
    if (It == Hosts.end())
      return Error("unsatisfied import " + I.Mod + "." + I.Name);
    HostTable.push_back(&It->second);
  }
  if (M->Memory)
    Mem.assign(static_cast<size_t>(M->Memory->first) * PageSize, 0);
  Globals.clear();
  for (const WGlobal &G : M->Globals) {
    // Initializer must be a single const (or global.get) expression.
    WValue V{G.T, 0};
    if (!G.Init.empty()) {
      const WInst &I = G.Init[0];
      switch (I.K) {
      case Op::I32Const:
      case Op::I64Const:
      case Op::F32Const:
      case Op::F64Const:
        V.Bits = I.U64;
        break;
      case Op::GlobalGet:
        // Validation guarantees the reference is to an earlier global;
        // re-check here so a hostile module that skipped validation still
        // cannot read out of bounds.
        if (I.U32 >= Globals.size())
          return Error("global initializer references undefined global");
        V = Globals[I.U32];
        break;
      default:
        return Error("unsupported global initializer");
      }
    }
    Globals.push_back(V);
  }
  Table = M->TableElems;
  for (const WData &D : M->Data) {
    if (D.Offset + D.Bytes.size() > Mem.size())
      return Error("data segment out of bounds");
    std::memcpy(Mem.data() + D.Offset, D.Bytes.data(), D.Bytes.size());
  }
  if (Status S = prepare(); !S)
    return S;
  if (RunStart && M->Start) {
    Expected<std::vector<WValue>> R = invoke(*M->Start, {});
    if (!R)
      return R.error();
  }
  return Status::success();
}

Expected<std::vector<WValue>> Instance::invokeByName(const std::string &Name,
                                                     std::vector<WValue> Args,
                                                     uint64_t MaxFuel) {
  std::optional<uint32_t> Idx = findExport(Name, ExportKind::Func);
  if (!Idx)
    return Error("no exported function named '" + Name + "'");
  return invoke(*Idx, std::move(Args), MaxFuel);
}
