//===- wasm/Binary.cpp - Wasm binary encoder and decoder -------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "wasm/Binary.h"

#include "ingest/Limits.h"
#include "obs/Obs.h"
#include "support/FaultInject.h"
#include "support/LEB128.h"

#include <cassert>
#include <cstring>
#include <sstream>

using namespace rw;
using namespace rw::wasm;

//===----------------------------------------------------------------------===//
// Encoder
//===----------------------------------------------------------------------===//

namespace {

class Encoder {
public:
  explicit Encoder(WModule M) : M(std::move(M)) {}

  std::vector<uint8_t> run() {
    // Pre-register all multi-value block types so the type section is
    // complete before it is emitted.
    for (WFunc &F : M.Funcs)
      registerBlockTypes(F.Body);
    for (WGlobal &G : M.Globals)
      registerBlockTypes(G.Init);

    Out = {0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00};
    emitTypeSection();
    emitImportSection();
    emitFunctionSection();
    emitTableSection();
    emitMemorySection();
    emitGlobalSection();
    emitExportSection();
    emitStartSection();
    emitElemSection();
    emitCodeSection();
    emitDataSection();
    return std::move(Out);
  }

private:
  void registerBlockTypes(std::vector<WInst> &Body) {
    for (WInst &I : Body) {
      if (I.K == Op::Block || I.K == Op::Loop || I.K == Op::If) {
        if (!(I.BT.Params.empty() && I.BT.Results.size() <= 1))
          M.addType(I.BT);
        registerBlockTypes(I.Body);
        registerBlockTypes(I.Else);
      }
    }
  }

  void u8(uint8_t B) { Out.push_back(B); }
  void u32(uint64_t V) { encodeULEB128(V, Out); }
  void s64(int64_t V) { encodeSLEB128(V, Out); }
  void raw32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Out.push_back((V >> (8 * I)) & 0xff);
  }
  void raw64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Out.push_back((V >> (8 * I)) & 0xff);
  }
  void name(const std::string &S) {
    u32(S.size());
    Out.insert(Out.end(), S.begin(), S.end());
  }
  void valType(ValType T) { u8(static_cast<uint8_t>(T)); }

  /// Emits a section: id, size, payload.
  template <typename F> void section(uint8_t Id, F Payload) {
    std::vector<uint8_t> Saved = std::move(Out);
    Out.clear();
    Payload();
    std::vector<uint8_t> Body = std::move(Out);
    Out = std::move(Saved);
    if (Body.empty())
      return;
    u8(Id);
    u32(Body.size());
    Out.insert(Out.end(), Body.begin(), Body.end());
  }

  void emitTypeSection() {
    if (M.Types.empty())
      return;
    section(1, [&] {
      u32(M.Types.size());
      for (const FuncType &T : M.Types) {
        u8(0x60);
        u32(T.Params.size());
        for (ValType V : T.Params)
          valType(V);
        u32(T.Results.size());
        for (ValType V : T.Results)
          valType(V);
      }
    });
  }

  void emitImportSection() {
    if (M.ImportFuncs.empty())
      return;
    section(2, [&] {
      u32(M.ImportFuncs.size());
      for (const WImportFunc &I : M.ImportFuncs) {
        name(I.Mod);
        name(I.Name);
        u8(0x00);
        u32(I.TypeIdx);
      }
    });
  }

  void emitFunctionSection() {
    if (M.Funcs.empty())
      return;
    section(3, [&] {
      u32(M.Funcs.size());
      for (const WFunc &F : M.Funcs)
        u32(F.TypeIdx);
    });
  }

  void emitTableSection() {
    if (M.TableElems.empty())
      return;
    section(4, [&] {
      u32(1);
      u8(0x70); // funcref
      u8(0x00); // min only
      u32(M.TableElems.size());
    });
  }

  void emitMemorySection() {
    if (!M.Memory)
      return;
    section(5, [&] {
      u32(1);
      if (M.Memory->second) {
        u8(0x01);
        u32(M.Memory->first);
        u32(*M.Memory->second);
      } else {
        u8(0x00);
        u32(M.Memory->first);
      }
    });
  }

  void emitGlobalSection() {
    if (M.Globals.empty())
      return;
    section(6, [&] {
      u32(M.Globals.size());
      for (const WGlobal &G : M.Globals) {
        valType(G.T);
        u8(G.Mut ? 0x01 : 0x00);
        expr(G.Init);
      }
    });
  }

  void emitExportSection() {
    if (M.Exports.empty())
      return;
    section(7, [&] {
      u32(M.Exports.size());
      for (const WExport &E : M.Exports) {
        name(E.Name);
        u8(static_cast<uint8_t>(E.Kind));
        u32(E.Idx);
      }
    });
  }

  void emitStartSection() {
    if (!M.Start)
      return;
    section(8, [&] { u32(*M.Start); });
  }

  void emitElemSection() {
    if (M.TableElems.empty())
      return;
    section(9, [&] {
      u32(1);
      u8(0x00);
      // Offset expression: i32.const 0, end.
      u8(0x41);
      s64(0);
      u8(0x0b);
      u32(M.TableElems.size());
      for (uint32_t E : M.TableElems)
        u32(E);
    });
  }

  void emitCodeSection() {
    if (M.Funcs.empty())
      return;
    section(10, [&] {
      u32(M.Funcs.size());
      for (const WFunc &F : M.Funcs) {
        std::vector<uint8_t> Saved = std::move(Out);
        Out.clear();
        // Locals, run-length encoded by type.
        std::vector<std::pair<uint32_t, ValType>> Runs;
        for (ValType T : F.Locals) {
          if (!Runs.empty() && Runs.back().second == T)
            ++Runs.back().first;
          else
            Runs.push_back({1, T});
        }
        u32(Runs.size());
        for (auto &R : Runs) {
          u32(R.first);
          valType(R.second);
        }
        expr(F.Body);
        std::vector<uint8_t> Body = std::move(Out);
        Out = std::move(Saved);
        u32(Body.size());
        Out.insert(Out.end(), Body.begin(), Body.end());
      }
    });
  }

  void emitDataSection() {
    if (M.Data.empty())
      return;
    section(11, [&] {
      u32(M.Data.size());
      for (const WData &D : M.Data) {
        u8(0x00);
        u8(0x41);
        s64(static_cast<int32_t>(D.Offset));
        u8(0x0b);
        u32(D.Bytes.size());
        Out.insert(Out.end(), D.Bytes.begin(), D.Bytes.end());
      }
    });
  }

  void blockType(const FuncType &BT) {
    if (BT.Params.empty() && BT.Results.empty()) {
      u8(0x40);
      return;
    }
    if (BT.Params.empty() && BT.Results.size() == 1) {
      valType(BT.Results[0]);
      return;
    }
    // Multi-value: s33 type index (registered beforehand).
    int64_t Idx = -1;
    for (uint32_t I = 0; I < M.Types.size(); ++I)
      if (M.Types[I] == BT) {
        Idx = I;
        break;
      }
    assert(Idx >= 0 && "block type not registered");
    s64(Idx);
  }

  void expr(const std::vector<WInst> &Body) {
    insts(Body);
    u8(0x0b); // end
  }

  void insts(const std::vector<WInst> &Body) {
    for (const WInst &I : Body)
      inst(I);
  }

  void inst(const WInst &I) {
    u8(static_cast<uint8_t>(I.K));
    switch (I.K) {
    case Op::Block:
    case Op::Loop:
      blockType(I.BT);
      insts(I.Body);
      u8(0x0b);
      break;
    case Op::If:
      blockType(I.BT);
      insts(I.Body);
      if (!I.Else.empty()) {
        u8(0x05); // else
        insts(I.Else);
      }
      u8(0x0b);
      break;
    case Op::Br:
    case Op::BrIf:
    case Op::Call:
    case Op::LocalGet:
    case Op::LocalSet:
    case Op::LocalTee:
    case Op::GlobalGet:
    case Op::GlobalSet:
      u32(I.U32);
      break;
    case Op::CallIndirect:
      u32(I.U32);
      u8(0x00); // table index
      break;
    case Op::BrTable:
      u32(I.Table.size());
      for (uint32_t T : I.Table)
        u32(T);
      u32(I.U32);
      break;
    case Op::I32Const:
      s64(static_cast<int32_t>(I.U64));
      break;
    case Op::I64Const:
      s64(static_cast<int64_t>(I.U64));
      break;
    case Op::F32Const:
      raw32(static_cast<uint32_t>(I.U64));
      break;
    case Op::F64Const:
      raw64(I.U64);
      break;
    case Op::MemorySize:
    case Op::MemoryGrow:
      u8(0x00);
      break;
    default: {
      uint8_t C = static_cast<uint8_t>(I.K);
      if (C >= 0x28 && C <= 0x3e) { // memarg
        u32(I.Align);
        u32(I.Offset);
      }
      break;
    }
    }
  }

  WModule M;
  std::vector<uint8_t> Out;
};

} // namespace

std::vector<uint8_t> rw::wasm::encode(WModule M) {
  Encoder E(std::move(M));
  return E.run();
}

//===----------------------------------------------------------------------===//
// Decoder
//===----------------------------------------------------------------------===//
//
// Hardened against untrusted bytes to the serial::read standard (DESIGN.md
// §12): every read is bounds-checked against the enclosing section fence,
// every wire count is checked against both its ingest::Limits cap and the
// bytes remaining (an N-element vector needs at least N wire bytes), every
// vector reservation is charged to a total allocation budget before it
// happens, structured-control recursion is depth-capped, and every
// rejection is reported as a structured ingest::IngestError carrying the
// exact byte offset.

namespace {

using ingest::Category;
using ingest::IngestError;
using ingest::Limits;
namespace fault = rw::support::fault;

/// Opcode bytes the Op enum defines. 0x05 (else) and 0x0b (end) are block
/// terminators, not instructions, and are handled before this predicate.
bool validOpcode(uint8_t C) {
  return C <= 0x04 || (C >= 0x0c && C <= 0x11) || C == 0x1a || C == 0x1b ||
         (C >= 0x20 && C <= 0x24) || C >= 0x28; // Op tops out at 0xbf.
}

class Decoder {
public:
  Decoder(const std::vector<uint8_t> &Bytes, const Limits &L,
          IngestError *ErrOut)
      : B(Bytes), L(L), ErrOut(ErrOut) {}

  Expected<WModule> run() {
    if (B.size() > L.MaxModuleBytes)
      return fail(Category::TooLarge, 0,
                  "module of " + std::to_string(B.size()) +
                      " bytes exceeds limit of " +
                      std::to_string(L.MaxModuleBytes));
    if (B.size() < 8 || B[0] != 0 || B[1] != 'a' || B[2] != 's' ||
        B[3] != 'm')
      return fail(Category::BadMagic, 0, "bad wasm magic");
    if (B[4] != 1 || B[5] != 0 || B[6] != 0 || B[7] != 0)
      return fail(Category::Unsupported, 4, "unsupported wasm version");
    Pos = 8;
    uint32_t NSections = 0;
    unsigned LastId = 0;
    while (Pos < B.size()) {
      size_t SecOff = Pos;
      uint8_t Id = B[Pos++];
      if (Id > 11)
        return fail(Category::Malformed, SecOff,
                    "unknown section id " + std::to_string(Id));
      if (++NSections > L.MaxSections)
        return fail(Category::LimitExceeded, SecOff,
                    "section count exceeds limit of " +
                        std::to_string(L.MaxSections));
      // Non-custom sections must appear at most once, in id order.
      if (Id != 0) {
        if (Id <= LastId)
          return fail(Category::Malformed, SecOff,
                      "section id " + std::to_string(Id) +
                          " out of order");
        LastId = Id;
      }
      Fence = B.size();
      Expected<uint32_t> Size = u32("section size");
      if (!Size)
        return Size.error();
      size_t End = Pos + *Size;
      if (End > B.size())
        return fail(Category::Truncated, SecOff,
                    "section extends past end of module");
      Fence = End;
      Status S = Status::success();
      switch (Id) {
      case 0:
        Pos = End; // Custom sections are opaque; skip their payload.
        break;
      case 1:
        S = typeSection();
        break;
      case 2:
        S = importSection();
        break;
      case 3:
        S = functionSection();
        break;
      case 4:
        S = tableSection();
        break;
      case 5:
        S = memorySection();
        break;
      case 6:
        S = globalSection();
        break;
      case 7:
        S = exportSection();
        break;
      case 8: {
        Expected<uint32_t> V = u32("start function index");
        if (!V)
          return V.error();
        M.Start = *V;
        break;
      }
      case 9:
        S = elemSection();
        break;
      case 10:
        S = codeSection();
        break;
      case 11:
        S = dataSection();
        break;
      }
      if (!S)
        return S.error();
      if (Pos != End)
        return fail(Category::Malformed, Pos,
                    "section size mismatch (id " + std::to_string(Id) + ")");
    }
    Fence = B.size();
    if (M.Funcs.size() != TypeIdxs.size())
      return fail(Category::Malformed, Pos,
                  "function and code section counts disagree");
    for (size_t I = 0; I < M.Funcs.size(); ++I)
      M.Funcs[I].TypeIdx = TypeIdxs[I];
    M.TableElems = std::move(Elems);
    return std::move(M);
  }

private:
  /// Records the structured error (for the ingest front door) and renders
  /// the string Error the Expected plumbing carries.
  Error fail(Category C, size_t Off, std::string Ctx) {
    IngestError E;
    E.Cat = C;
    E.Offset = Off;
    E.Context = std::move(Ctx);
    if (ErrOut)
      *ErrOut = E;
    return Error("wasm decode: " + E.render());
  }

  /// Charges \p Bytes against the total allocation budget. Call before the
  /// corresponding reservation so a hostile count is rejected, not served.
  Status charge(uint64_t Bytes, const char *What) {
    if (RW_FAULT_POINT(fault::Seam::DecodeAlloc))
      return fail(Category::Resource, Pos,
                  std::string("injected allocation failure (") + What + ")");
    Charged += Bytes;
    if (Charged > L.MaxTotalAlloc)
      return fail(Category::LimitExceeded, Pos,
                  std::string(What) + ": allocation budget of " +
                      std::to_string(L.MaxTotalAlloc) + " bytes exceeded");
    return Status::success();
  }

  Expected<uint64_t> uleb(unsigned Bits, const char *What) {
    uint64_t V;
    LEBError E = decodeULEB128Strict(B.data(), Fence, Pos, V, Bits);
    if (E == LEBError::Ok)
      return V;
    return fail(E == LEBError::Truncated ? Category::Truncated
                                         : Category::Malformed,
                Pos, std::string(What) + ": " + lebErrorName(E) + " varint");
  }

  Expected<uint32_t> u32(const char *What) {
    Expected<uint64_t> V = uleb(32, What);
    if (!V)
      return V.error();
    return static_cast<uint32_t>(*V);
  }

  Expected<int64_t> sleb(unsigned Bits, const char *What) {
    int64_t V;
    LEBError E = decodeSLEB128Strict(B.data(), Fence, Pos, V, Bits);
    if (E == LEBError::Ok)
      return V;
    return fail(E == LEBError::Truncated ? Category::Truncated
                                         : Category::Malformed,
                Pos, std::string(What) + ": " + lebErrorName(E) + " varint");
  }

  Expected<uint8_t> u8(const char *What) {
    if (Pos >= Fence)
      return fail(Category::Truncated, Pos,
                  std::string(What) + ": unexpected end of input");
    return B[Pos++];
  }

  /// Reads an element count: capped by policy at \p Cap and by the bytes
  /// remaining in the section (each element occupies at least \p MinBytes
  /// wire bytes), so counts are honest before anything is allocated.
  Expected<uint32_t> count(uint64_t Cap, uint64_t MinBytes, const char *What) {
    size_t Off = Pos;
    Expected<uint32_t> N = u32(What);
    if (!N)
      return N;
    if (*N > Cap)
      return fail(Category::LimitExceeded, Off,
                  std::string(What) + " count " + std::to_string(*N) +
                      " exceeds limit of " + std::to_string(Cap));
    if (uint64_t(*N) * MinBytes > Fence - Pos)
      return fail(Category::Malformed, Off,
                  std::string(What) + " count " + std::to_string(*N) +
                      " exceeds remaining section bytes");
    return N;
  }

  Expected<ValType> valType() {
    size_t Off = Pos;
    Expected<uint8_t> V = u8("value type");
    if (!V)
      return V.error();
    switch (*V) {
    case 0x7f:
      return ValType::I32;
    case 0x7e:
      return ValType::I64;
    case 0x7d:
      return ValType::F32;
    case 0x7c:
      return ValType::F64;
    default:
      return fail(Category::Malformed, Off,
                  "unknown value type " + std::to_string(*V));
    }
  }

  Expected<std::string> name(const char *What) {
    size_t Off = Pos;
    Expected<uint32_t> N = u32(What);
    if (!N)
      return N.error();
    if (*N > Fence - Pos)
      return fail(Category::Truncated, Off,
                  std::string(What) + " of " + std::to_string(*N) +
                      " bytes overruns section");
    if (Status S = charge(*N, What); !S)
      return S.error();
    std::string S(B.begin() + Pos, B.begin() + Pos + *N);
    Pos += *N;
    return S;
  }

  Status typeSection() {
    Expected<uint32_t> N = count(L.MaxTypes, 3, "type");
    if (!N)
      return N.error();
    if (Status S = charge(uint64_t(*N) * sizeof(FuncType), "type section");
        !S)
      return S;
    M.Types.reserve(*N);
    for (uint32_t I = 0; I < *N; ++I) {
      size_t Off = Pos;
      Expected<uint8_t> Tag = u8("functype tag");
      if (!Tag)
        return Tag.error();
      if (*Tag != 0x60)
        return fail(Category::Malformed, Off, "expected functype tag 0x60");
      FuncType FT;
      Expected<uint32_t> NP = count(L.MaxOperandDepth, 1, "param");
      if (!NP)
        return NP.error();
      if (Status S = charge(*NP, "param types"); !S)
        return S;
      FT.Params.reserve(*NP);
      for (uint32_t J = 0; J < *NP; ++J) {
        Expected<ValType> V = valType();
        if (!V)
          return V.error();
        FT.Params.push_back(*V);
      }
      Expected<uint32_t> NR = count(L.MaxOperandDepth, 1, "result");
      if (!NR)
        return NR.error();
      if (Status S = charge(*NR, "result types"); !S)
        return S;
      FT.Results.reserve(*NR);
      for (uint32_t J = 0; J < *NR; ++J) {
        Expected<ValType> V = valType();
        if (!V)
          return V.error();
        FT.Results.push_back(*V);
      }
      M.Types.push_back(std::move(FT));
    }
    return Status::success();
  }

  Status importSection() {
    Expected<uint32_t> N = count(L.MaxImports, 4, "import");
    if (!N)
      return N.error();
    if (Status S = charge(uint64_t(*N) * sizeof(WImportFunc), "import section");
        !S)
      return S;
    M.ImportFuncs.reserve(*N);
    for (uint32_t I = 0; I < *N; ++I) {
      Expected<std::string> Mod = name("import module name");
      if (!Mod)
        return Mod.error();
      Expected<std::string> Nm = name("import name");
      if (!Nm)
        return Nm.error();
      size_t Off = Pos;
      Expected<uint8_t> Kind = u8("import kind");
      if (!Kind)
        return Kind.error();
      if (*Kind > 0x03)
        return fail(Category::Malformed, Off,
                    "bad import kind " + std::to_string(*Kind));
      if (*Kind != 0x00)
        return fail(Category::Unsupported, Off,
                    "only function imports are supported");
      Expected<uint32_t> TI = u32("import type index");
      if (!TI)
        return TI.error();
      M.ImportFuncs.push_back({std::move(*Mod), std::move(*Nm), *TI});
    }
    return Status::success();
  }

  Status functionSection() {
    Expected<uint32_t> N = count(L.MaxFuncs, 1, "function");
    if (!N)
      return N.error();
    if (Status S = charge(uint64_t(*N) * sizeof(uint32_t), "function section");
        !S)
      return S;
    TypeIdxs.reserve(*N);
    for (uint32_t I = 0; I < *N; ++I) {
      Expected<uint32_t> TI = u32("function type index");
      if (!TI)
        return TI.error();
      TypeIdxs.push_back(*TI);
    }
    return Status::success();
  }

  Status tableSection() {
    size_t Off = Pos;
    Expected<uint32_t> N = u32("table count");
    if (!N)
      return N.error();
    if (*N != 1)
      return fail(Category::Unsupported, Off, "expected exactly one table");
    Off = Pos;
    Expected<uint8_t> ET = u8("table element type");
    if (!ET)
      return ET.error();
    if (*ET != 0x70)
      return fail(Category::Unsupported, Off, "expected funcref table");
    Off = Pos;
    Expected<uint8_t> HasMax = u8("table limits flag");
    if (!HasMax)
      return HasMax.error();
    if (*HasMax > 1)
      return fail(Category::Malformed, Off,
                  "bad table limits flag " + std::to_string(*HasMax));
    Expected<uint32_t> Min = u32("table min");
    if (!Min)
      return Min.error();
    if (*HasMax == 1) {
      Expected<uint32_t> Max = u32("table max");
      if (!Max)
        return Max.error();
      if (*Max < *Min)
        return fail(Category::Malformed, Off, "table min exceeds max");
    }
    return Status::success();
  }

  Status memorySection() {
    size_t Off = Pos;
    Expected<uint32_t> N = u32("memory count");
    if (!N)
      return N.error();
    if (*N != 1)
      return fail(Category::Unsupported, Off, "expected exactly one memory");
    Off = Pos;
    Expected<uint8_t> HasMax = u8("memory limits flag");
    if (!HasMax)
      return HasMax.error();
    if (*HasMax > 1)
      return fail(Category::Malformed, Off,
                  "bad memory limits flag " + std::to_string(*HasMax));
    Off = Pos;
    Expected<uint32_t> Min = u32("memory min pages");
    if (!Min)
      return Min.error();
    if (*Min > L.MaxMemoryPages)
      return fail(Category::LimitExceeded, Off,
                  "memory of " + std::to_string(*Min) +
                      " pages exceeds limit of " +
                      std::to_string(L.MaxMemoryPages));
    std::optional<uint32_t> Max;
    if (*HasMax == 1) {
      Off = Pos;
      Expected<uint32_t> Mx = u32("memory max pages");
      if (!Mx)
        return Mx.error();
      if (*Mx > L.MaxMemoryPages)
        return fail(Category::LimitExceeded, Off,
                    "memory max of " + std::to_string(*Mx) +
                        " pages exceeds limit of " +
                        std::to_string(L.MaxMemoryPages));
      if (*Mx < *Min)
        return fail(Category::Malformed, Off, "memory min exceeds max");
      Max = *Mx;
    }
    M.Memory = {*Min, Max};
    return Status::success();
  }

  Status globalSection() {
    Expected<uint32_t> N = count(L.MaxGlobals, 4, "global");
    if (!N)
      return N.error();
    if (Status S = charge(uint64_t(*N) * sizeof(WGlobal), "global section");
        !S)
      return S;
    M.Globals.reserve(*N);
    for (uint32_t I = 0; I < *N; ++I) {
      Expected<ValType> T = valType();
      if (!T)
        return T.error();
      size_t Off = Pos;
      Expected<uint8_t> Mut = u8("global mutability");
      if (!Mut)
        return Mut.error();
      if (*Mut > 1)
        return fail(Category::Malformed, Off,
                    "bad global mutability " + std::to_string(*Mut));
      WGlobal G;
      G.T = *T;
      G.Mut = *Mut == 1;
      Expected<std::vector<WInst>> Init = expr();
      if (!Init)
        return Init.error();
      G.Init = std::move(*Init);
      M.Globals.push_back(std::move(G));
    }
    return Status::success();
  }

  Status exportSection() {
    Expected<uint32_t> N = count(L.MaxExports, 4, "export");
    if (!N)
      return N.error();
    if (Status S = charge(uint64_t(*N) * sizeof(WExport), "export section");
        !S)
      return S;
    M.Exports.reserve(*N);
    for (uint32_t I = 0; I < *N; ++I) {
      Expected<std::string> Nm = name("export name");
      if (!Nm)
        return Nm.error();
      size_t Off = Pos;
      Expected<uint8_t> Kind = u8("export kind");
      if (!Kind)
        return Kind.error();
      if (*Kind > 0x03)
        return fail(Category::Malformed, Off,
                    "bad export kind " + std::to_string(*Kind));
      Expected<uint32_t> Idx = u32("export index");
      if (!Idx)
        return Idx.error();
      M.Exports.push_back(
          {std::move(*Nm), static_cast<ExportKind>(*Kind), *Idx});
    }
    return Status::success();
  }

  Status elemSection() {
    Expected<uint32_t> N = count(L.MaxElems, 5, "elem segment");
    if (!N)
      return N.error();
    for (uint32_t I = 0; I < *N; ++I) {
      size_t Off = Pos;
      Expected<uint8_t> Flag = u8("elem segment flag");
      if (!Flag)
        return Flag.error();
      if (*Flag != 0x00)
        return fail(Category::Unsupported, Off,
                    "unsupported elem segment flag " + std::to_string(*Flag));
      Off = Pos;
      Expected<std::vector<WInst>> OffExpr = expr();
      if (!OffExpr)
        return OffExpr.error();
      if (OffExpr->size() != 1 || (*OffExpr)[0].K != Op::I32Const)
        return fail(Category::Unsupported, Off,
                    "elem offset must be a single i32.const");
      // The module model keeps one flat function table, so segments must
      // tile it contiguously from zero (our encoder's shape).
      if ((*OffExpr)[0].U64 != Elems.size())
        return fail(Category::Unsupported, Off,
                    "non-contiguous elem segment offset");
      Expected<uint32_t> Cnt = count(L.MaxElems, 1, "elem entry");
      if (!Cnt)
        return Cnt.error();
      if (Elems.size() + *Cnt > L.MaxElems)
        return fail(Category::LimitExceeded, Pos,
                    "total elem entries exceed limit of " +
                        std::to_string(L.MaxElems));
      if (Status S = charge(uint64_t(*Cnt) * sizeof(uint32_t), "elem entries");
          !S)
        return S;
      Elems.reserve(Elems.size() + *Cnt);
      for (uint32_t J = 0; J < *Cnt; ++J) {
        Expected<uint32_t> FI = u32("elem function index");
        if (!FI)
          return FI.error();
        Elems.push_back(*FI);
      }
    }
    return Status::success();
  }

  Status codeSection() {
    Expected<uint32_t> N = count(L.MaxFuncs, 2, "code body");
    if (!N)
      return N.error();
    if (*N != TypeIdxs.size())
      return fail(Category::Malformed, Pos,
                  "function and code section counts disagree");
    M.Funcs.reserve(*N);
    for (uint32_t I = 0; I < *N; ++I) {
      size_t Off = Pos;
      Expected<uint32_t> Size = u32("code body size");
      if (!Size)
        return Size.error();
      if (*Size > L.MaxBodyBytes)
        return fail(Category::LimitExceeded, Off,
                    "code body of " + std::to_string(*Size) +
                        " bytes exceeds limit of " +
                        std::to_string(L.MaxBodyBytes));
      size_t End = Pos + *Size;
      if (End > Fence)
        return fail(Category::Truncated, Off, "code body overruns section");
      // Sub-fence: the body may not read past its declared size.
      size_t SectionFence = Fence;
      Fence = End;
      WFunc F;
      Expected<uint32_t> NRuns = count(L.MaxLocals, 2, "local run");
      if (!NRuns)
        return NRuns.error();
      uint64_t TotalLocals = 0;
      for (uint32_t J = 0; J < *NRuns; ++J) {
        size_t RunOff = Pos;
        Expected<uint32_t> Cnt = u32("local run count");
        if (!Cnt)
          return Cnt.error();
        Expected<ValType> T = valType();
        if (!T)
          return T.error();
        TotalLocals += *Cnt;
        if (TotalLocals > L.MaxLocals)
          return fail(Category::LimitExceeded, RunOff,
                      "local count exceeds limit of " +
                          std::to_string(L.MaxLocals));
        if (Status S = charge(*Cnt, "locals"); !S)
          return S;
        F.Locals.insert(F.Locals.end(), *Cnt, *T);
      }
      Expected<std::vector<WInst>> Body = expr();
      if (!Body)
        return Body.error();
      F.Body = std::move(*Body);
      if (Pos != End)
        return fail(Category::Malformed, Pos, "code body size mismatch");
      Fence = SectionFence;
      M.Funcs.push_back(std::move(F));
    }
    return Status::success();
  }

  Status dataSection() {
    Expected<uint32_t> N = count(L.MaxElems, 5, "data segment");
    if (!N)
      return N.error();
    for (uint32_t I = 0; I < *N; ++I) {
      size_t Off = Pos;
      Expected<uint8_t> Flag = u8("data segment flag");
      if (!Flag)
        return Flag.error();
      if (*Flag != 0x00)
        return fail(Category::Unsupported, Off,
                    "unsupported data segment flag " + std::to_string(*Flag));
      Off = Pos;
      Expected<std::vector<WInst>> OffExpr = expr();
      if (!OffExpr)
        return OffExpr.error();
      if (OffExpr->size() != 1 || (*OffExpr)[0].K != Op::I32Const)
        return fail(Category::Unsupported, Off,
                    "data offset must be a single i32.const");
      Off = Pos;
      Expected<uint32_t> Len = u32("data length");
      if (!Len)
        return Len.error();
      if (*Len > Fence - Pos)
        return fail(Category::Truncated, Off,
                    "data segment of " + std::to_string(*Len) +
                        " bytes overruns section");
      if (Status S = charge(*Len, "data bytes"); !S)
        return S;
      WData D;
      D.Offset = static_cast<uint32_t>((*OffExpr)[0].U64);
      D.Bytes.assign(B.begin() + Pos, B.begin() + Pos + *Len);
      Pos += *Len;
      M.Data.push_back(std::move(D));
    }
    return Status::success();
  }

  Expected<FuncType> blockType() {
    size_t Off = Pos;
    if (Pos >= Fence)
      return fail(Category::Truncated, Pos, "truncated block type");
    uint8_t Peek = B[Pos];
    if (Peek == 0x40) {
      ++Pos;
      return FuncType{};
    }
    if (Peek == 0x7f || Peek == 0x7e || Peek == 0x7d || Peek == 0x7c) {
      ++Pos;
      FuncType FT;
      FT.Results.push_back(static_cast<ValType>(Peek));
      return FT;
    }
    Expected<int64_t> Idx = sleb(33, "block type index");
    if (!Idx)
      return Idx.error();
    if (*Idx < 0 || static_cast<uint64_t>(*Idx) >= M.Types.size())
      return fail(Category::Malformed, Off,
                  "bad block type index " + std::to_string(*Idx));
    return M.Types[static_cast<size_t>(*Idx)];
  }

  /// Parses instructions until the matching `end` (consumed). The `else`
  /// marker terminates a then-branch without being consumed by it.
  /// \p Depth counts enclosing structured instructions; it bounds both
  /// this recursion and the validator's.
  Expected<std::vector<WInst>> parseUntil(uint8_t &Terminator,
                                          uint32_t Depth) {
    if (Depth > L.MaxNestingDepth)
      return fail(Category::LimitExceeded, Pos,
                  "block nesting exceeds depth limit of " +
                      std::to_string(L.MaxNestingDepth));
    std::vector<WInst> Out;
    for (;;) {
      size_t Off = Pos;
      Expected<uint8_t> Bc = u8("opcode");
      if (!Bc)
        return Bc.error();
      if (*Bc == 0x0b || *Bc == 0x05) {
        Terminator = *Bc;
        return Out;
      }
      if (!validOpcode(*Bc))
        return fail(Category::Malformed, Off,
                    "invalid opcode " + std::to_string(*Bc));
      if (Status S = charge(sizeof(WInst), "instruction"); !S)
        return S.error();
      Op K = static_cast<Op>(*Bc);
      WInst I(K);
      switch (K) {
      case Op::Block:
      case Op::Loop: {
        Expected<FuncType> BT = blockType();
        if (!BT)
          return BT.error();
        I.BT = std::move(*BT);
        uint8_t T = 0;
        Expected<std::vector<WInst>> Body = parseUntil(T, Depth + 1);
        if (!Body)
          return Body.error();
        if (T != 0x0b)
          return fail(Category::Malformed, Pos, "unexpected else in block");
        I.Body = std::move(*Body);
        break;
      }
      case Op::If: {
        Expected<FuncType> BT = blockType();
        if (!BT)
          return BT.error();
        I.BT = std::move(*BT);
        uint8_t T = 0;
        Expected<std::vector<WInst>> Then = parseUntil(T, Depth + 1);
        if (!Then)
          return Then.error();
        I.Body = std::move(*Then);
        if (T == 0x05) {
          Expected<std::vector<WInst>> Else = parseUntil(T, Depth + 1);
          if (!Else)
            return Else.error();
          if (T != 0x0b)
            return fail(Category::Malformed, Pos, "unterminated else");
          I.Else = std::move(*Else);
        }
        break;
      }
      case Op::Br:
      case Op::BrIf:
      case Op::Call:
      case Op::LocalGet:
      case Op::LocalSet:
      case Op::LocalTee:
      case Op::GlobalGet:
      case Op::GlobalSet: {
        Expected<uint32_t> V = u32("index immediate");
        if (!V)
          return V.error();
        I.U32 = *V;
        break;
      }
      case Op::CallIndirect: {
        Expected<uint32_t> V = u32("call_indirect type index");
        if (!V)
          return V.error();
        size_t TblOff = Pos;
        Expected<uint8_t> Tbl = u8("call_indirect table index");
        if (!Tbl)
          return Tbl.error();
        if (*Tbl != 0x00)
          return fail(Category::Malformed, TblOff,
                      "nonzero call_indirect table index");
        I.U32 = *V;
        break;
      }
      case Op::BrTable: {
        Expected<uint32_t> N = count(L.MaxOperandDepth, 1, "br_table target");
        if (!N)
          return N.error();
        if (Status S = charge(uint64_t(*N) * sizeof(uint32_t), "br_table");
            !S)
          return S.error();
        I.Table.reserve(*N);
        for (uint32_t J = 0; J < *N; ++J) {
          Expected<uint32_t> T = u32("br_table target");
          if (!T)
            return T.error();
          I.Table.push_back(*T);
        }
        Expected<uint32_t> D = u32("br_table default");
        if (!D)
          return D.error();
        I.U32 = *D;
        break;
      }
      case Op::I32Const: {
        Expected<int64_t> V = sleb(32, "i32.const");
        if (!V)
          return V.error();
        I.U64 = static_cast<uint32_t>(static_cast<int32_t>(*V));
        break;
      }
      case Op::I64Const: {
        Expected<int64_t> V = sleb(64, "i64.const");
        if (!V)
          return V.error();
        I.U64 = static_cast<uint64_t>(*V);
        break;
      }
      case Op::F32Const: {
        if (Pos + 4 > Fence)
          return fail(Category::Truncated, Pos, "truncated f32.const");
        uint32_t V;
        std::memcpy(&V, B.data() + Pos, 4);
        Pos += 4;
        I.U64 = V;
        break;
      }
      case Op::F64Const: {
        if (Pos + 8 > Fence)
          return fail(Category::Truncated, Pos, "truncated f64.const");
        uint64_t V;
        std::memcpy(&V, B.data() + Pos, 8);
        Pos += 8;
        I.U64 = V;
        break;
      }
      case Op::MemorySize:
      case Op::MemoryGrow: {
        size_t ROff = Pos;
        Expected<uint8_t> R = u8("memory reserved byte");
        if (!R)
          return R.error();
        if (*R != 0x00)
          return fail(Category::Malformed, ROff,
                      "nonzero memory instruction reserved byte");
        break;
      }
      default: {
        uint8_t C = static_cast<uint8_t>(K);
        if (C >= 0x28 && C <= 0x3e) { // memarg
          size_t AOff = Pos;
          Expected<uint32_t> A = u32("memarg alignment");
          if (!A)
            return A.error();
          if (*A > 31)
            return fail(Category::Malformed, AOff,
                        "memarg alignment exponent " + std::to_string(*A) +
                            " out of range");
          Expected<uint32_t> O = u32("memarg offset");
          if (!O)
            return O.error();
          I.Align = *A;
          I.Offset = *O;
        }
        break;
      }
      }
      Out.push_back(std::move(I));
    }
  }

  Expected<std::vector<WInst>> expr() {
    uint8_t T = 0;
    Expected<std::vector<WInst>> Body = parseUntil(T, 0);
    if (!Body)
      return Body;
    if (T != 0x0b)
      return fail(Category::Malformed, Pos,
                  "expression not terminated by end");
    return Body;
  }

  const std::vector<uint8_t> &B;
  const Limits &L;
  IngestError *ErrOut;
  size_t Pos = 0;
  /// Upper bound for every read: the end of the current section (or code
  /// body), so no structure can consume its neighbor's bytes.
  size_t Fence = 0;
  /// Bytes charged against Limits::MaxTotalAlloc so far.
  uint64_t Charged = 0;
  WModule M;
  std::vector<uint32_t> TypeIdxs;
  std::vector<uint32_t> Elems;
};

} // namespace

Expected<WModule> rw::wasm::decode(const std::vector<uint8_t> &Bytes) {
  return decode(Bytes, ingest::Limits(), nullptr);
}

Expected<WModule> rw::wasm::decode(const std::vector<uint8_t> &Bytes,
                                   const ingest::Limits &L,
                                   ingest::IngestError *ErrOut) {
  OBS_SPAN("decode", Bytes.size());
  if (ErrOut)
    *ErrOut = ingest::IngestError();
  Decoder D(Bytes, L, ErrOut);
  return D.run();
}

//===----------------------------------------------------------------------===//
// WAT-ish printing
//===----------------------------------------------------------------------===//

namespace {

const char *opName(Op K);

void printInsts(std::ostringstream &OS, const std::vector<WInst> &Body,
                unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  for (const WInst &I : Body) {
    switch (I.K) {
    case Op::Block:
    case Op::Loop:
    case Op::If:
      OS << Pad << opName(I.K) << "\n";
      printInsts(OS, I.Body, Indent + 1);
      if (I.K == Op::If && !I.Else.empty()) {
        OS << Pad << "else\n";
        printInsts(OS, I.Else, Indent + 1);
      }
      OS << Pad << "end\n";
      break;
    case Op::I32Const:
      OS << Pad << "i32.const " << static_cast<int32_t>(I.U64) << "\n";
      break;
    case Op::I64Const:
      OS << Pad << "i64.const " << static_cast<int64_t>(I.U64) << "\n";
      break;
    case Op::Br:
    case Op::BrIf:
    case Op::Call:
    case Op::CallIndirect:
    case Op::LocalGet:
    case Op::LocalSet:
    case Op::LocalTee:
    case Op::GlobalGet:
    case Op::GlobalSet:
      OS << Pad << opName(I.K) << " " << I.U32 << "\n";
      break;
    case Op::BrTable: {
      OS << Pad << "br_table";
      for (uint32_t T : I.Table)
        OS << " " << T;
      OS << " " << I.U32 << "\n";
      break;
    }
    default: {
      uint8_t C = static_cast<uint8_t>(I.K);
      if (C >= 0x28 && C <= 0x3e)
        OS << Pad << opName(I.K) << " offset=" << I.Offset << "\n";
      else
        OS << Pad << opName(I.K) << "\n";
      break;
    }
    }
  }
}

const char *opName(Op K) {
  switch (K) {
  case Op::Unreachable:
    return "unreachable";
  case Op::Nop:
    return "nop";
  case Op::Block:
    return "block";
  case Op::Loop:
    return "loop";
  case Op::If:
    return "if";
  case Op::Br:
    return "br";
  case Op::BrIf:
    return "br_if";
  case Op::BrTable:
    return "br_table";
  case Op::Return:
    return "return";
  case Op::Call:
    return "call";
  case Op::CallIndirect:
    return "call_indirect";
  case Op::Drop:
    return "drop";
  case Op::Select:
    return "select";
  case Op::LocalGet:
    return "local.get";
  case Op::LocalSet:
    return "local.set";
  case Op::LocalTee:
    return "local.tee";
  case Op::GlobalGet:
    return "global.get";
  case Op::GlobalSet:
    return "global.set";
  case Op::I32Load:
    return "i32.load";
  case Op::I64Load:
    return "i64.load";
  case Op::I32Store:
    return "i32.store";
  case Op::I64Store:
    return "i64.store";
  case Op::MemorySize:
    return "memory.size";
  case Op::MemoryGrow:
    return "memory.grow";
  case Op::I32Add:
    return "i32.add";
  case Op::I32Sub:
    return "i32.sub";
  case Op::I32Mul:
    return "i32.mul";
  case Op::I64Add:
    return "i64.add";
  case Op::I32Eqz:
    return "i32.eqz";
  case Op::I32Eq:
    return "i32.eq";
  case Op::I32LtS:
    return "i32.lt_s";
  default:
    return "op";
  }
}

} // namespace

std::string rw::wasm::printWat(const WModule &M) {
  std::ostringstream OS;
  OS << "(module\n";
  for (size_t I = 0; I < M.ImportFuncs.size(); ++I)
    OS << "  (import \"" << M.ImportFuncs[I].Mod << "\" \""
       << M.ImportFuncs[I].Name << "\" (func $" << I << "))\n";
  if (M.Memory)
    OS << "  (memory " << M.Memory->first << ")\n";
  for (size_t I = 0; I < M.Funcs.size(); ++I) {
    const WFunc &F = M.Funcs[I];
    const FuncType &FT = M.Types[F.TypeIdx];
    OS << "  (func $" << (I + M.ImportFuncs.size()) << " (param";
    for (ValType T : FT.Params)
      OS << " " << valTypeName(T);
    OS << ") (result";
    for (ValType T : FT.Results)
      OS << " " << valTypeName(T);
    OS << ")\n";
    printInsts(OS, F.Body, 2);
    OS << "  )\n";
  }
  for (const WExport &E : M.Exports)
    OS << "  (export \"" << E.Name << "\")\n";
  OS << ")\n";
  return OS.str();
}
