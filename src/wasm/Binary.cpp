//===- wasm/Binary.cpp - Wasm binary encoder and decoder -------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "wasm/Binary.h"

#include "support/LEB128.h"

#include <cassert>
#include <cstring>
#include <sstream>

using namespace rw;
using namespace rw::wasm;

//===----------------------------------------------------------------------===//
// Encoder
//===----------------------------------------------------------------------===//

namespace {

class Encoder {
public:
  explicit Encoder(WModule M) : M(std::move(M)) {}

  std::vector<uint8_t> run() {
    // Pre-register all multi-value block types so the type section is
    // complete before it is emitted.
    for (WFunc &F : M.Funcs)
      registerBlockTypes(F.Body);
    for (WGlobal &G : M.Globals)
      registerBlockTypes(G.Init);

    Out = {0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00};
    emitTypeSection();
    emitImportSection();
    emitFunctionSection();
    emitTableSection();
    emitMemorySection();
    emitGlobalSection();
    emitExportSection();
    emitStartSection();
    emitElemSection();
    emitCodeSection();
    emitDataSection();
    return std::move(Out);
  }

private:
  void registerBlockTypes(std::vector<WInst> &Body) {
    for (WInst &I : Body) {
      if (I.K == Op::Block || I.K == Op::Loop || I.K == Op::If) {
        if (!(I.BT.Params.empty() && I.BT.Results.size() <= 1))
          M.addType(I.BT);
        registerBlockTypes(I.Body);
        registerBlockTypes(I.Else);
      }
    }
  }

  void u8(uint8_t B) { Out.push_back(B); }
  void u32(uint64_t V) { encodeULEB128(V, Out); }
  void s64(int64_t V) { encodeSLEB128(V, Out); }
  void raw32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Out.push_back((V >> (8 * I)) & 0xff);
  }
  void raw64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Out.push_back((V >> (8 * I)) & 0xff);
  }
  void name(const std::string &S) {
    u32(S.size());
    Out.insert(Out.end(), S.begin(), S.end());
  }
  void valType(ValType T) { u8(static_cast<uint8_t>(T)); }

  /// Emits a section: id, size, payload.
  template <typename F> void section(uint8_t Id, F Payload) {
    std::vector<uint8_t> Saved = std::move(Out);
    Out.clear();
    Payload();
    std::vector<uint8_t> Body = std::move(Out);
    Out = std::move(Saved);
    if (Body.empty())
      return;
    u8(Id);
    u32(Body.size());
    Out.insert(Out.end(), Body.begin(), Body.end());
  }

  void emitTypeSection() {
    if (M.Types.empty())
      return;
    section(1, [&] {
      u32(M.Types.size());
      for (const FuncType &T : M.Types) {
        u8(0x60);
        u32(T.Params.size());
        for (ValType V : T.Params)
          valType(V);
        u32(T.Results.size());
        for (ValType V : T.Results)
          valType(V);
      }
    });
  }

  void emitImportSection() {
    if (M.ImportFuncs.empty())
      return;
    section(2, [&] {
      u32(M.ImportFuncs.size());
      for (const WImportFunc &I : M.ImportFuncs) {
        name(I.Mod);
        name(I.Name);
        u8(0x00);
        u32(I.TypeIdx);
      }
    });
  }

  void emitFunctionSection() {
    if (M.Funcs.empty())
      return;
    section(3, [&] {
      u32(M.Funcs.size());
      for (const WFunc &F : M.Funcs)
        u32(F.TypeIdx);
    });
  }

  void emitTableSection() {
    if (M.TableElems.empty())
      return;
    section(4, [&] {
      u32(1);
      u8(0x70); // funcref
      u8(0x00); // min only
      u32(M.TableElems.size());
    });
  }

  void emitMemorySection() {
    if (!M.Memory)
      return;
    section(5, [&] {
      u32(1);
      if (M.Memory->second) {
        u8(0x01);
        u32(M.Memory->first);
        u32(*M.Memory->second);
      } else {
        u8(0x00);
        u32(M.Memory->first);
      }
    });
  }

  void emitGlobalSection() {
    if (M.Globals.empty())
      return;
    section(6, [&] {
      u32(M.Globals.size());
      for (const WGlobal &G : M.Globals) {
        valType(G.T);
        u8(G.Mut ? 0x01 : 0x00);
        expr(G.Init);
      }
    });
  }

  void emitExportSection() {
    if (M.Exports.empty())
      return;
    section(7, [&] {
      u32(M.Exports.size());
      for (const WExport &E : M.Exports) {
        name(E.Name);
        u8(static_cast<uint8_t>(E.Kind));
        u32(E.Idx);
      }
    });
  }

  void emitStartSection() {
    if (!M.Start)
      return;
    section(8, [&] { u32(*M.Start); });
  }

  void emitElemSection() {
    if (M.TableElems.empty())
      return;
    section(9, [&] {
      u32(1);
      u8(0x00);
      // Offset expression: i32.const 0, end.
      u8(0x41);
      s64(0);
      u8(0x0b);
      u32(M.TableElems.size());
      for (uint32_t E : M.TableElems)
        u32(E);
    });
  }

  void emitCodeSection() {
    if (M.Funcs.empty())
      return;
    section(10, [&] {
      u32(M.Funcs.size());
      for (const WFunc &F : M.Funcs) {
        std::vector<uint8_t> Saved = std::move(Out);
        Out.clear();
        // Locals, run-length encoded by type.
        std::vector<std::pair<uint32_t, ValType>> Runs;
        for (ValType T : F.Locals) {
          if (!Runs.empty() && Runs.back().second == T)
            ++Runs.back().first;
          else
            Runs.push_back({1, T});
        }
        u32(Runs.size());
        for (auto &R : Runs) {
          u32(R.first);
          valType(R.second);
        }
        expr(F.Body);
        std::vector<uint8_t> Body = std::move(Out);
        Out = std::move(Saved);
        u32(Body.size());
        Out.insert(Out.end(), Body.begin(), Body.end());
      }
    });
  }

  void emitDataSection() {
    if (M.Data.empty())
      return;
    section(11, [&] {
      u32(M.Data.size());
      for (const WData &D : M.Data) {
        u8(0x00);
        u8(0x41);
        s64(static_cast<int32_t>(D.Offset));
        u8(0x0b);
        u32(D.Bytes.size());
        Out.insert(Out.end(), D.Bytes.begin(), D.Bytes.end());
      }
    });
  }

  void blockType(const FuncType &BT) {
    if (BT.Params.empty() && BT.Results.empty()) {
      u8(0x40);
      return;
    }
    if (BT.Params.empty() && BT.Results.size() == 1) {
      valType(BT.Results[0]);
      return;
    }
    // Multi-value: s33 type index (registered beforehand).
    int64_t Idx = -1;
    for (uint32_t I = 0; I < M.Types.size(); ++I)
      if (M.Types[I] == BT) {
        Idx = I;
        break;
      }
    assert(Idx >= 0 && "block type not registered");
    s64(Idx);
  }

  void expr(const std::vector<WInst> &Body) {
    insts(Body);
    u8(0x0b); // end
  }

  void insts(const std::vector<WInst> &Body) {
    for (const WInst &I : Body)
      inst(I);
  }

  void inst(const WInst &I) {
    u8(static_cast<uint8_t>(I.K));
    switch (I.K) {
    case Op::Block:
    case Op::Loop:
      blockType(I.BT);
      insts(I.Body);
      u8(0x0b);
      break;
    case Op::If:
      blockType(I.BT);
      insts(I.Body);
      if (!I.Else.empty()) {
        u8(0x05); // else
        insts(I.Else);
      }
      u8(0x0b);
      break;
    case Op::Br:
    case Op::BrIf:
    case Op::Call:
    case Op::LocalGet:
    case Op::LocalSet:
    case Op::LocalTee:
    case Op::GlobalGet:
    case Op::GlobalSet:
      u32(I.U32);
      break;
    case Op::CallIndirect:
      u32(I.U32);
      u8(0x00); // table index
      break;
    case Op::BrTable:
      u32(I.Table.size());
      for (uint32_t T : I.Table)
        u32(T);
      u32(I.U32);
      break;
    case Op::I32Const:
      s64(static_cast<int32_t>(I.U64));
      break;
    case Op::I64Const:
      s64(static_cast<int64_t>(I.U64));
      break;
    case Op::F32Const:
      raw32(static_cast<uint32_t>(I.U64));
      break;
    case Op::F64Const:
      raw64(I.U64);
      break;
    case Op::MemorySize:
    case Op::MemoryGrow:
      u8(0x00);
      break;
    default: {
      uint8_t C = static_cast<uint8_t>(I.K);
      if (C >= 0x28 && C <= 0x3e) { // memarg
        u32(I.Align);
        u32(I.Offset);
      }
      break;
    }
    }
  }

  WModule M;
  std::vector<uint8_t> Out;
};

} // namespace

std::vector<uint8_t> rw::wasm::encode(WModule M) {
  Encoder E(std::move(M));
  return E.run();
}

//===----------------------------------------------------------------------===//
// Decoder
//===----------------------------------------------------------------------===//

namespace {

class Decoder {
public:
  explicit Decoder(const std::vector<uint8_t> &Bytes) : B(Bytes) {}

  Expected<WModule> run() {
    if (B.size() < 8 || B[0] != 0 || B[1] != 'a' || B[2] != 's' ||
        B[3] != 'm')
      return Error("bad wasm magic");
    Pos = 8;
    while (Pos < B.size()) {
      uint8_t Id = B[Pos++];
      auto Size = u32();
      if (!Size)
        return Error("truncated section header");
      size_t End = Pos + *Size;
      if (End > B.size())
        return Error("section extends past end of module");
      Status S = Status::success();
      switch (Id) {
      case 1:
        S = typeSection();
        break;
      case 2:
        S = importSection();
        break;
      case 3:
        S = functionSection();
        break;
      case 4:
        S = tableSection();
        break;
      case 5:
        S = memorySection();
        break;
      case 6:
        S = globalSection();
        break;
      case 7:
        S = exportSection();
        break;
      case 8: {
        auto V = u32();
        if (!V)
          return Error("bad start section");
        M.Start = static_cast<uint32_t>(*V);
        break;
      }
      case 9:
        S = elemSection();
        break;
      case 10:
        S = codeSection();
        break;
      case 11:
        S = dataSection();
        break;
      default:
        Pos = End; // Skip custom/unknown sections.
        break;
      }
      if (!S)
        return S.error();
      if (Pos != End)
        return Error("section size mismatch (id " + std::to_string(Id) + ")");
    }
    if (M.Funcs.size() != TypeIdxs.size())
      return Error("function and code section counts disagree");
    for (size_t I = 0; I < M.Funcs.size(); ++I)
      M.Funcs[I].TypeIdx = TypeIdxs[I];
    M.TableElems = Elems;
    return std::move(M);
  }

private:
  std::optional<uint64_t> u32() { return decodeULEB128(B, Pos); }
  std::optional<int64_t> s64() { return decodeSLEB128(B, Pos); }
  std::optional<uint8_t> u8() {
    if (Pos >= B.size())
      return std::nullopt;
    return B[Pos++];
  }

  Expected<ValType> valType() {
    auto V = u8();
    if (!V)
      return Error("truncated value type");
    switch (*V) {
    case 0x7f:
      return ValType::I32;
    case 0x7e:
      return ValType::I64;
    case 0x7d:
      return ValType::F32;
    case 0x7c:
      return ValType::F64;
    default:
      return Error("unknown value type");
    }
  }

  Expected<std::string> name() {
    auto N = u32();
    if (!N || Pos + *N > B.size())
      return Error("truncated name");
    std::string S(B.begin() + Pos, B.begin() + Pos + *N);
    Pos += *N;
    return S;
  }

  Status typeSection() {
    auto N = u32();
    if (!N)
      return Error("bad type count");
    for (uint64_t I = 0; I < *N; ++I) {
      auto Tag = u8();
      if (!Tag || *Tag != 0x60)
        return Error("expected functype tag");
      FuncType FT;
      auto NP = u32();
      if (!NP)
        return Error("bad param count");
      for (uint64_t J = 0; J < *NP; ++J) {
        Expected<ValType> V = valType();
        if (!V)
          return V.error();
        FT.Params.push_back(*V);
      }
      auto NR = u32();
      if (!NR)
        return Error("bad result count");
      for (uint64_t J = 0; J < *NR; ++J) {
        Expected<ValType> V = valType();
        if (!V)
          return V.error();
        FT.Results.push_back(*V);
      }
      M.Types.push_back(std::move(FT));
    }
    return Status::success();
  }

  Status importSection() {
    auto N = u32();
    if (!N)
      return Error("bad import count");
    for (uint64_t I = 0; I < *N; ++I) {
      Expected<std::string> Mod = name();
      if (!Mod)
        return Mod.error();
      Expected<std::string> Nm = name();
      if (!Nm)
        return Nm.error();
      auto Kind = u8();
      if (!Kind || *Kind != 0x00)
        return Error("only function imports are supported");
      auto TI = u32();
      if (!TI)
        return Error("bad import type index");
      M.ImportFuncs.push_back(
          {std::move(*Mod), std::move(*Nm), static_cast<uint32_t>(*TI)});
    }
    return Status::success();
  }

  Status functionSection() {
    auto N = u32();
    if (!N)
      return Error("bad function count");
    for (uint64_t I = 0; I < *N; ++I) {
      auto TI = u32();
      if (!TI)
        return Error("bad function type index");
      TypeIdxs.push_back(static_cast<uint32_t>(*TI));
    }
    return Status::success();
  }

  Status tableSection() {
    auto N = u32();
    if (!N || *N != 1)
      return Error("expected one table");
    auto ET = u8();
    if (!ET || *ET != 0x70)
      return Error("expected funcref table");
    auto HasMax = u8();
    if (!HasMax)
      return Error("bad table limits");
    auto Min = u32();
    if (!Min)
      return Error("bad table min");
    if (*HasMax == 1)
      (void)u32();
    return Status::success();
  }

  Status memorySection() {
    auto N = u32();
    if (!N || *N != 1)
      return Error("expected one memory");
    auto HasMax = u8();
    auto Min = u32();
    if (!HasMax || !Min)
      return Error("bad memory limits");
    std::optional<uint32_t> Max;
    if (*HasMax == 1) {
      auto Mx = u32();
      if (!Mx)
        return Error("bad memory max");
      Max = static_cast<uint32_t>(*Mx);
    }
    M.Memory = {static_cast<uint32_t>(*Min), Max};
    return Status::success();
  }

  Status globalSection() {
    auto N = u32();
    if (!N)
      return Error("bad global count");
    for (uint64_t I = 0; I < *N; ++I) {
      Expected<ValType> T = valType();
      if (!T)
        return T.error();
      auto Mut = u8();
      if (!Mut)
        return Error("bad global mutability");
      WGlobal G;
      G.T = *T;
      G.Mut = *Mut == 1;
      Expected<std::vector<WInst>> Init = expr();
      if (!Init)
        return Init.error();
      G.Init = std::move(*Init);
      M.Globals.push_back(std::move(G));
    }
    return Status::success();
  }

  Status exportSection() {
    auto N = u32();
    if (!N)
      return Error("bad export count");
    for (uint64_t I = 0; I < *N; ++I) {
      Expected<std::string> Nm = name();
      if (!Nm)
        return Nm.error();
      auto Kind = u8();
      auto Idx = u32();
      if (!Kind || !Idx)
        return Error("bad export entry");
      M.Exports.push_back({std::move(*Nm), static_cast<ExportKind>(*Kind),
                           static_cast<uint32_t>(*Idx)});
    }
    return Status::success();
  }

  Status elemSection() {
    auto N = u32();
    if (!N)
      return Error("bad elem count");
    for (uint64_t I = 0; I < *N; ++I) {
      auto Flag = u8();
      if (!Flag || *Flag != 0x00)
        return Error("unsupported elem segment");
      Expected<std::vector<WInst>> Off = expr();
      if (!Off)
        return Off.error();
      auto Cnt = u32();
      if (!Cnt)
        return Error("bad elem entry count");
      for (uint64_t J = 0; J < *Cnt; ++J) {
        auto FI = u32();
        if (!FI)
          return Error("bad elem function index");
        Elems.push_back(static_cast<uint32_t>(*FI));
      }
    }
    return Status::success();
  }

  Status codeSection() {
    auto N = u32();
    if (!N)
      return Error("bad code count");
    for (uint64_t I = 0; I < *N; ++I) {
      auto Size = u32();
      if (!Size)
        return Error("bad code body size");
      size_t End = Pos + *Size;
      WFunc F;
      auto NRuns = u32();
      if (!NRuns)
        return Error("bad local runs");
      for (uint64_t J = 0; J < *NRuns; ++J) {
        auto Cnt = u32();
        Expected<ValType> T = valType();
        if (!Cnt || !T)
          return Error("bad local run");
        for (uint64_t K = 0; K < *Cnt; ++K)
          F.Locals.push_back(*T);
      }
      Expected<std::vector<WInst>> Body = expr();
      if (!Body)
        return Body.error();
      F.Body = std::move(*Body);
      if (Pos != End)
        return Error("code body size mismatch");
      M.Funcs.push_back(std::move(F));
    }
    return Status::success();
  }

  Status dataSection() {
    auto N = u32();
    if (!N)
      return Error("bad data count");
    for (uint64_t I = 0; I < *N; ++I) {
      auto Flag = u8();
      if (!Flag || *Flag != 0x00)
        return Error("unsupported data segment");
      Expected<std::vector<WInst>> Off = expr();
      if (!Off)
        return Off.error();
      uint32_t Offset = 0;
      if (!Off->empty() && (*Off)[0].K == Op::I32Const)
        Offset = static_cast<uint32_t>((*Off)[0].U64);
      auto Len = u32();
      if (!Len || Pos + *Len > B.size())
        return Error("bad data bytes");
      WData D;
      D.Offset = Offset;
      D.Bytes.assign(B.begin() + Pos, B.begin() + Pos + *Len);
      Pos += *Len;
      M.Data.push_back(std::move(D));
    }
    return Status::success();
  }

  Expected<FuncType> blockType() {
    // Peek: 0x40, a valtype byte, or an s33 index.
    if (Pos >= B.size())
      return Error("truncated block type");
    uint8_t Peek = B[Pos];
    if (Peek == 0x40) {
      ++Pos;
      return FuncType{};
    }
    if (Peek == 0x7f || Peek == 0x7e || Peek == 0x7d || Peek == 0x7c) {
      ++Pos;
      FuncType FT;
      FT.Results.push_back(static_cast<ValType>(Peek));
      return FT;
    }
    auto Idx = s64();
    if (!Idx || *Idx < 0 || static_cast<size_t>(*Idx) >= M.Types.size())
      return Error("bad block type index");
    return M.Types[static_cast<size_t>(*Idx)];
  }

  /// Parses instructions until the matching `end` (consumed). The `else`
  /// marker terminates a then-branch without being consumed by it.
  Expected<std::vector<WInst>> parseUntil(uint8_t &Terminator) {
    std::vector<WInst> Out;
    for (;;) {
      auto Bc = u8();
      if (!Bc)
        return Error("truncated expression");
      if (*Bc == 0x0b || *Bc == 0x05) {
        Terminator = *Bc;
        return Out;
      }
      Op K = static_cast<Op>(*Bc);
      WInst I(K);
      switch (K) {
      case Op::Block:
      case Op::Loop: {
        Expected<FuncType> BT = blockType();
        if (!BT)
          return BT.error();
        I.BT = std::move(*BT);
        uint8_t T = 0;
        Expected<std::vector<WInst>> Body = parseUntil(T);
        if (!Body)
          return Body.error();
        if (T != 0x0b)
          return Error("unexpected else in block");
        I.Body = std::move(*Body);
        break;
      }
      case Op::If: {
        Expected<FuncType> BT = blockType();
        if (!BT)
          return BT.error();
        I.BT = std::move(*BT);
        uint8_t T = 0;
        Expected<std::vector<WInst>> Then = parseUntil(T);
        if (!Then)
          return Then.error();
        I.Body = std::move(*Then);
        if (T == 0x05) {
          Expected<std::vector<WInst>> Else = parseUntil(T);
          if (!Else)
            return Else.error();
          if (T != 0x0b)
            return Error("unterminated else");
          I.Else = std::move(*Else);
        }
        break;
      }
      case Op::Br:
      case Op::BrIf:
      case Op::Call:
      case Op::LocalGet:
      case Op::LocalSet:
      case Op::LocalTee:
      case Op::GlobalGet:
      case Op::GlobalSet: {
        auto V = u32();
        if (!V)
          return Error("truncated index immediate");
        I.U32 = static_cast<uint32_t>(*V);
        break;
      }
      case Op::CallIndirect: {
        auto V = u32();
        auto Tbl = u8();
        if (!V || !Tbl)
          return Error("truncated call_indirect");
        I.U32 = static_cast<uint32_t>(*V);
        break;
      }
      case Op::BrTable: {
        auto N = u32();
        if (!N)
          return Error("truncated br_table");
        for (uint64_t J = 0; J < *N; ++J) {
          auto T = u32();
          if (!T)
            return Error("truncated br_table target");
          I.Table.push_back(static_cast<uint32_t>(*T));
        }
        auto D = u32();
        if (!D)
          return Error("truncated br_table default");
        I.U32 = static_cast<uint32_t>(*D);
        break;
      }
      case Op::I32Const: {
        auto V = s64();
        if (!V)
          return Error("truncated i32.const");
        I.U64 = static_cast<uint32_t>(static_cast<int32_t>(*V));
        break;
      }
      case Op::I64Const: {
        auto V = s64();
        if (!V)
          return Error("truncated i64.const");
        I.U64 = static_cast<uint64_t>(*V);
        break;
      }
      case Op::F32Const: {
        if (Pos + 4 > B.size())
          return Error("truncated f32.const");
        uint32_t V;
        std::memcpy(&V, B.data() + Pos, 4);
        Pos += 4;
        I.U64 = V;
        break;
      }
      case Op::F64Const: {
        if (Pos + 8 > B.size())
          return Error("truncated f64.const");
        uint64_t V;
        std::memcpy(&V, B.data() + Pos, 8);
        Pos += 8;
        I.U64 = V;
        break;
      }
      case Op::MemorySize:
      case Op::MemoryGrow: {
        (void)u8();
        break;
      }
      default: {
        uint8_t C = static_cast<uint8_t>(K);
        if (C >= 0x28 && C <= 0x3e) {
          auto A = u32();
          auto O = u32();
          if (!A || !O)
            return Error("truncated memarg");
          I.Align = static_cast<uint32_t>(*A);
          I.Offset = static_cast<uint32_t>(*O);
        }
        break;
      }
      }
      Out.push_back(std::move(I));
    }
  }

  Expected<std::vector<WInst>> expr() {
    uint8_t T = 0;
    Expected<std::vector<WInst>> Body = parseUntil(T);
    if (!Body)
      return Body;
    if (T != 0x0b)
      return Error("expression not terminated by end");
    return Body;
  }

  const std::vector<uint8_t> &B;
  size_t Pos = 0;
  WModule M;
  std::vector<uint32_t> TypeIdxs;
  std::vector<uint32_t> Elems;
};

} // namespace

Expected<WModule> rw::wasm::decode(const std::vector<uint8_t> &Bytes) {
  Decoder D(Bytes);
  return D.run();
}

//===----------------------------------------------------------------------===//
// WAT-ish printing
//===----------------------------------------------------------------------===//

namespace {

const char *opName(Op K);

void printInsts(std::ostringstream &OS, const std::vector<WInst> &Body,
                unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  for (const WInst &I : Body) {
    switch (I.K) {
    case Op::Block:
    case Op::Loop:
    case Op::If:
      OS << Pad << opName(I.K) << "\n";
      printInsts(OS, I.Body, Indent + 1);
      if (I.K == Op::If && !I.Else.empty()) {
        OS << Pad << "else\n";
        printInsts(OS, I.Else, Indent + 1);
      }
      OS << Pad << "end\n";
      break;
    case Op::I32Const:
      OS << Pad << "i32.const " << static_cast<int32_t>(I.U64) << "\n";
      break;
    case Op::I64Const:
      OS << Pad << "i64.const " << static_cast<int64_t>(I.U64) << "\n";
      break;
    case Op::Br:
    case Op::BrIf:
    case Op::Call:
    case Op::CallIndirect:
    case Op::LocalGet:
    case Op::LocalSet:
    case Op::LocalTee:
    case Op::GlobalGet:
    case Op::GlobalSet:
      OS << Pad << opName(I.K) << " " << I.U32 << "\n";
      break;
    case Op::BrTable: {
      OS << Pad << "br_table";
      for (uint32_t T : I.Table)
        OS << " " << T;
      OS << " " << I.U32 << "\n";
      break;
    }
    default: {
      uint8_t C = static_cast<uint8_t>(I.K);
      if (C >= 0x28 && C <= 0x3e)
        OS << Pad << opName(I.K) << " offset=" << I.Offset << "\n";
      else
        OS << Pad << opName(I.K) << "\n";
      break;
    }
    }
  }
}

const char *opName(Op K) {
  switch (K) {
  case Op::Unreachable:
    return "unreachable";
  case Op::Nop:
    return "nop";
  case Op::Block:
    return "block";
  case Op::Loop:
    return "loop";
  case Op::If:
    return "if";
  case Op::Br:
    return "br";
  case Op::BrIf:
    return "br_if";
  case Op::BrTable:
    return "br_table";
  case Op::Return:
    return "return";
  case Op::Call:
    return "call";
  case Op::CallIndirect:
    return "call_indirect";
  case Op::Drop:
    return "drop";
  case Op::Select:
    return "select";
  case Op::LocalGet:
    return "local.get";
  case Op::LocalSet:
    return "local.set";
  case Op::LocalTee:
    return "local.tee";
  case Op::GlobalGet:
    return "global.get";
  case Op::GlobalSet:
    return "global.set";
  case Op::I32Load:
    return "i32.load";
  case Op::I64Load:
    return "i64.load";
  case Op::I32Store:
    return "i32.store";
  case Op::I64Store:
    return "i64.store";
  case Op::MemorySize:
    return "memory.size";
  case Op::MemoryGrow:
    return "memory.grow";
  case Op::I32Add:
    return "i32.add";
  case Op::I32Sub:
    return "i32.sub";
  case Op::I32Mul:
    return "i32.mul";
  case Op::I64Add:
    return "i64.add";
  case Op::I32Eqz:
    return "i32.eqz";
  case Op::I32Eq:
    return "i32.eq";
  case Op::I32LtS:
    return "i32.lt_s";
  default:
    return "op";
  }
}

} // namespace

std::string rw::wasm::printWat(const WModule &M) {
  std::ostringstream OS;
  OS << "(module\n";
  for (size_t I = 0; I < M.ImportFuncs.size(); ++I)
    OS << "  (import \"" << M.ImportFuncs[I].Mod << "\" \""
       << M.ImportFuncs[I].Name << "\" (func $" << I << "))\n";
  if (M.Memory)
    OS << "  (memory " << M.Memory->first << ")\n";
  for (size_t I = 0; I < M.Funcs.size(); ++I) {
    const WFunc &F = M.Funcs[I];
    const FuncType &FT = M.Types[F.TypeIdx];
    OS << "  (func $" << (I + M.ImportFuncs.size()) << " (param";
    for (ValType T : FT.Params)
      OS << " " << valTypeName(T);
    OS << ") (result";
    for (ValType T : FT.Results)
      OS << " " << valTypeName(T);
    OS << ")\n";
    printInsts(OS, F.Body, 2);
    OS << "  )\n";
  }
  for (const WExport &E : M.Exports)
    OS << "  (export \"" << E.Name << "\")\n";
  OS << ")\n";
  return OS.str();
}
