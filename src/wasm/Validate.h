//===- wasm/Validate.h - Wasm module validation -----------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard WebAssembly validation algorithm (type-checking of function
/// bodies with structured control flow and multi-value blocks). Lowered
/// RichWasm modules are validated before execution and before encoding —
/// a lowering bug cannot silently produce an ill-typed Wasm module.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_WASM_VALIDATE_H
#define RICHWASM_WASM_VALIDATE_H

#include "support/Error.h"
#include "wasm/WasmAst.h"

namespace rw::wasm {

/// Validates a whole module. Returns the first error found.
Status validate(const WModule &M);

/// Validates a whole module with an operand-stack depth cap per function
/// (ingest::Limits::MaxOperandDepth). The uncapped overload delegates here
/// with an effectively unlimited depth.
Status validate(const WModule &M, uint32_t MaxOperandDepth);

/// The stack signature of a non-structured opcode: operand types (bottom
/// first) and result types. Used by the validator and tests.
struct OpSig {
  std::vector<ValType> In, Out;
};
OpSig opSignature(Op K);

} // namespace rw::wasm

#endif // RICHWASM_WASM_VALIDATE_H
