//===- wasm/Validate.cpp - Wasm module validation --------------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "wasm/Validate.h"

#include "obs/Obs.h"

#include <cassert>

using namespace rw;
using namespace rw::wasm;

namespace {

constexpr ValType I32 = ValType::I32;
constexpr ValType I64 = ValType::I64;
constexpr ValType F32 = ValType::F32;
constexpr ValType F64 = ValType::F64;

} // namespace

OpSig rw::wasm::opSignature(Op K) {
  uint8_t C = static_cast<uint8_t>(K);
  // Comparison / test operators.
  if (C == 0x45)
    return {{I32}, {I32}};
  if (C >= 0x46 && C <= 0x4f)
    return {{I32, I32}, {I32}};
  if (C == 0x50)
    return {{I64}, {I32}};
  if (C >= 0x51 && C <= 0x5a)
    return {{I64, I64}, {I32}};
  if (C >= 0x5b && C <= 0x60)
    return {{F32, F32}, {I32}};
  if (C >= 0x61 && C <= 0x66)
    return {{F64, F64}, {I32}};
  // Numeric operators.
  if (C >= 0x67 && C <= 0x69)
    return {{I32}, {I32}};
  if (C >= 0x6a && C <= 0x78)
    return {{I32, I32}, {I32}};
  if (C >= 0x79 && C <= 0x7b)
    return {{I64}, {I64}};
  if (C >= 0x7c && C <= 0x8a)
    return {{I64, I64}, {I64}};
  if (C >= 0x8b && C <= 0x91)
    return {{F32}, {F32}};
  if (C >= 0x92 && C <= 0x98)
    return {{F32, F32}, {F32}};
  if (C >= 0x99 && C <= 0x9f)
    return {{F64}, {F64}};
  if (C >= 0xa0 && C <= 0xa6)
    return {{F64, F64}, {F64}};
  // Conversions.
  switch (K) {
  case Op::I32WrapI64:
    return {{I64}, {I32}};
  case Op::I32TruncF32S:
  case Op::I32TruncF32U:
    return {{F32}, {I32}};
  case Op::I32TruncF64S:
  case Op::I32TruncF64U:
    return {{F64}, {I32}};
  case Op::I64ExtendI32S:
  case Op::I64ExtendI32U:
    return {{I32}, {I64}};
  case Op::I64TruncF32S:
  case Op::I64TruncF32U:
    return {{F32}, {I64}};
  case Op::I64TruncF64S:
  case Op::I64TruncF64U:
    return {{F64}, {I64}};
  case Op::F32ConvertI32S:
  case Op::F32ConvertI32U:
    return {{I32}, {F32}};
  case Op::F32ConvertI64S:
  case Op::F32ConvertI64U:
    return {{I64}, {F32}};
  case Op::F32DemoteF64:
    return {{F64}, {F32}};
  case Op::F64ConvertI32S:
  case Op::F64ConvertI32U:
    return {{I32}, {F64}};
  case Op::F64ConvertI64S:
  case Op::F64ConvertI64U:
    return {{I64}, {F64}};
  case Op::F64PromoteF32:
    return {{F32}, {F64}};
  case Op::I32ReinterpretF32:
    return {{F32}, {I32}};
  case Op::I64ReinterpretF64:
    return {{F64}, {I64}};
  case Op::F32ReinterpretI32:
    return {{I32}, {F32}};
  case Op::F64ReinterpretI64:
    return {{I64}, {F64}};
  // Memory access.
  case Op::I32Load:
  case Op::I32Load8S:
  case Op::I32Load8U:
  case Op::I32Load16S:
  case Op::I32Load16U:
    return {{I32}, {I32}};
  case Op::I64Load:
  case Op::I64Load8S:
  case Op::I64Load8U:
  case Op::I64Load16S:
  case Op::I64Load16U:
  case Op::I64Load32S:
  case Op::I64Load32U:
    return {{I32}, {I64}};
  case Op::F32Load:
    return {{I32}, {F32}};
  case Op::F64Load:
    return {{I32}, {F64}};
  case Op::I32Store:
  case Op::I32Store8:
  case Op::I32Store16:
    return {{I32, I32}, {}};
  case Op::I64Store:
  case Op::I64Store8:
  case Op::I64Store16:
  case Op::I64Store32:
    return {{I32, I64}, {}};
  case Op::F32Store:
    return {{I32, F32}, {}};
  case Op::F64Store:
    return {{I32, F64}, {}};
  case Op::MemorySize:
    return {{}, {I32}};
  case Op::MemoryGrow:
    return {{I32}, {I32}};
  case Op::I32Const:
    return {{}, {I32}};
  case Op::I64Const:
    return {{}, {I64}};
  case Op::F32Const:
    return {{}, {F32}};
  case Op::F64Const:
    return {{}, {F64}};
  default:
    return {{}, {}};
  }
}

namespace {

/// Per-function validation context, recursing over the structured tree.
class FuncValidator {
public:
  FuncValidator(const WModule &M, std::vector<ValType> Locals,
                std::vector<ValType> Results, uint32_t MaxOperandDepth)
      : M(M), Locals(std::move(Locals)), Results(std::move(Results)),
        MaxOperandDepth(MaxOperandDepth) {}

  Status run(const std::vector<WInst> &Body) {
    Labels.push_back(Results); // The implicit function label.
    Status S = seq(Body, {}, Results);
    Labels.pop_back();
    return S;
  }

private:
  struct Stack {
    std::vector<ValType> Vals;
    bool Unreachable = false;
  };

  Status popExpect(Stack &St, ValType Want, const char *What) {
    if (St.Vals.empty()) {
      if (St.Unreachable)
        return Status::success();
      return Error(std::string("stack underflow at ") + What);
    }
    ValType Got = St.Vals.back();
    St.Vals.pop_back();
    if (Got != Want)
      return Error(std::string("type mismatch at ") + What + ": expected " +
                   valTypeName(Want) + ", found " + valTypeName(Got));
    return Status::success();
  }

  Status popMany(Stack &St, const std::vector<ValType> &Ts,
                 const char *What) {
    for (size_t I = Ts.size(); I > 0; --I)
      if (Status S = popExpect(St, Ts[I - 1], What); !S)
        return S;
    return Status::success();
  }

  Status seq(const std::vector<WInst> &Body, std::vector<ValType> In,
             const std::vector<ValType> &Out) {
    Stack St;
    St.Vals = std::move(In);
    for (const WInst &I : Body) {
      if (St.Unreachable && isStackPolymorphicBarrier(I.K)) {
        // Keep scanning for structural validity but skip type checking of
        // dead code (sound: never executed).
        continue;
      }
      if (St.Unreachable)
        continue;
      if (Status S = inst(I, St); !S)
        return S;
      if (St.Vals.size() > MaxOperandDepth)
        return Error("operand stack depth exceeds limit of " +
                     std::to_string(MaxOperandDepth));
    }
    if (St.Unreachable)
      return Status::success();
    if (St.Vals.size() != Out.size())
      return Error("block leaves " + std::to_string(St.Vals.size()) +
                   " values, expected " + std::to_string(Out.size()));
    for (size_t I = 0; I < Out.size(); ++I)
      if (St.Vals[I] != Out[I])
        return Error("block result type mismatch");
    return Status::success();
  }

  static bool isStackPolymorphicBarrier(Op K) {
    return K == Op::Block || K == Op::Loop || K == Op::If;
  }

  Status brTarget(uint32_t D, Stack &St, const char *What) {
    if (D >= Labels.size())
      return Error(std::string(What) + ": label depth out of range");
    const std::vector<ValType> &T = Labels[Labels.size() - 1 - D];
    return popMany(St, T, What);
  }

  Status inst(const WInst &I, Stack &St) {
    switch (I.K) {
    case Op::Unreachable:
      St.Unreachable = true;
      return Status::success();
    case Op::Nop:
      return Status::success();
    case Op::Block:
    case Op::Loop: {
      if (Status S = popMany(St, I.BT.Params, "block"); !S)
        return S;
      Labels.push_back(I.K == Op::Loop ? I.BT.Params : I.BT.Results);
      Status S = seq(I.Body, I.BT.Params, I.BT.Results);
      Labels.pop_back();
      if (!S)
        return S;
      for (ValType T : I.BT.Results)
        St.Vals.push_back(T);
      return Status::success();
    }
    case Op::If: {
      if (Status S = popExpect(St, I32, "if"); !S)
        return S;
      if (Status S = popMany(St, I.BT.Params, "if"); !S)
        return S;
      Labels.push_back(I.BT.Results);
      Status S1 = seq(I.Body, I.BT.Params, I.BT.Results);
      Status S2 = seq(I.Else, I.BT.Params, I.BT.Results);
      Labels.pop_back();
      if (!S1)
        return S1;
      if (!S2)
        return S2;
      for (ValType T : I.BT.Results)
        St.Vals.push_back(T);
      return Status::success();
    }
    case Op::Br: {
      if (Status S = brTarget(I.U32, St, "br"); !S)
        return S;
      St.Unreachable = true;
      return Status::success();
    }
    case Op::BrIf: {
      if (Status S = popExpect(St, I32, "br_if"); !S)
        return S;
      if (I.U32 >= Labels.size())
        return Error("br_if: label depth out of range");
      const std::vector<ValType> &T = Labels[Labels.size() - 1 - I.U32];
      if (Status S = popMany(St, T, "br_if"); !S)
        return S;
      for (ValType V : T)
        St.Vals.push_back(V);
      return Status::success();
    }
    case Op::BrTable: {
      if (Status S = popExpect(St, I32, "br_table"); !S)
        return S;
      if (Status S = brTarget(I.U32, St, "br_table"); !S)
        return S;
      for (uint32_t D : I.Table)
        if (D >= Labels.size())
          return Error("br_table: label depth out of range");
      St.Unreachable = true;
      return Status::success();
    }
    case Op::Return: {
      if (Status S = popMany(St, Results, "return"); !S)
        return S;
      St.Unreachable = true;
      return Status::success();
    }
    case Op::Call: {
      if (I.U32 >= M.numFuncs())
        return Error("call: function index out of range");
      const FuncType &FT = M.funcType(I.U32);
      if (Status S = popMany(St, FT.Params, "call"); !S)
        return S;
      for (ValType T : FT.Results)
        St.Vals.push_back(T);
      return Status::success();
    }
    case Op::CallIndirect: {
      if (I.U32 >= M.Types.size())
        return Error("call_indirect: type index out of range");
      if (Status S = popExpect(St, I32, "call_indirect"); !S)
        return S;
      const FuncType &FT = M.Types[I.U32];
      if (Status S = popMany(St, FT.Params, "call_indirect"); !S)
        return S;
      for (ValType T : FT.Results)
        St.Vals.push_back(T);
      return Status::success();
    }
    case Op::Drop: {
      if (St.Vals.empty())
        return Error("drop: stack underflow");
      St.Vals.pop_back();
      return Status::success();
    }
    case Op::Select: {
      if (Status S = popExpect(St, I32, "select"); !S)
        return S;
      if (St.Vals.size() < 2)
        return Error("select: stack underflow");
      ValType A = St.Vals.back();
      St.Vals.pop_back();
      ValType B = St.Vals.back();
      St.Vals.pop_back();
      if (A != B)
        return Error("select: operand types disagree");
      St.Vals.push_back(A);
      return Status::success();
    }
    case Op::LocalGet: {
      if (I.U32 >= Locals.size())
        return Error("local.get: index out of range");
      St.Vals.push_back(Locals[I.U32]);
      return Status::success();
    }
    case Op::LocalSet: {
      if (I.U32 >= Locals.size())
        return Error("local.set: index out of range");
      return popExpect(St, Locals[I.U32], "local.set");
    }
    case Op::LocalTee: {
      if (I.U32 >= Locals.size())
        return Error("local.tee: index out of range");
      if (Status S = popExpect(St, Locals[I.U32], "local.tee"); !S)
        return S;
      St.Vals.push_back(Locals[I.U32]);
      return Status::success();
    }
    case Op::GlobalGet: {
      if (I.U32 >= M.Globals.size())
        return Error("global.get: index out of range");
      St.Vals.push_back(M.Globals[I.U32].T);
      return Status::success();
    }
    case Op::GlobalSet: {
      if (I.U32 >= M.Globals.size())
        return Error("global.set: index out of range");
      if (!M.Globals[I.U32].Mut)
        return Error("global.set of immutable global");
      return popExpect(St, M.Globals[I.U32].T, "global.set");
    }
    default: {
      // Memory access requires a memory.
      uint8_t C = static_cast<uint8_t>(I.K);
      if (C >= 0x28 && C <= 0x40 && !M.Memory)
        return Error("memory instruction without a memory");
      OpSig Sig = opSignature(I.K);
      if (Status S = popMany(St, Sig.In, "operator"); !S)
        return S;
      for (ValType T : Sig.Out)
        St.Vals.push_back(T);
      return Status::success();
    }
    }
  }

  const WModule &M;
  std::vector<ValType> Locals;
  std::vector<ValType> Results;
  std::vector<std::vector<ValType>> Labels;
  uint32_t MaxOperandDepth;
};

/// Validates one global initializer: exactly one constant instruction —
/// a const of the global's type, or global.get of an earlier immutable
/// global of the same type. This is what Instance::initialize evaluates,
/// so anything else would be silently misinitialized.
Status validateGlobalInit(const WModule &M, size_t GI) {
  const WGlobal &G = M.Globals[GI];
  if (G.Init.size() != 1)
    return Error("global " + std::to_string(GI) +
                 ": initializer must be a single constant instruction");
  const WInst &I = G.Init[0];
  ValType T;
  switch (I.K) {
  case Op::I32Const:
    T = ValType::I32;
    break;
  case Op::I64Const:
    T = ValType::I64;
    break;
  case Op::F32Const:
    T = ValType::F32;
    break;
  case Op::F64Const:
    T = ValType::F64;
    break;
  case Op::GlobalGet:
    if (I.U32 >= GI)
      return Error("global " + std::to_string(GI) +
                   ": initializer references global " +
                   std::to_string(I.U32) + " not defined before it");
    if (M.Globals[I.U32].Mut)
      return Error("global " + std::to_string(GI) +
                   ": initializer references mutable global");
    T = M.Globals[I.U32].T;
    break;
  default:
    return Error("global " + std::to_string(GI) +
                 ": non-constant initializer");
  }
  if (T != G.T)
    return Error("global " + std::to_string(GI) +
                 ": initializer type mismatch");
  return Status::success();
}

} // namespace

Status rw::wasm::validate(const WModule &M) {
  // Effectively uncapped: any depth a real module reaches is fine; the
  // ingest front door passes its policy's cap explicitly.
  return validate(M, ~uint32_t(0));
}

Status rw::wasm::validate(const WModule &M, uint32_t MaxOperandDepth) {
  OBS_SPAN("validate", M.Funcs.size());
  for (const WImportFunc &I : M.ImportFuncs)
    if (I.TypeIdx >= M.Types.size())
      return Error("import type index out of range");
  for (uint32_t E : M.TableElems)
    if (E >= M.numFuncs())
      return Error("table element out of range");
  for (const WExport &E : M.Exports) {
    if (E.Kind == ExportKind::Func && E.Idx >= M.numFuncs())
      return Error("exported function index out of range");
    if (E.Kind == ExportKind::Global && E.Idx >= M.Globals.size())
      return Error("exported global index out of range");
  }
  if (M.Memory) {
    constexpr uint32_t SpecMaxPages = 1u << 16; // 4 GiB of 64 KiB pages.
    uint32_t Min = M.Memory->first;
    if (Min > SpecMaxPages)
      return Error("memory min exceeds 65536 pages");
    if (M.Memory->second) {
      if (*M.Memory->second > SpecMaxPages)
        return Error("memory max exceeds 65536 pages");
      if (*M.Memory->second < Min)
        return Error("memory min exceeds max");
    }
  }
  for (size_t GI = 0; GI < M.Globals.size(); ++GI)
    if (Status S = validateGlobalInit(M, GI); !S)
      return S;

  for (size_t FI = 0; FI < M.Funcs.size(); ++FI) {
    const WFunc &F = M.Funcs[FI];
    if (F.TypeIdx >= M.Types.size())
      return Error("function type index out of range");
    const FuncType &FT = M.Types[F.TypeIdx];
    std::vector<ValType> Locals = FT.Params;
    Locals.insert(Locals.end(), F.Locals.begin(), F.Locals.end());
    FuncValidator V(M, std::move(Locals), FT.Results, MaxOperandDepth);
    if (Status S = V.run(F.Body); !S)
      return Error("in function " +
                   std::to_string(FI + M.ImportFuncs.size()) + ": " +
                   S.error().message());
  }
  // Checked after function types so funcType() below indexes safely.
  if (M.Start) {
    if (*M.Start >= M.numFuncs())
      return Error("start function index out of range");
    const FuncType &FT = M.funcType(*M.Start);
    if (!FT.Params.empty() || !FT.Results.empty())
      return Error("start function must have type [] -> []");
  }
  return Status::success();
}
