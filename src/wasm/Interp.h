//===- wasm/Interp.h - Wasm interpreter and embedder API --------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree-walking WebAssembly interpreter with an embedder (host) API:
/// host functions satisfy imports, and the host can read/write the
/// instance's flat memory — which is how the RichWasm runtime's
/// host-assisted garbage collector works (DESIGN.md §3). The interpreter
/// counts executed instructions, which the C1 capability-erasure benchmark
/// uses to show that capability bookkeeping compiles to *zero* instructions.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_WASM_INTERP_H
#define RICHWASM_WASM_INTERP_H

#include "support/Error.h"
#include "wasm/WasmAst.h"

#include <functional>
#include <map>

namespace rw::wasm {

/// A runtime value: a type tag plus raw bits.
struct WValue {
  ValType T = ValType::I32;
  uint64_t Bits = 0;

  static WValue i32(uint32_t V) { return {ValType::I32, V}; }
  static WValue i64(uint64_t V) { return {ValType::I64, V}; }
  uint32_t asU32() const { return static_cast<uint32_t>(Bits); }
};

class WasmInstance;

/// A host function: receives the instance (for memory access) and the
/// arguments; returns results or a trap.
using HostFn = std::function<Expected<std::vector<WValue>>(
    WasmInstance &, const std::vector<WValue> &)>;

/// An instantiated Wasm module.
class WasmInstance {
public:
  explicit WasmInstance(const WModule &M) : M(&M) {}

  /// Registers a host function for import Mod.Name. Must be called for
  /// every import before initialize().
  void registerHost(const std::string &Mod, const std::string &Name,
                    HostFn Fn) {
    Hosts[{Mod, Name}] = std::move(Fn);
  }

  /// Allocates memory, evaluates global initializers, fills the table,
  /// copies data segments, and runs the start function.
  Status initialize();

  Expected<std::vector<WValue>> invoke(uint32_t FuncIdx,
                                       std::vector<WValue> Args,
                                       uint64_t MaxFuel = 1'000'000'000);
  Expected<std::vector<WValue>> invokeByName(const std::string &Name,
                                             std::vector<WValue> Args,
                                             uint64_t MaxFuel = 1'000'000'000);

  std::vector<uint8_t> &memory() { return Mem; }
  const std::vector<uint8_t> &memory() const { return Mem; }
  uint32_t load32(uint32_t Addr) const;
  void store32(uint32_t Addr, uint32_t V);

  WValue global(uint32_t I) const { return Globals[I]; }
  void setGlobal(uint32_t I, WValue V) { Globals[I] = V; }
  const WModule &module() const { return *M; }

  /// Executed-instruction counter (all functions, cumulative).
  uint64_t instrCount() const { return Executed; }
  void resetInstrCount() { Executed = 0; }

  std::optional<uint32_t> findExport(const std::string &Name,
                                     ExportKind Kind) const;

private:
  enum class Exec : uint8_t { Normal, Branch, Ret, Trap };

  struct Frame {
    std::vector<WValue> Locals;
  };

  Exec execSeq(const std::vector<WInst> &Body, Frame &F, uint32_t &BrDepth);
  Exec execInst(const WInst &I, Frame &F, uint32_t &BrDepth);
  Exec execNumeric(const WInst &I);
  Exec execMemory(const WInst &I);
  Exec callFunction(uint32_t FuncIdx);
  Exec trap(const char *Msg) {
    TrapMsg = Msg;
    return Exec::Trap;
  }

  const WModule *M;
  std::vector<uint8_t> Mem;
  std::vector<WValue> Globals;
  std::vector<uint32_t> Table;
  std::map<std::pair<std::string, std::string>, HostFn> Hosts;
  std::vector<WValue> Stack;
  uint64_t Fuel = 0;
  uint64_t Executed = 0;
  std::string TrapMsg;
  unsigned CallDepth = 0;
};

} // namespace rw::wasm

#endif // RICHWASM_WASM_INTERP_H
