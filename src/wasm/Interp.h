//===- wasm/Interp.h - Tree-walking Wasm engine -----------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tree-walking WebAssembly engine (EngineKind::Tree): a direct
/// interpreter over the structured WInst AST. It implements the shared
/// embedder surface in wasm/Instance.h — host functions satisfy imports,
/// and the host can read/write the instance's flat memory, which is how
/// the RichWasm runtime's host-assisted garbage collector works
/// (DESIGN.md §3). The interpreter counts executed instructions, which
/// the C1 capability-erasure benchmark uses to show that capability
/// bookkeeping compiles to *zero* instructions.
///
/// This engine is the semantic reference; the flat-bytecode engine in
/// exec/Engine.h is differentially tested against it (DESIGN.md §5).
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_WASM_INTERP_H
#define RICHWASM_WASM_INTERP_H

#include "support/Error.h"
#include "wasm/Instance.h"
#include "wasm/WasmAst.h"

#include <optional>

namespace rw::wasm {

/// An instantiated Wasm module executed by walking the instruction tree.
class WasmInstance : public Instance {
public:
  explicit WasmInstance(const WModule &M) : Instance(M) {}

  Expected<std::vector<WValue>>
  invoke(uint32_t FuncIdx, std::vector<WValue> Args,
         uint64_t MaxFuel = 1'000'000'000) override;

  EngineKind engine() const override { return EngineKind::Tree; }

private:
  enum class Exec : uint8_t { Normal, Branch, Ret, Trap };

  struct Frame {
    std::vector<WValue> Locals;
    uint32_t FuncIdx = 0; ///< Function-space index, for profile bumps.
  };

  Exec execSeq(const std::vector<WInst> &Body, Frame &F, uint32_t &BrDepth);
  Exec execInst(const WInst &I, Frame &F, uint32_t &BrDepth);
  Exec execNumeric(const WInst &I);
  Exec execMemory(const WInst &I);
  /// callFunctionImpl plus trap attribution: the innermost function that
  /// originated a trap claims it (TrapFunc is set once, on the way out).
  Exec callFunction(uint32_t FuncIdx);
  Exec callFunctionImpl(uint32_t FuncIdx);
  Exec trap(const char *Msg) {
    TrapMsg = Msg;
    return Exec::Trap;
  }

  std::vector<WValue> Stack;
  uint64_t Fuel = 0;
  std::string TrapMsg;
  std::optional<uint32_t> TrapFunc;
  unsigned CallDepth = 0;
};

} // namespace rw::wasm

#endif // RICHWASM_WASM_INTERP_H
