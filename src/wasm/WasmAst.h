//===- wasm/WasmAst.h - WebAssembly 1.0 (+multi-value) AST ------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The WebAssembly substrate RichWasm compiles to (§6): an AST for Wasm 1.0
/// with the multi-value extension, shared by the validator, interpreter,
/// binary encoder/decoder, and text printer. Opcode enumerators carry their
/// binary encodings so the codec is table-free.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_WASM_WASMAST_H
#define RICHWASM_WASM_WASMAST_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rw::wasm {

enum class ValType : uint8_t { I32 = 0x7f, I64 = 0x7e, F32 = 0x7d, F64 = 0x7c };

inline const char *valTypeName(ValType T) {
  switch (T) {
  case ValType::I32:
    return "i32";
  case ValType::I64:
    return "i64";
  case ValType::F32:
    return "f32";
  case ValType::F64:
    return "f64";
  }
  return "?";
}

struct FuncType {
  std::vector<ValType> Params, Results;
  bool operator==(const FuncType &O) const {
    return Params == O.Params && Results == O.Results;
  }
};

/// Opcodes, valued as their binary encodings (Wasm 1.0 MVP).
enum class Op : uint8_t {
  Unreachable = 0x00,
  Nop = 0x01,
  Block = 0x02,
  Loop = 0x03,
  If = 0x04,
  Br = 0x0c,
  BrIf = 0x0d,
  BrTable = 0x0e,
  Return = 0x0f,
  Call = 0x10,
  CallIndirect = 0x11,
  Drop = 0x1a,
  Select = 0x1b,
  LocalGet = 0x20,
  LocalSet = 0x21,
  LocalTee = 0x22,
  GlobalGet = 0x23,
  GlobalSet = 0x24,
  I32Load = 0x28,
  I64Load = 0x29,
  F32Load = 0x2a,
  F64Load = 0x2b,
  I32Load8S = 0x2c,
  I32Load8U = 0x2d,
  I32Load16S = 0x2e,
  I32Load16U = 0x2f,
  I64Load8S = 0x30,
  I64Load8U = 0x31,
  I64Load16S = 0x32,
  I64Load16U = 0x33,
  I64Load32S = 0x34,
  I64Load32U = 0x35,
  I32Store = 0x36,
  I64Store = 0x37,
  F32Store = 0x38,
  F64Store = 0x39,
  I32Store8 = 0x3a,
  I32Store16 = 0x3b,
  I64Store8 = 0x3c,
  I64Store16 = 0x3d,
  I64Store32 = 0x3e,
  MemorySize = 0x3f,
  MemoryGrow = 0x40,
  I32Const = 0x41,
  I64Const = 0x42,
  F32Const = 0x43,
  F64Const = 0x44,
  I32Eqz = 0x45,
  I32Eq = 0x46,
  I32Ne = 0x47,
  I32LtS = 0x48,
  I32LtU = 0x49,
  I32GtS = 0x4a,
  I32GtU = 0x4b,
  I32LeS = 0x4c,
  I32LeU = 0x4d,
  I32GeS = 0x4e,
  I32GeU = 0x4f,
  I64Eqz = 0x50,
  I64Eq = 0x51,
  I64Ne = 0x52,
  I64LtS = 0x53,
  I64LtU = 0x54,
  I64GtS = 0x55,
  I64GtU = 0x56,
  I64LeS = 0x57,
  I64LeU = 0x58,
  I64GeS = 0x59,
  I64GeU = 0x5a,
  F32Eq = 0x5b,
  F32Ne = 0x5c,
  F32Lt = 0x5d,
  F32Gt = 0x5e,
  F32Le = 0x5f,
  F32Ge = 0x60,
  F64Eq = 0x61,
  F64Ne = 0x62,
  F64Lt = 0x63,
  F64Gt = 0x64,
  F64Le = 0x65,
  F64Ge = 0x66,
  I32Clz = 0x67,
  I32Ctz = 0x68,
  I32Popcnt = 0x69,
  I32Add = 0x6a,
  I32Sub = 0x6b,
  I32Mul = 0x6c,
  I32DivS = 0x6d,
  I32DivU = 0x6e,
  I32RemS = 0x6f,
  I32RemU = 0x70,
  I32And = 0x71,
  I32Or = 0x72,
  I32Xor = 0x73,
  I32Shl = 0x74,
  I32ShrS = 0x75,
  I32ShrU = 0x76,
  I32Rotl = 0x77,
  I32Rotr = 0x78,
  I64Clz = 0x79,
  I64Ctz = 0x7a,
  I64Popcnt = 0x7b,
  I64Add = 0x7c,
  I64Sub = 0x7d,
  I64Mul = 0x7e,
  I64DivS = 0x7f,
  I64DivU = 0x80,
  I64RemS = 0x81,
  I64RemU = 0x82,
  I64And = 0x83,
  I64Or = 0x84,
  I64Xor = 0x85,
  I64Shl = 0x86,
  I64ShrS = 0x87,
  I64ShrU = 0x88,
  I64Rotl = 0x89,
  I64Rotr = 0x8a,
  F32Abs = 0x8b,
  F32Neg = 0x8c,
  F32Ceil = 0x8d,
  F32Floor = 0x8e,
  F32Trunc = 0x8f,
  F32Nearest = 0x90,
  F32Sqrt = 0x91,
  F32Add = 0x92,
  F32Sub = 0x93,
  F32Mul = 0x94,
  F32Div = 0x95,
  F32Min = 0x96,
  F32Max = 0x97,
  F32Copysign = 0x98,
  F64Abs = 0x99,
  F64Neg = 0x9a,
  F64Ceil = 0x9b,
  F64Floor = 0x9c,
  F64Trunc = 0x9d,
  F64Nearest = 0x9e,
  F64Sqrt = 0x9f,
  F64Add = 0xa0,
  F64Sub = 0xa1,
  F64Mul = 0xa2,
  F64Div = 0xa3,
  F64Min = 0xa4,
  F64Max = 0xa5,
  F64Copysign = 0xa6,
  I32WrapI64 = 0xa7,
  I32TruncF32S = 0xa8,
  I32TruncF32U = 0xa9,
  I32TruncF64S = 0xaa,
  I32TruncF64U = 0xab,
  I64ExtendI32S = 0xac,
  I64ExtendI32U = 0xad,
  I64TruncF32S = 0xae,
  I64TruncF32U = 0xaf,
  I64TruncF64S = 0xb0,
  I64TruncF64U = 0xb1,
  F32ConvertI32S = 0xb2,
  F32ConvertI32U = 0xb3,
  F32ConvertI64S = 0xb4,
  F32ConvertI64U = 0xb5,
  F32DemoteF64 = 0xb6,
  F64ConvertI32S = 0xb7,
  F64ConvertI32U = 0xb8,
  F64ConvertI64S = 0xb9,
  F64ConvertI64U = 0xba,
  F64PromoteF32 = 0xbb,
  I32ReinterpretF32 = 0xbc,
  I64ReinterpretF64 = 0xbd,
  F32ReinterpretI32 = 0xbe,
  F64ReinterpretI64 = 0xbf,
};

/// One instruction. Structured instructions (block/loop/if) carry nested
/// bodies; the codec linearizes them with end/else markers.
struct WInst {
  Op K = Op::Nop;
  uint32_t U32 = 0;    ///< Index immediate (local/global/func/type/label).
  uint64_t U64 = 0;    ///< Constant bits.
  uint32_t Align = 0;  ///< Memarg alignment exponent.
  uint32_t Offset = 0; ///< Memarg offset.
  FuncType BT;         ///< Block type (multi-value allowed).
  std::vector<uint32_t> Table; ///< br_table targets.
  std::vector<WInst> Body, Else;

  WInst() = default;
  explicit WInst(Op K) : K(K) {}
  static WInst mk(Op K) { return WInst(K); }
  static WInst idx(Op K, uint32_t I) {
    WInst W(K);
    W.U32 = I;
    return W;
  }
  static WInst i32c(int32_t V) {
    WInst W(Op::I32Const);
    W.U64 = static_cast<uint32_t>(V);
    return W;
  }
  static WInst i64c(int64_t V) {
    WInst W(Op::I64Const);
    W.U64 = static_cast<uint64_t>(V);
    return W;
  }
  static WInst mem(Op K, uint32_t Align, uint32_t Offset) {
    WInst W(K);
    W.Align = Align;
    W.Offset = Offset;
    return W;
  }
  static WInst block(FuncType BT, std::vector<WInst> Body) {
    WInst W(Op::Block);
    W.BT = std::move(BT);
    W.Body = std::move(Body);
    return W;
  }
  static WInst loop(FuncType BT, std::vector<WInst> Body) {
    WInst W(Op::Loop);
    W.BT = std::move(BT);
    W.Body = std::move(Body);
    return W;
  }
  static WInst ifElse(FuncType BT, std::vector<WInst> Then,
                      std::vector<WInst> Else) {
    WInst W(Op::If);
    W.BT = std::move(BT);
    W.Body = std::move(Then);
    W.Else = std::move(Else);
    return W;
  }
  static WInst brTable(std::vector<uint32_t> Targets, uint32_t Default) {
    WInst W(Op::BrTable);
    W.Table = std::move(Targets);
    W.U32 = Default;
    return W;
  }
};

enum class ExportKind : uint8_t { Func = 0, Table = 1, Memory = 2, Global = 3 };

struct WImportFunc {
  std::string Mod, Name;
  uint32_t TypeIdx = 0;
};

struct WFunc {
  uint32_t TypeIdx = 0;
  std::vector<ValType> Locals; ///< Beyond the parameters.
  std::vector<WInst> Body;
};

struct WGlobal {
  ValType T = ValType::I32;
  bool Mut = false;
  std::vector<WInst> Init;
};

struct WExport {
  std::string Name;
  ExportKind Kind = ExportKind::Func;
  uint32_t Idx = 0;
};

struct WData {
  uint32_t Offset = 0;
  std::vector<uint8_t> Bytes;
};

/// A Wasm module. Function index space = imports then defined functions.
struct WModule {
  std::vector<FuncType> Types;
  std::vector<WImportFunc> ImportFuncs;
  std::vector<WFunc> Funcs;
  /// Memory limits in 64KiB pages (min, optional max); nullopt = no memory.
  std::optional<std::pair<uint32_t, std::optional<uint32_t>>> Memory;
  /// Function table (funcref), elements at offset 0.
  std::vector<uint32_t> TableElems;
  std::vector<WGlobal> Globals;
  std::vector<WExport> Exports;
  std::vector<WData> Data;
  std::optional<uint32_t> Start;

  uint32_t addType(FuncType FT) {
    for (uint32_t I = 0; I < Types.size(); ++I)
      if (Types[I] == FT)
        return I;
    Types.push_back(std::move(FT));
    return static_cast<uint32_t>(Types.size() - 1);
  }
  uint32_t numFuncs() const {
    return static_cast<uint32_t>(ImportFuncs.size() + Funcs.size());
  }
  /// The type of function index I (import space first).
  const FuncType &funcType(uint32_t I) const {
    if (I < ImportFuncs.size())
      return Types[ImportFuncs[I].TypeIdx];
    return Types[Funcs[I - ImportFuncs.size()].TypeIdx];
  }
};

} // namespace rw::wasm

#endif // RICHWASM_WASM_WASMAST_H
