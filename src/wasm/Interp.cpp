//===- wasm/Interp.cpp - Wasm interpreter ----------------------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "wasm/Interp.h"

#include "support/NumericOps.h"

#include <cassert>
#include <cstring>

using namespace rw;
using namespace rw::wasm;

Expected<std::vector<WValue>> WasmInstance::invoke(uint32_t FuncIdx,
                                                   std::vector<WValue> Args,
                                                   uint64_t MaxFuel) {
  Fuel = MaxFuel;
  Stack.clear();
  CallDepth = 0;
  TrapFunc.reset();
  for (const WValue &A : Args)
    Stack.push_back(A);
  Exec R = callFunction(FuncIdx);
  if (R == Exec::Trap)
    return Error("trap: " + TrapMsg +
                 trapNote(TrapFunc ? *TrapFunc : FuncIdx));
  const FuncType &FT = M->funcType(FuncIdx);
  if (Stack.size() < FT.Results.size())
    return Error("function left too few results");
  std::vector<WValue> Out(Stack.end() - FT.Results.size(), Stack.end());
  Stack.clear();
  return Out;
}

WasmInstance::Exec WasmInstance::callFunction(uint32_t FuncIdx) {
  Exec R = callFunctionImpl(FuncIdx);
  // Innermost frame wins: a trap that bubbled through outer frames keeps
  // its original attribution. "call stack exhausted" lands here too, on
  // the callee that failed to get a frame — same as the flat engine.
  if (R == Exec::Trap && !TrapFunc)
    TrapFunc = FuncIdx;
  return R;
}

WasmInstance::Exec WasmInstance::callFunctionImpl(uint32_t FuncIdx) {
  if (++CallDepth > MaxCallDepth) {
    --CallDepth;
    return trap("call stack exhausted");
  }
  const FuncType &FT = M->funcType(FuncIdx);
  if (FuncIdx < M->ImportFuncs.size()) {
    const HostFn *H = hostFor(FuncIdx);
    if (!H) {
      --CallDepth;
      return trap("unsatisfied import");
    }
    if (Stack.size() < FT.Params.size()) {
      --CallDepth;
      return trap("host call stack underflow");
    }
    std::vector<WValue> Args(Stack.end() - FT.Params.size(), Stack.end());
    Stack.resize(Stack.size() - FT.Params.size());
    // Bump only once the call will actually enter the host — after the
    // import resolved and the arguments were available (the flat engine
    // counts at the same point).
    if (ProfileOn)
      ++Prof[FuncIdx].Invocations;
    Expected<std::vector<WValue>> R = (*H)(*this, Args);
    --CallDepth;
    if (!R) {
      TrapMsg = R.error().message();
      return Exec::Trap;
    }
    for (const WValue &V : *R)
      Stack.push_back(V);
    return Exec::Normal;
  }

  const WFunc &F = M->Funcs[FuncIdx - M->ImportFuncs.size()];
  Frame Fr;
  if (Stack.size() < FT.Params.size()) {
    --CallDepth;
    return trap("call stack underflow");
  }
  Fr.Locals.assign(Stack.end() - FT.Params.size(), Stack.end());
  Stack.resize(Stack.size() - FT.Params.size());
  size_t Base = Stack.size();
  for (ValType T : F.Locals)
    Fr.Locals.push_back({T, 0});
  Fr.FuncIdx = FuncIdx;
  if (ProfileOn)
    ++Prof[FuncIdx].Invocations;

  uint32_t BrDepth = 0;
  Exec R = execSeq(F.Body, Fr, BrDepth);
  --CallDepth;
  if (R == Exec::Trap)
    return R;
  if (R == Exec::Branch)
    return trap("branch escaped function body");
  // Keep exactly the results above the caller's stack base.
  if (Stack.size() < Base + FT.Results.size())
    return trap("function body left too few results");
  std::vector<WValue> Res(Stack.end() - FT.Results.size(), Stack.end());
  Stack.resize(Base);
  for (const WValue &V : Res)
    Stack.push_back(V);
  return Exec::Normal;
}

WasmInstance::Exec WasmInstance::execSeq(const std::vector<WInst> &Body,
                                         Frame &F, uint32_t &BrDepth) {
  for (const WInst &I : Body) {
    if (Fuel == 0)
      return trap("fuel exhausted");
    --Fuel;
    ++Executed;
    Exec R = execInst(I, F, BrDepth);
    if (R != Exec::Normal)
      return R;
  }
  return Exec::Normal;
}

WasmInstance::Exec WasmInstance::execInst(const WInst &I, Frame &F,
                                          uint32_t &BrDepth) {
  switch (I.K) {
  case Op::Unreachable:
    return trap("unreachable executed");
  case Op::Nop:
    return Exec::Normal;

  case Op::Block: {
    size_t Base = Stack.size() - I.BT.Params.size();
    Exec R = execSeq(I.Body, F, BrDepth);
    if (R == Exec::Branch) {
      if (BrDepth > 0) {
        --BrDepth;
        return Exec::Branch;
      }
      // Branch to this block: keep the top |results| values above Base.
      std::vector<WValue> Keep(Stack.end() - I.BT.Results.size(),
                               Stack.end());
      Stack.resize(Base);
      for (const WValue &V : Keep)
        Stack.push_back(V);
      return Exec::Normal;
    }
    return R;
  }
  case Op::Loop: {
    for (;;) {
      // Loop-header execution: counts the fall-in entry plus every
      // back-branch, matching the flat engine's FProfLoop at the branch
      // target.
      if (ProfileOn)
        ++Prof[F.FuncIdx].LoopHeads;
      size_t Base = Stack.size() - I.BT.Params.size();
      Exec R = execSeq(I.Body, F, BrDepth);
      if (R == Exec::Branch) {
        if (BrDepth > 0) {
          --BrDepth;
          return Exec::Branch;
        }
        // Branch to the loop: keep |params| values and iterate again.
        std::vector<WValue> Keep(Stack.end() - I.BT.Params.size(),
                                 Stack.end());
        Stack.resize(Base);
        for (const WValue &V : Keep)
          Stack.push_back(V);
        continue;
      }
      return R;
    }
  }
  case Op::If: {
    if (Stack.empty())
      return trap("if: stack underflow");
    uint32_t Cond = Stack.back().asU32();
    Stack.pop_back();
    size_t Base = Stack.size() - I.BT.Params.size();
    Exec R = execSeq(Cond ? I.Body : I.Else, F, BrDepth);
    if (R == Exec::Branch) {
      if (BrDepth > 0) {
        --BrDepth;
        return Exec::Branch;
      }
      std::vector<WValue> Keep(Stack.end() - I.BT.Results.size(),
                               Stack.end());
      Stack.resize(Base);
      for (const WValue &V : Keep)
        Stack.push_back(V);
      return Exec::Normal;
    }
    return R;
  }
  case Op::Br:
    BrDepth = I.U32;
    return Exec::Branch;
  case Op::BrIf: {
    if (Stack.empty())
      return trap("br_if: stack underflow");
    uint32_t Cond = Stack.back().asU32();
    Stack.pop_back();
    if (!Cond)
      return Exec::Normal;
    BrDepth = I.U32;
    return Exec::Branch;
  }
  case Op::BrTable: {
    if (Stack.empty())
      return trap("br_table: stack underflow");
    uint32_t Idx = Stack.back().asU32();
    Stack.pop_back();
    BrDepth = Idx < I.Table.size() ? I.Table[Idx] : I.U32;
    return Exec::Branch;
  }
  case Op::Return:
    return Exec::Ret;
  case Op::Call:
    return callFunction(I.U32);
  case Op::CallIndirect: {
    if (Stack.empty())
      return trap("call_indirect: stack underflow");
    uint32_t Idx = Stack.back().asU32();
    Stack.pop_back();
    if (Idx >= Table.size())
      return trap("call_indirect: table index out of bounds");
    uint32_t FuncIdx = Table[Idx];
    if (!(M->funcType(FuncIdx) == M->Types[I.U32]))
      return trap("call_indirect: signature mismatch");
    return callFunction(FuncIdx);
  }

  case Op::Drop:
    if (Stack.empty())
      return trap("drop: stack underflow");
    Stack.pop_back();
    return Exec::Normal;
  case Op::Select: {
    if (Stack.size() < 3)
      return trap("select: stack underflow");
    uint32_t Cond = Stack.back().asU32();
    Stack.pop_back();
    WValue B = Stack.back();
    Stack.pop_back();
    WValue A = Stack.back();
    Stack.pop_back();
    Stack.push_back(Cond ? A : B);
    return Exec::Normal;
  }

  case Op::LocalGet:
    Stack.push_back(F.Locals[I.U32]);
    return Exec::Normal;
  case Op::LocalSet:
    F.Locals[I.U32] = Stack.back();
    Stack.pop_back();
    return Exec::Normal;
  case Op::LocalTee:
    F.Locals[I.U32] = Stack.back();
    return Exec::Normal;
  case Op::GlobalGet:
    Stack.push_back(Globals[I.U32]);
    return Exec::Normal;
  case Op::GlobalSet:
    Globals[I.U32] = Stack.back();
    Stack.pop_back();
    return Exec::Normal;

  case Op::MemorySize:
    Stack.push_back(WValue::i32(static_cast<uint32_t>(Mem.size() / PageSize)));
    return Exec::Normal;
  case Op::MemoryGrow: {
    uint32_t Delta = Stack.back().asU32();
    Stack.pop_back();
    uint64_t OldPages = Mem.size() / PageSize;
    uint64_t NewPages = OldPages + Delta;
    uint64_t MaxPages =
        M->Memory && M->Memory->second ? *M->Memory->second : 65536;
    if (NewPages > MaxPages) {
      Stack.push_back(WValue::i32(0xffffffffu));
    } else {
      Mem.resize(NewPages * PageSize, 0);
      Stack.push_back(WValue::i32(static_cast<uint32_t>(OldPages)));
    }
    return Exec::Normal;
  }

  case Op::I32Const:
    Stack.push_back({ValType::I32, I.U64 & 0xffffffffu});
    return Exec::Normal;
  case Op::I64Const:
    Stack.push_back({ValType::I64, I.U64});
    return Exec::Normal;
  case Op::F32Const:
    Stack.push_back({ValType::F32, I.U64 & 0xffffffffu});
    return Exec::Normal;
  case Op::F64Const:
    Stack.push_back({ValType::F64, I.U64});
    return Exec::Normal;

  default:
    if (static_cast<uint8_t>(I.K) >= 0x28 && static_cast<uint8_t>(I.K) <= 0x3e)
      return execMemory(I);
    return execNumeric(I);
  }
}

//===----------------------------------------------------------------------===//
// Memory access
//===----------------------------------------------------------------------===//

WasmInstance::Exec WasmInstance::execMemory(const WInst &I) {
  uint8_t C = static_cast<uint8_t>(I.K);
  bool IsStore = C >= 0x36;
  WValue StoreVal{};
  if (IsStore) {
    StoreVal = Stack.back();
    Stack.pop_back();
  }
  uint64_t Addr = Stack.back().asU32() + static_cast<uint64_t>(I.Offset);
  Stack.pop_back();

  auto InBounds = [&](unsigned N) { return Addr + N <= Mem.size(); };
  auto LoadN = [&](unsigned N) {
    uint64_t V = 0;
    std::memcpy(&V, Mem.data() + Addr, N);
    return V;
  };
  auto StoreN = [&](unsigned N, uint64_t V) {
    std::memcpy(Mem.data() + Addr, &V, N);
  };
  auto SignExtend = [](uint64_t V, unsigned Bits) {
    uint64_t Mask = 1ull << (Bits - 1);
    return (V ^ Mask) - Mask;
  };

  switch (I.K) {
  case Op::I32Load:
    if (!InBounds(4))
      return trap("out-of-bounds memory access");
    Stack.push_back({ValType::I32, LoadN(4)});
    return Exec::Normal;
  case Op::I64Load:
    if (!InBounds(8))
      return trap("out-of-bounds memory access");
    Stack.push_back({ValType::I64, LoadN(8)});
    return Exec::Normal;
  case Op::F32Load:
    if (!InBounds(4))
      return trap("out-of-bounds memory access");
    Stack.push_back({ValType::F32, LoadN(4)});
    return Exec::Normal;
  case Op::F64Load:
    if (!InBounds(8))
      return trap("out-of-bounds memory access");
    Stack.push_back({ValType::F64, LoadN(8)});
    return Exec::Normal;
  case Op::I32Load8S:
    if (!InBounds(1))
      return trap("out-of-bounds memory access");
    Stack.push_back({ValType::I32, SignExtend(LoadN(1), 8) & 0xffffffffu});
    return Exec::Normal;
  case Op::I32Load8U:
    if (!InBounds(1))
      return trap("out-of-bounds memory access");
    Stack.push_back({ValType::I32, LoadN(1)});
    return Exec::Normal;
  case Op::I32Load16S:
    if (!InBounds(2))
      return trap("out-of-bounds memory access");
    Stack.push_back({ValType::I32, SignExtend(LoadN(2), 16) & 0xffffffffu});
    return Exec::Normal;
  case Op::I32Load16U:
    if (!InBounds(2))
      return trap("out-of-bounds memory access");
    Stack.push_back({ValType::I32, LoadN(2)});
    return Exec::Normal;
  case Op::I64Load8S:
    if (!InBounds(1))
      return trap("out-of-bounds memory access");
    Stack.push_back({ValType::I64, SignExtend(LoadN(1), 8)});
    return Exec::Normal;
  case Op::I64Load8U:
    if (!InBounds(1))
      return trap("out-of-bounds memory access");
    Stack.push_back({ValType::I64, LoadN(1)});
    return Exec::Normal;
  case Op::I64Load16S:
    if (!InBounds(2))
      return trap("out-of-bounds memory access");
    Stack.push_back({ValType::I64, SignExtend(LoadN(2), 16)});
    return Exec::Normal;
  case Op::I64Load16U:
    if (!InBounds(2))
      return trap("out-of-bounds memory access");
    Stack.push_back({ValType::I64, LoadN(2)});
    return Exec::Normal;
  case Op::I64Load32S:
    if (!InBounds(4))
      return trap("out-of-bounds memory access");
    Stack.push_back({ValType::I64, SignExtend(LoadN(4), 32)});
    return Exec::Normal;
  case Op::I64Load32U:
    if (!InBounds(4))
      return trap("out-of-bounds memory access");
    Stack.push_back({ValType::I64, LoadN(4)});
    return Exec::Normal;
  case Op::I32Store:
  case Op::F32Store:
    if (!InBounds(4))
      return trap("out-of-bounds memory access");
    StoreN(4, StoreVal.Bits);
    return Exec::Normal;
  case Op::I64Store:
  case Op::F64Store:
    if (!InBounds(8))
      return trap("out-of-bounds memory access");
    StoreN(8, StoreVal.Bits);
    return Exec::Normal;
  case Op::I32Store8:
  case Op::I64Store8:
    if (!InBounds(1))
      return trap("out-of-bounds memory access");
    StoreN(1, StoreVal.Bits);
    return Exec::Normal;
  case Op::I32Store16:
  case Op::I64Store16:
    if (!InBounds(2))
      return trap("out-of-bounds memory access");
    StoreN(2, StoreVal.Bits);
    return Exec::Normal;
  case Op::I64Store32:
    if (!InBounds(4))
      return trap("out-of-bounds memory access");
    StoreN(4, StoreVal.Bits);
    return Exec::Normal;
  default:
    return trap("bad memory opcode");
  }
}

//===----------------------------------------------------------------------===//
// Numerics
//===----------------------------------------------------------------------===//

WasmInstance::Exec WasmInstance::execNumeric(const WInst &I) {
  using namespace rw::num;
  uint8_t C = static_cast<uint8_t>(I.K);

  auto Pop = [&]() {
    WValue V = Stack.back();
    Stack.pop_back();
    return V;
  };
  auto PushI32 = [&](uint64_t V) {
    Stack.push_back({ValType::I32, V & 0xffffffffu});
  };

  // Test / comparison operators.
  if (C == 0x45) { // i32.eqz
    PushI32(Pop().asU32() == 0 ? 1 : 0);
    return Exec::Normal;
  }
  if (C == 0x50) { // i64.eqz
    PushI32(Pop().Bits == 0 ? 1 : 0);
    return Exec::Normal;
  }
  if (C >= 0x46 && C <= 0x4f) { // i32 relops
    WValue B = Pop(), A = Pop();
    static const IntRelop Map[] = {IntRelop::Eq, IntRelop::Ne, IntRelop::Lt,
                                   IntRelop::Lt, IntRelop::Gt, IntRelop::Gt,
                                   IntRelop::Le, IntRelop::Le, IntRelop::Ge,
                                   IntRelop::Ge};
    static const bool Signed[] = {false, false, true, false, true,
                                  false, true,  false, true, false};
    unsigned Idx = C - 0x46;
    PushI32(evalIntRelop(Map[Idx], A.Bits, B.Bits, false, Signed[Idx]));
    return Exec::Normal;
  }
  if (C >= 0x51 && C <= 0x5a) { // i64 relops
    WValue B = Pop(), A = Pop();
    static const IntRelop Map[] = {IntRelop::Eq, IntRelop::Ne, IntRelop::Lt,
                                   IntRelop::Lt, IntRelop::Gt, IntRelop::Gt,
                                   IntRelop::Le, IntRelop::Le, IntRelop::Ge,
                                   IntRelop::Ge};
    static const bool Signed[] = {false, false, true, false, true,
                                  false, true,  false, true, false};
    unsigned Idx = C - 0x51;
    PushI32(evalIntRelop(Map[Idx], A.Bits, B.Bits, true, Signed[Idx]));
    return Exec::Normal;
  }
  if (C >= 0x5b && C <= 0x66) { // float relops
    WValue B = Pop(), A = Pop();
    bool Is64 = C >= 0x61;
    unsigned Idx = Is64 ? C - 0x61 : C - 0x5b;
    static const FloatRelop Map[] = {FloatRelop::Eq, FloatRelop::Ne,
                                     FloatRelop::Lt, FloatRelop::Gt,
                                     FloatRelop::Le, FloatRelop::Ge};
    PushI32(evalFloatRelop(Map[Idx], A.Bits, B.Bits, Is64));
    return Exec::Normal;
  }

  // Integer unary.
  if (C >= 0x67 && C <= 0x69) {
    WValue A = Pop();
    uint64_t R = C == 0x67   ? intClz(A.Bits, false)
                 : C == 0x68 ? intCtz(A.Bits, false)
                             : intPopcnt(A.Bits, false);
    PushI32(R);
    return Exec::Normal;
  }
  if (C >= 0x79 && C <= 0x7b) {
    WValue A = Pop();
    uint64_t R = C == 0x79   ? intClz(A.Bits, true)
                 : C == 0x7a ? intCtz(A.Bits, true)
                             : intPopcnt(A.Bits, true);
    Stack.push_back({ValType::I64, R});
    return Exec::Normal;
  }

  // Integer binary.
  if ((C >= 0x6a && C <= 0x78) || (C >= 0x7c && C <= 0x8a)) {
    bool Is64 = C >= 0x7c;
    unsigned Idx = Is64 ? C - 0x7c : C - 0x6a;
    static const IntBinop Map[] = {
        IntBinop::Add, IntBinop::Sub, IntBinop::Mul, IntBinop::Div,
        IntBinop::Div, IntBinop::Rem, IntBinop::Rem, IntBinop::And,
        IntBinop::Or,  IntBinop::Xor, IntBinop::Shl, IntBinop::Shr,
        IntBinop::Shr, IntBinop::Rotl, IntBinop::Rotr};
    static const bool Signed[] = {false, false, false, true,  false,
                                  true,  false, false, false, false,
                                  false, true,  false, false, false};
    WValue B = Pop(), A = Pop();
    std::optional<uint64_t> R =
        evalIntBinop(Map[Idx], A.Bits, B.Bits, Is64, Signed[Idx]);
    if (!R)
      return trap("integer divide error");
    Stack.push_back({Is64 ? ValType::I64 : ValType::I32,
                     Is64 ? *R : (*R & 0xffffffffu)});
    return Exec::Normal;
  }

  // Float unary.
  if ((C >= 0x8b && C <= 0x91) || (C >= 0x99 && C <= 0x9f)) {
    bool Is64 = C >= 0x99;
    unsigned Idx = Is64 ? C - 0x99 : C - 0x8b;
    static const FloatUnop Map[] = {FloatUnop::Abs,     FloatUnop::Neg,
                                    FloatUnop::Ceil,    FloatUnop::Floor,
                                    FloatUnop::Trunc,   FloatUnop::Nearest,
                                    FloatUnop::Sqrt};
    WValue A = Pop();
    Stack.push_back({Is64 ? ValType::F64 : ValType::F32,
                     evalFloatUnop(Map[Idx], A.Bits, Is64)});
    return Exec::Normal;
  }

  // Float binary.
  if ((C >= 0x92 && C <= 0x98) || (C >= 0xa0 && C <= 0xa6)) {
    bool Is64 = C >= 0xa0;
    unsigned Idx = Is64 ? C - 0xa0 : C - 0x92;
    static const FloatBinop Map[] = {FloatBinop::Add, FloatBinop::Sub,
                                     FloatBinop::Mul, FloatBinop::Div,
                                     FloatBinop::Min, FloatBinop::Max,
                                     FloatBinop::Copysign};
    WValue B = Pop(), A = Pop();
    Stack.push_back({Is64 ? ValType::F64 : ValType::F32,
                     evalFloatBinop(Map[Idx], A.Bits, B.Bits, Is64)});
    return Exec::Normal;
  }

  // Conversions.
  switch (I.K) {
  case Op::I32WrapI64:
    PushI32(Pop().Bits);
    return Exec::Normal;
  case Op::I64ExtendI32S: {
    WValue A = Pop();
    Stack.push_back(
        {ValType::I64,
         static_cast<uint64_t>(
             static_cast<int64_t>(static_cast<int32_t>(A.asU32())))});
    return Exec::Normal;
  }
  case Op::I64ExtendI32U:
    Stack.push_back({ValType::I64, Pop().asU32()});
    return Exec::Normal;
  case Op::I32TruncF32S:
  case Op::I32TruncF32U:
  case Op::I64TruncF32S:
  case Op::I64TruncF32U: {
    bool Dst64 = I.K == Op::I64TruncF32S || I.K == Op::I64TruncF32U;
    bool Sgn = I.K == Op::I32TruncF32S || I.K == Op::I64TruncF32S;
    std::optional<uint64_t> R = truncToInt(bitsToF32(Pop().Bits), Dst64, Sgn);
    if (!R)
      return trap("invalid conversion to integer");
    Stack.push_back({Dst64 ? ValType::I64 : ValType::I32, *R});
    return Exec::Normal;
  }
  case Op::I32TruncF64S:
  case Op::I32TruncF64U:
  case Op::I64TruncF64S:
  case Op::I64TruncF64U: {
    bool Dst64 = I.K == Op::I64TruncF64S || I.K == Op::I64TruncF64U;
    bool Sgn = I.K == Op::I32TruncF64S || I.K == Op::I64TruncF64S;
    std::optional<uint64_t> R = truncToInt(bitsToF64(Pop().Bits), Dst64, Sgn);
    if (!R)
      return trap("invalid conversion to integer");
    Stack.push_back({Dst64 ? ValType::I64 : ValType::I32, *R});
    return Exec::Normal;
  }
  case Op::F32ConvertI32S:
    Stack.push_back({ValType::F32, f32ToBits(static_cast<float>(
                                       static_cast<int32_t>(Pop().asU32())))});
    return Exec::Normal;
  case Op::F32ConvertI32U:
    Stack.push_back(
        {ValType::F32, f32ToBits(static_cast<float>(Pop().asU32()))});
    return Exec::Normal;
  case Op::F32ConvertI64S:
    Stack.push_back({ValType::F32, f32ToBits(static_cast<float>(
                                       static_cast<int64_t>(Pop().Bits)))});
    return Exec::Normal;
  case Op::F32ConvertI64U:
    Stack.push_back(
        {ValType::F32, f32ToBits(static_cast<float>(Pop().Bits))});
    return Exec::Normal;
  case Op::F64ConvertI32S:
    Stack.push_back({ValType::F64, f64ToBits(static_cast<double>(
                                       static_cast<int32_t>(Pop().asU32())))});
    return Exec::Normal;
  case Op::F64ConvertI32U:
    Stack.push_back(
        {ValType::F64, f64ToBits(static_cast<double>(Pop().asU32()))});
    return Exec::Normal;
  case Op::F64ConvertI64S:
    Stack.push_back({ValType::F64, f64ToBits(static_cast<double>(
                                       static_cast<int64_t>(Pop().Bits)))});
    return Exec::Normal;
  case Op::F64ConvertI64U:
    Stack.push_back(
        {ValType::F64, f64ToBits(static_cast<double>(Pop().Bits))});
    return Exec::Normal;
  case Op::F32DemoteF64:
    Stack.push_back({ValType::F32, f32ToBits(static_cast<float>(
                                       bitsToF64(Pop().Bits)))});
    return Exec::Normal;
  case Op::F64PromoteF32:
    Stack.push_back({ValType::F64, f64ToBits(static_cast<double>(
                                       bitsToF32(Pop().Bits)))});
    return Exec::Normal;
  case Op::I32ReinterpretF32:
    Stack.push_back({ValType::I32, Pop().Bits});
    return Exec::Normal;
  case Op::I64ReinterpretF64:
    Stack.push_back({ValType::I64, Pop().Bits});
    return Exec::Normal;
  case Op::F32ReinterpretI32:
    Stack.push_back({ValType::F32, Pop().Bits});
    return Exec::Normal;
  case Op::F64ReinterpretI64:
    Stack.push_back({ValType::F64, Pop().Bits});
    return Exec::Normal;
  default:
    return trap("unhandled opcode");
  }
}
