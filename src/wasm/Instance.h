//===- wasm/Instance.h - Shared embedder surface for Wasm engines -*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine-independent embedder (host) API for instantiated Wasm
/// modules (DESIGN.md §5). Two execution engines implement it:
///
///   * EngineKind::Tree — wasm::WasmInstance (wasm/Interp.h), a direct
///     tree-walking interpreter over the structured WInst AST;
///   * EngineKind::Flat — exec::FlatInstance (exec/Engine.h), which
///     translates the module once into a flat pre-resolved bytecode and
///     runs it with a tight dispatch loop.
///
/// Everything the RichWasm runtime needs from an instance lives here:
/// host functions satisfy imports, the host can read and write the flat
/// memory and the globals (which is how the host-assisted mark-sweep GC
/// in lower/Runtime.h works against either engine), and an
/// executed-instruction counter backs the C1 capability-erasure
/// measurement.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_WASM_INSTANCE_H
#define RICHWASM_WASM_INSTANCE_H

#include "support/Error.h"
#include "wasm/WasmAst.h"

#include <atomic>
#include <functional>
#include <map>
#include <memory>

namespace rw::wasm {

constexpr uint64_t PageSize = 65536;

/// Call-frame limit shared by both engines, so the "call stack
/// exhausted" trap fires at the same recursion depth everywhere.
constexpr unsigned MaxCallDepth = 2000;

/// A runtime value: a type tag plus raw bits.
struct WValue {
  ValType T = ValType::I32;
  uint64_t Bits = 0;

  static WValue i32(uint32_t V) { return {ValType::I32, V}; }
  static WValue i64(uint64_t V) { return {ValType::I64, V}; }
  uint32_t asU32() const { return static_cast<uint32_t>(Bits); }
};

class Instance;

/// A host function: receives the instance (for memory access) and the
/// arguments; returns results or a trap.
using HostFn = std::function<Expected<std::vector<WValue>>(
    Instance &, const std::vector<WValue> &)>;

/// Which execution engine backs an instance.
enum class EngineKind : uint8_t {
  Tree, ///< Tree-walking interpreter over the structured AST.
  Flat, ///< Flat-bytecode engine with pre-resolved control flow.
  Jit,  ///< Flat engine with the tier-3 native backend (eager tiering).
};

inline const char *engineKindName(EngineKind K) {
  return K == EngineKind::Tree   ? "tree"
         : K == EngineKind::Flat ? "flat"
                                 : "jit";
}

/// One saturating execution-profile counter. Only the executing thread
/// writes (the engines bump from their single run loop); the tier-up
/// controller may read concurrently from a background compile thread, so
/// reads and writes are relaxed atomics — a reader sees some recent
/// value, which is all a hotness heuristic needs. Bumps saturate at
/// UINT64_MAX instead of wrapping, so a long-lived server instance can
/// never wrap a counter back under a tier-up threshold.
class ProfileCounter {
public:
  ProfileCounter() = default;
  ProfileCounter(const ProfileCounter &O)
      : V(O.V.load(std::memory_order_relaxed)) {}
  ProfileCounter &operator=(const ProfileCounter &O) {
    V.store(O.V.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }
  ProfileCounter &operator=(uint64_t N) {
    V.store(N, std::memory_order_relaxed);
    return *this;
  }

  uint64_t load() const { return V.load(std::memory_order_relaxed); }
  operator uint64_t() const { return load(); }

  /// Saturating bump: a plain load/add/store pair (no RMW) — the single
  /// writer makes it race-free, and the hot interpreter path stays one
  /// unlocked add.
  void operator++() {
    uint64_t C = V.load(std::memory_order_relaxed);
    if (C != UINT64_MAX)
      V.store(C + 1, std::memory_order_relaxed);
  }

private:
  friend class Instance;
  std::atomic<uint64_t> V{0};
};

/// Execution-profile row for one function in function space (imports
/// first, then defined functions). This is the hotness signal the
/// tier-3 JIT consumes: Invocations ranks call-dominated functions,
/// LoopHeads ranks loop-dominated ones (it counts loop-header
/// executions, i.e. loop entries plus back-edges, identically in all
/// engines).
struct FunctionProfile {
  ProfileCounter Invocations;
  ProfileCounter LoopHeads;
};

// The JIT emits counter bumps as raw 8-byte loads/stores against this
// layout; keep it two plain words.
static_assert(sizeof(FunctionProfile) == 16 &&
                  sizeof(ProfileCounter) == 8 &&
                  std::atomic<uint64_t>::is_always_lock_free,
              "FunctionProfile must stay two lock-free 64-bit words");

/// An instantiated Wasm module, independent of the engine executing it.
/// Owns the instance state (memory, globals, table, host bindings); the
/// derived engine owns only its execution machinery.
class Instance {
public:
  explicit Instance(const WModule &M) : M(&M) {}
  virtual ~Instance();

  /// Registers a host function for import Mod.Name. Must be called for
  /// every import before initialize().
  void registerHost(const std::string &Mod, const std::string &Name,
                    HostFn Fn) {
    Hosts[{Mod, Name}] = std::move(Fn);
  }

  /// Allocates memory, evaluates global initializers, fills the table,
  /// copies data segments, prepares the engine, and (unless \p RunStart
  /// is false) runs the start function.
  Status initialize(bool RunStart = true);

  virtual Expected<std::vector<WValue>>
  invoke(uint32_t FuncIdx, std::vector<WValue> Args,
         uint64_t MaxFuel = 1'000'000'000) = 0;
  Expected<std::vector<WValue>> invokeByName(const std::string &Name,
                                             std::vector<WValue> Args,
                                             uint64_t MaxFuel = 1'000'000'000);

  /// The engine executing this instance.
  virtual EngineKind engine() const = 0;

  std::vector<uint8_t> &memory() { return Mem; }
  const std::vector<uint8_t> &memory() const { return Mem; }
  uint32_t load32(uint32_t Addr) const;
  void store32(uint32_t Addr, uint32_t V);

  WValue global(uint32_t I) const { return Globals[I]; }
  void setGlobal(uint32_t I, WValue V) { Globals[I] = V; }
  const WModule &module() const { return *M; }

  /// Executed-instruction counter (all functions, cumulative).
  uint64_t instrCount() const { return Executed; }
  void resetInstrCount() { Executed = 0; }

  std::optional<uint32_t> findExport(const std::string &Name,
                                     ExportKind Kind) const;

  /// Turns on per-function execution profiling (invocation + loop-head
  /// counters). Call before initialize(); the flat engine re-translates
  /// with profile bumps fused into the bytecode, so enabling later would
  /// miss an already-adopted translation. Registers the table as an obs
  /// snapshot source while the instance lives.
  void enableProfiling();
  bool profilingEnabled() const { return ProfileOn; }

  /// One row per function in function space (imports then defined);
  /// empty unless enableProfiling() was called.
  const std::vector<FunctionProfile> &functionProfiles() const {
    return Prof;
  }

  /// Zeroes every profile counter (relaxed stores; call when no invoke
  /// is running). Long-lived server instances reset periodically so the
  /// counters describe recent behavior and can re-trigger tiering after
  /// a workload shift. Already-compiled functions stay compiled.
  void resetProfiles() {
    for (FunctionProfile &P : Prof) {
      P.Invocations = 0;
      P.LoopHeads = 0;
    }
  }

protected:
  /// Engine hook run by initialize() after instance state exists but
  /// before the start function: translate code, resolve host bindings.
  virtual Status prepare() { return Status::success(); }

  /// The resolved host function for import index \p I (valid after
  /// initialize()), or null when unbound.
  const HostFn *hostFor(uint32_t I) const {
    return I < HostTable.size() ? HostTable[I] : nullptr;
  }

  /// Sizes Prof to cover function space (idempotent).
  void ensureProfileTable();

  /// Renders the trap-attribution suffix both engines append to trap
  /// messages: " [func N]", or " [func N; inv I, loops L]" when
  /// profiling — identical across engines so the differential suite can
  /// compare trap strings byte-for-byte.
  std::string trapNote(uint32_t FuncIdx) const;

  const WModule *M;
  std::vector<uint8_t> Mem;
  std::vector<WValue> Globals;
  std::vector<uint32_t> Table;
  std::map<std::pair<std::string, std::string>, HostFn> Hosts;
  /// Import index → resolved host function (avoids the map on calls).
  std::vector<const HostFn *> HostTable;
  uint64_t Executed = 0;
  bool ProfileOn = false;
  std::vector<FunctionProfile> Prof;

private:
  uint64_t ObsSourceId = 0;
};

/// Creates an uninitialized instance of \p M backed by engine \p K.
/// (Defined in exec/Engine.cpp, where both engines are visible.)
std::unique_ptr<Instance> createInstance(const WModule &M,
                                         EngineKind K = EngineKind::Tree);

} // namespace rw::wasm

#endif // RICHWASM_WASM_INSTANCE_H
