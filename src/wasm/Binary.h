//===- wasm/Binary.h - Wasm binary encoder and decoder ----------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The WebAssembly 1.0 binary format (with multi-value block types).
/// encode() produces a .wasm byte vector runnable by any engine; decode()
/// parses one back, enabling round-trip testing of the whole pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_WASM_BINARY_H
#define RICHWASM_WASM_BINARY_H

#include "ingest/Limits.h"
#include "support/Error.h"
#include "wasm/WasmAst.h"

namespace rw::wasm {

/// Serializes \p M to the binary format. Multi-value block types are
/// emitted as type-section references, so \p M is taken by value and its
/// type section may be extended internally.
std::vector<uint8_t> encode(WModule M);

/// Parses a binary module under the default ingest::Limits policy. Total
/// on arbitrary bytes: every read is bounds-checked, counts are validated
/// against remaining input before allocation, and recursion is
/// depth-capped (DESIGN.md §12).
Expected<WModule> decode(const std::vector<uint8_t> &Bytes);

/// Parses a binary module under an explicit resource-limit policy. On
/// rejection, \p ErrOut (when non-null) receives the structured error —
/// category, byte offset, context — that the returned Error renders.
Expected<WModule> decode(const std::vector<uint8_t> &Bytes,
                         const ingest::Limits &L,
                         ingest::IngestError *ErrOut = nullptr);

/// Renders the module in a WAT-like text form (for debugging and docs).
std::string printWat(const WModule &M);

} // namespace rw::wasm

#endif // RICHWASM_WASM_BINARY_H
