//===- obs/Timeline.h - Periodic snapshot-delta ring ------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-running process needs rates and history, not just a final
/// snapshot. obs::Timeline samples obs::snapshot() periodically (from a
/// background thread, or synchronously via sampleNow()) and keeps a
/// bounded ring of *deltas* between consecutive samples.
///
/// Each metric is reduced to scalar views: a counter or gauge is its
/// value; a histogram contributes "<name>.count" and "<name>.sum" (rates
/// are what a timeline is for; full bucket history would be ~1000 words
/// per histogram per tick). Deltas use wrapping uint64 arithmetic, so a
/// gauge that decreases reconciles exactly (and renders as a negative
/// JSON delta).
///
/// Reconciliation contract (pinned by tests and the c7 bench): at any
/// quiescent point,
///
///     base() + sum(deltas()) == latest()        (per key, mod 2^64)
///
/// where base() starts at the construction-time snapshot and absorbs
/// every delta evicted by ring wraparound — so the invariant holds even
/// after the ring has dropped history, and dropped() makes the
/// truncation visible.
///
/// Lifetime: start() launches the sampler thread ("obs-timeline");
/// stop() (or the destructor) joins it. The sampler calls
/// obs::snapshot(), so every registered source must outlive the running
/// timeline — same rule as any other snapshot() caller.
///
/// Compiled out with -DRW_OBS=OFF: the class collapses to inert inline
/// stubs and Timeline.cpp contributes no symbols.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_OBS_TIMELINE_H
#define RICHWASM_OBS_TIMELINE_H

#include "obs/Obs.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#if RW_OBS_ENABLED
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#endif

namespace rw::obs {

/// One sampling interval's worth of change, oldest key order.
struct TimelineDelta {
  uint64_t Seq = 0;  ///< Sample number (1 = first delta after baseline).
  uint64_t T0Ns = 0; ///< Interval start (previous sample's timestamp).
  uint64_t T1Ns = 0; ///< Interval end (this sample's timestamp).
  /// Scalar-view deltas, only keys that changed this interval.
  std::vector<std::pair<std::string, uint64_t>> Changes;
};

/// Sampler configuration (namespace scope so it can be a default
/// argument while Timeline is still incomplete).
struct TimelineOptions {
  uint64_t IntervalMs = 1000; ///< Sampler period.
  size_t Capacity = 512;      ///< Ring size in deltas.
};

#if RW_OBS_ENABLED

class Timeline {
public:
  using Options = TimelineOptions;

  /// Takes the baseline snapshot at construction.
  explicit Timeline(Options O = {});
  ~Timeline(); ///< Stops the sampler if running.

  Timeline(const Timeline &) = delete;
  Timeline &operator=(const Timeline &) = delete;

  /// Launches the background sampler thread. Idempotent.
  void start();
  /// Stops and joins the sampler. Idempotent; safe without start().
  void stop();

  /// Takes one sample synchronously (also what the sampler thread does).
  /// Safe to mix with a running sampler.
  void sampleNow();

  /// Total samples taken since construction.
  uint64_t sampleCount() const;
  /// Deltas evicted by ring wraparound (their changes live on in base()).
  uint64_t dropped() const;

  /// Retained ring contents, oldest first.
  std::vector<TimelineDelta> deltas() const;

  /// Scalar views of the construction-time snapshot plus every evicted
  /// delta: the reconciliation floor for the retained ring.
  std::map<std::string, uint64_t> base() const;
  /// Scalar views of the most recent sample (the baseline until the
  /// first sampleNow()).
  std::map<std::string, uint64_t> latest() const;

  /// {"timeline":{"interval_ms":..,"samples":..,"dropped":..,
  ///   "deltas":[{"seq":..,"t0_ns":..,"t1_ns":..,"d":{name:delta,..}},..]}}
  /// Deltas print as signed (a shrinking gauge is a negative rate).
  std::string exportJson() const;

private:
  void run();

  Options Opts;
  mutable std::mutex M;
  std::condition_variable Cv;
  std::thread Sampler;
  bool Running = false;
  bool StopReq = false;
  uint64_t Samples = 0;
  uint64_t Evicted = 0;
  uint64_t LastNs = 0; ///< Previous sample's timestamp (interval start).
  std::map<std::string, uint64_t> Base; ///< Baseline + evicted deltas.
  std::map<std::string, uint64_t> Prev; ///< Latest sample's absolutes.
  std::deque<TimelineDelta> Ring;       ///< Bounded by Opts.Capacity.
};

#else // !RW_OBS_ENABLED — inert stub, no Timeline.cpp symbols.

class Timeline {
public:
  using Options = TimelineOptions;

  explicit Timeline(Options = {}) {}
  Timeline(const Timeline &) = delete;
  Timeline &operator=(const Timeline &) = delete;

  void start() {}
  void stop() {}
  void sampleNow() {}
  uint64_t sampleCount() const { return 0; }
  uint64_t dropped() const { return 0; }
  std::vector<TimelineDelta> deltas() const { return {}; }
  std::map<std::string, uint64_t> base() const { return {}; }
  std::map<std::string, uint64_t> latest() const { return {}; }
  std::string exportJson() const { return "{\"timeline\":{}}"; }
};

#endif // RW_OBS_ENABLED

} // namespace rw::obs

#endif // RICHWASM_OBS_TIMELINE_H
