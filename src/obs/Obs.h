//===- obs/Obs.h - Process-wide observability layer -------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission pipeline's observability layer (DESIGN.md §10), three
/// pillars behind one header:
///
///   * **Metrics registry** — named counters, gauges, and HDR-style
///     sub-bucketed latency histograms (log2 major buckets split into 16
///     linear minor buckets, so quantile estimates carry <=~6% relative
///     error before interpolation). Slots are statically allocated per
///     name (the first registration wins; later registrations of the same
///     name share the slot) and sharded across NumShards per-thread
///     banks, so a hot-path increment is one relaxed fetch_add into a
///     bank no other running thread touches; snapshot() folds the banks
///     on read.
///     External stats surfaces (TypeArena::Stats, cache::CacheStats,
///     per-instance FunctionProfile tables) plug in as *sources*:
///     callbacks sampled at snapshot time, so one obs::snapshot() returns
///     everything uniformly.
///
///   * **Pipeline tracing** — RAII phase spans (OBS_SPAN("check", mod))
///     recorded into per-thread ring buffers that survive thread exit,
///     so the spans of a pooled checkModules land attributed to the
///     worker ("pool-3") that ran them. traceJson() exports Chrome
///     trace_event JSON for about:tracing / Perfetto. Every span also
///     feeds its phase's latency histogram.
///
///   * **Runtime gating** — counters are always live (one relaxed add);
///     spans check enabled() (one relaxed load) before touching a clock,
///     and record trace events only when tracing() is also set. Initial
///     state comes from RW_OBS=1 / RW_OBS_TRACE=1 in the environment.
///     For always-on server tracing, RW_OBS_TRACE_SAMPLE=N head-samples
///     1-in-N admissions deterministically on content hash (see
///     TraceSampleScope); ring-buffer overwrites are counted so
///     truncation is visible (traceDroppedCount / "obs.trace.dropped").
///
/// Exporters: renderText / renderJson for one-shot dumps,
/// renderPrometheus for text exposition a scraper can poll, and
/// obs::Timeline (Timeline.h) for an in-process ring of periodic
/// snapshot deltas (rate/history for long-running servers).
///
/// Compile-time gating: building with -DRW_OBS=OFF (RW_OBS_ENABLED=0)
/// replaces everything here with empty inline stubs — OBS_SPAN expands to
/// nothing, Counter/Span are empty types, and Obs.cpp contributes zero
/// code to the archive (tests/obs_test.cpp pins this).
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_OBS_OBS_H
#define RICHWASM_OBS_OBS_H

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#ifndef RW_OBS_ENABLED
#define RW_OBS_ENABLED 1
#endif

namespace rw::obs {

/// What a registry entry measures. A histogram is an HDR-style
/// sub-bucketed layout: values below 16 get one exact bucket each
/// (index == value); values with bit_width w >= 5 land in log2 major
/// bucket w split into 16 linear minor buckets by the 4 bits below the
/// leading bit. Bucket width is thus 1/16 of the bucket's magnitude, so
/// the worst-case relative error of a bucket bound is 1/16 (~6.25%), and
/// within-bucket interpolation in histQuantile() does better on average.
enum class MetricKind : uint8_t { Counter, Gauge, Histogram };

/// Total histogram buckets: 16 exact (v < 16) + 60 majors x 16 minors
/// (bit_width 5..64).
constexpr unsigned HistBucketCount = 16 + 60 * 16;

/// Bucket index for a sample value (see MetricKind for the layout).
constexpr unsigned histBucketIndex(uint64_t V) {
  if (V < 16)
    return static_cast<unsigned>(V);
  unsigned W = static_cast<unsigned>(std::bit_width(V));
  return (W - 4) * 16 + static_cast<unsigned>((V >> (W - 5)) & 15);
}

/// Smallest sample value mapping to bucket I.
constexpr uint64_t histBucketLo(unsigned I) {
  if (I < 16)
    return I;
  unsigned W = I / 16 + 4;
  return (1ull << (W - 1)) + (static_cast<uint64_t>(I % 16) << (W - 5));
}

/// Largest sample value mapping to bucket I.
constexpr uint64_t histBucketHi(unsigned I) {
  if (I < 16)
    return I;
  unsigned W = I / 16 + 4;
  return histBucketLo(I) + ((1ull << (W - 5)) - 1);
}

/// One aggregated registry entry (shards already folded) or one sampled
/// source value, as returned by snapshot().
struct Metric {
  std::string Name;
  MetricKind Kind = MetricKind::Counter;
  uint64_t Value = 0; ///< Counter/gauge value; histograms: sample count.
  uint64_t Sum = 0;   ///< Histograms only: sum of samples.
  std::vector<uint64_t> Buckets; ///< Histograms only: HistBucketCount.
};

struct Snapshot {
  std::vector<Metric> Metrics; ///< Registry entries, then source samples.
};

/// Approximate quantile of a histogram Metric. The q-th ranked sample is
/// located in its bucket and linearly interpolated within the bucket's
/// [lo, hi] value range (midpoint rank convention), so a tight
/// distribution quantile is within the bucket's ~6.25% width instead of
/// snapping to a log2 bound. Buckets of width 1 (all values < 32) are
/// exact. Returns 0 for empty or non-histogram metrics.
inline uint64_t histQuantile(const Metric &M, double Q) {
  if (M.Kind != MetricKind::Histogram || M.Value == 0 || M.Buckets.empty())
    return 0;
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(M.Value));
  if (Rank >= M.Value)
    Rank = M.Value - 1;
  uint64_t Seen = 0;
  for (size_t I = 0; I < M.Buckets.size(); ++I) {
    if (!M.Buckets[I])
      continue;
    if (Seen + M.Buckets[I] > Rank) {
      uint64_t Lo = histBucketLo(static_cast<unsigned>(I));
      uint64_t Hi = histBucketHi(static_cast<unsigned>(I));
      if (Hi == Lo)
        return Lo; // Exact bucket.
      // Position of the ranked sample among this bucket's samples,
      // midpoint convention: the k-th of c samples sits at (k+0.5)/c.
      double Pos = (static_cast<double>(Rank - Seen) + 0.5) /
                   static_cast<double>(M.Buckets[I]);
      uint64_t Width = Hi - Lo + 1;
      uint64_t Est = Lo + static_cast<uint64_t>(Pos * static_cast<double>(Width));
      return Est > Hi ? Hi : Est;
    }
    Seen += M.Buckets[I];
  }
  return histBucketHi(HistBucketCount - 1);
}

/// Prometheus metric-name sanitization: [a-zA-Z0-9_:] pass through,
/// everything else (including the registry's '.' separators) becomes '_'.
/// A leading digit gets a '_' prefix. Pure helper, available in both
/// compile configurations.
inline std::string promSanitizeName(const std::string &Name) {
  std::string Out;
  Out.reserve(Name.size() + 1);
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_' || C == ':';
    Out += Ok ? C : '_';
  }
  if (!Out.empty() && Out[0] >= '0' && Out[0] <= '9')
    Out.insert(Out.begin(), '_');
  return Out;
}

/// Prometheus label-value escaping: backslash, double-quote, and newline
/// must be escaped inside label values. Pure helper, available in both
/// compile configurations.
inline std::string promEscapeLabel(const std::string &Value) {
  std::string Out;
  Out.reserve(Value.size());
  for (char C : Value) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

/// The callback a stats source receives: emit(name, value) one or more
/// times; names are reported as "<prefix>.<name>".
using EmitFn = std::function<void(const char *Name, uint64_t Value)>;

#if RW_OBS_ENABLED

/// True when the layer is compiled in (RW_OBS=ON).
constexpr bool compiledIn() { return true; }

namespace detail {
/// Bit 0: enabled (span clocks + histograms). Bit 1: tracing (ring-buffer
/// events; only meaningful with bit 0). Seeded from RW_OBS / RW_OBS_TRACE.
extern std::atomic<uint32_t> Flags;
unsigned allocSlots(const char *Name, MetricKind K, unsigned Words);
void counterAdd(unsigned Slot, uint64_t N);
void gaugeSet(unsigned Slot, uint64_t V);
uint64_t slotValue(unsigned Slot);
void histRecord(unsigned Slot, uint64_t Sample);
} // namespace detail

/// Master switch for span timing and histogram recording (counters stay
/// live regardless — they are one relaxed add). Cheap to query.
inline bool enabled() {
  return detail::Flags.load(std::memory_order_relaxed) & 1u;
}
void setEnabled(bool On);

/// Trace-event recording (requires enabled()).
inline bool tracing() {
  return (detail::Flags.load(std::memory_order_relaxed) & 3u) == 3u;
}
void setTracing(bool On);

/// Head-sampling rate for always-on tracing: with setTraceSampling(N),
/// N > 1, a span records a trace event only on threads whose enclosing
/// TraceSampleScope was selected (or on threads with no scope at all, so
/// non-admission spans and existing callers are unaffected). N <= 1
/// means no suppression. Seeded from RW_OBS_TRACE_SAMPLE=N.
void setTraceSampling(uint64_t N);
uint64_t traceSampling();

/// The deterministic 1-in-N selection decision for a unit of work,
/// keyed on its content hash — the same bytes sample the same way
/// regardless of thread, pool size, or arrival order. True when
/// sampling is off (N <= 1).
bool traceSampleSelect(uint64_t ContentHash);

/// RAII: marks the calling thread's spans as selected / suppressed for
/// the scope's lifetime (nests; inner scopes win, the previous state is
/// restored on exit). Opened by ingest::admit from the input content
/// hash; suppression only gates *trace events* — phase histograms and
/// counters record regardless, so metric totals stay complete.
class TraceSampleScope {
public:
  explicit TraceSampleScope(bool Selected);
  ~TraceSampleScope();
  TraceSampleScope(const TraceSampleScope &) = delete;
  TraceSampleScope &operator=(const TraceSampleScope &) = delete;

private:
  uint8_t Prev;
};

/// True when the calling thread is inside a TraceSampleScope.
bool traceSampleActive();

/// Trace events overwritten by ring-buffer wraparound since the last
/// clearTrace(), summed across threads. The lifetime-monotone counter
/// "obs.trace.dropped" tracks the same overwrites in the registry.
uint64_t traceDroppedCount();

/// Monotonic nanoseconds (steady clock).
uint64_t nowNs();

/// Names the calling thread for trace export and snapshot attribution
/// ("pool-3" instead of a raw thread id). Also applied to the OS thread
/// (pthread name) so debugger/TSan reports match the trace.
void setThreadName(const char *Name);

/// A named monotonic counter. Construction registers (or re-finds) the
/// name; add() is a relaxed fetch_add into the calling thread's shard.
/// Intended use: one function-local `static obs::Counter` per site.
class Counter {
public:
  explicit Counter(const char *Name)
      : Slot(detail::allocSlots(Name, MetricKind::Counter, 1)) {}
  void add(uint64_t N = 1) const { detail::counterAdd(Slot, N); }
  void inc() const { add(1); }
  uint64_t value() const { return detail::slotValue(Slot); }

private:
  unsigned Slot;
};

/// A named last-value gauge (single slot, relaxed store).
class Gauge {
public:
  explicit Gauge(const char *Name)
      : Slot(detail::allocSlots(Name, MetricKind::Gauge, 1)) {}
  void set(uint64_t V) const { detail::gaugeSet(Slot, V); }
  uint64_t value() const { return detail::slotValue(Slot); }

private:
  unsigned Slot;
};

/// A named sub-bucketed histogram (HistBucketCount buckets + count +
/// sum, sharded like counters). record() is gated on enabled() by
/// callers that care (Span does); calling it directly always records.
class Histogram {
public:
  explicit Histogram(const char *Name)
      : Slot(detail::allocSlots(Name, MetricKind::Histogram,
                                HistBucketCount + 2)) {}
  void record(uint64_t Sample) const { detail::histRecord(Slot, Sample); }

private:
  unsigned Slot;
};

/// An interned pipeline phase: the span name plus its latency histogram
/// ("phase.<name>.ns"). phase() deduplicates by name, so the usual
/// pattern is a function-local `static Phase &P = obs::phase("check")`.
struct Phase {
  const char *Name;
  Histogram Hist;
  explicit Phase(const char *Name, const char *HistName)
      : Name(Name), Hist(HistName) {}
};

Phase &phase(const char *Name);

namespace detail {
void spanEnd(const Phase &P, uint64_t StartNs, uint64_t A, uint64_t B);
} // namespace detail

/// An RAII phase span. When the layer is runtime-disabled the constructor
/// is one relaxed load and the destructor a predictable no-op branch.
/// When enabled, the destructor records the duration into the phase
/// histogram and — if tracing() — appends a trace event (with the two
/// free-form args, e.g. module and function index) to the calling
/// thread's ring buffer.
class Span {
public:
  explicit Span(Phase &P, uint64_t A = 0, uint64_t B = 0)
      : P(&P), A(A), B(B), StartNs(enabled() ? nowNs() : 0) {}
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  ~Span() {
    if (StartNs)
      detail::spanEnd(*P, StartNs, A, B);
  }

private:
  Phase *P;
  uint64_t A, B;
  uint64_t StartNs;
};

#define RW_OBS_CAT2(a, b) a##b
#define RW_OBS_CAT(a, b) RW_OBS_CAT2(a, b)
/// OBS_SPAN("check", Mod, Func): scoped span for the rest of the block.
/// The phase lookup is a function-local static, so steady-state cost is
/// one static-init guard check plus the Span constructor's relaxed load.
#define OBS_SPAN(NAME, ...)                                                    \
  static ::rw::obs::Phase &RW_OBS_CAT(ObsPhase_, __LINE__) =                   \
      ::rw::obs::phase(NAME);                                                  \
  ::rw::obs::Span RW_OBS_CAT(ObsSpan_, __LINE__)(                              \
      RW_OBS_CAT(ObsPhase_, __LINE__) __VA_OPT__(, ) __VA_ARGS__)

/// Registers a stats source sampled by snapshot(). \p Prefix is
/// uniquified ("cache", "cache#2", ...) when already taken. Returns an id
/// for unregisterSource; sources must unregister before the state their
/// callback reads dies.
uint64_t registerSource(const char *Prefix, std::function<void(const EmitFn &)> Fn);
void unregisterSource(uint64_t Id);

/// Folds every shard of every registry entry and samples every source.
Snapshot snapshot();

/// Human-readable one-line-per-metric rendering (histograms get count,
/// mean, and approximate p50/p99/p999).
std::string renderText(const Snapshot &S);

/// Machine-readable rendering: {"metrics": {name: value | {histogram}}}.
std::string renderJson(const Snapshot &S);

/// Prometheus text exposition (version 0.0.4) of a snapshot. Metric
/// names are sanitized (promSanitizeName) and prefixed "rw_"; a
/// uniquified source prefix ("cache#2") renders its base name with an
/// instance="cache#2" label; a name segment "shard<N>" is lifted into a
/// shard="<N>" label. Histograms render as classic cumulative-le series
/// (non-empty bucket upper bounds + "+Inf") with _sum and _count.
std::string renderPrometheus(const Snapshot &S);

/// Chrome trace_event JSON ("traceEvents" array, duration events plus
/// thread_name metadata) of everything currently in the ring buffers.
/// Collect while span-recording threads are quiescent.
std::string traceJson();

/// Drops all recorded trace events (buffers stay registered). Call while
/// span-recording threads are quiescent.
void clearTrace();

/// Events currently held across all ring buffers (after drops).
size_t traceEventCount();

#else // !RW_OBS_ENABLED — every entry point collapses to nothing.

constexpr bool compiledIn() { return false; }
inline bool enabled() { return false; }
inline void setEnabled(bool) {}
inline bool tracing() { return false; }
inline void setTracing(bool) {}
inline void setTraceSampling(uint64_t) {}
inline uint64_t traceSampling() { return 1; }
inline bool traceSampleSelect(uint64_t) { return true; }
inline bool traceSampleActive() { return false; }
inline uint64_t traceDroppedCount() { return 0; }
inline uint64_t nowNs() { return 0; }
inline void setThreadName(const char *) {}

class TraceSampleScope {
public:
  constexpr explicit TraceSampleScope(bool) {}
  TraceSampleScope(const TraceSampleScope &) = delete;
  TraceSampleScope &operator=(const TraceSampleScope &) = delete;
};

class Counter {
public:
  constexpr explicit Counter(const char *) {}
  void add(uint64_t = 1) const {}
  void inc() const {}
  uint64_t value() const { return 0; }
};

class Gauge {
public:
  constexpr explicit Gauge(const char *) {}
  void set(uint64_t) const {}
  uint64_t value() const { return 0; }
};

class Histogram {
public:
  constexpr explicit Histogram(const char *) {}
  void record(uint64_t) const {}
};

struct Phase {};

inline Phase &phase(const char *) {
  static Phase P;
  return P;
}

class Span {
public:
  constexpr explicit Span(Phase &, uint64_t = 0, uint64_t = 0) {}
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
};

#define OBS_SPAN(...) ((void)0)

inline uint64_t registerSource(const char *,
                               std::function<void(const EmitFn &)>) {
  return 0;
}
inline void unregisterSource(uint64_t) {}
inline Snapshot snapshot() { return {}; }
inline std::string renderText(const Snapshot &) {
  return "(observability compiled out)\n";
}
inline std::string renderJson(const Snapshot &) { return "{\"metrics\":{}}"; }
inline std::string renderPrometheus(const Snapshot &) { return ""; }
inline std::string traceJson() { return "{\"traceEvents\":[]}"; }
inline void clearTrace() {}
inline size_t traceEventCount() { return 0; }

#endif // RW_OBS_ENABLED

} // namespace rw::obs

#endif // RICHWASM_OBS_OBS_H
