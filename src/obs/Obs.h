//===- obs/Obs.h - Process-wide observability layer -------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission pipeline's observability layer (DESIGN.md §10), three
/// pillars behind one header:
///
///   * **Metrics registry** — named counters, gauges, and log2-bucket
///     latency histograms. Slots are statically allocated per name (the
///     first registration wins; later registrations of the same name
///     share the slot) and sharded across NumShards per-thread banks, so
///     a hot-path increment is one relaxed fetch_add into a bank no other
///     running thread touches; snapshot() folds the banks on read.
///     External stats surfaces (TypeArena::Stats, cache::CacheStats,
///     per-instance FunctionProfile tables) plug in as *sources*:
///     callbacks sampled at snapshot time, so one obs::snapshot() returns
///     everything uniformly.
///
///   * **Pipeline tracing** — RAII phase spans (OBS_SPAN("check", mod))
///     recorded into per-thread ring buffers that survive thread exit,
///     so the spans of a pooled checkModules land attributed to the
///     worker ("pool-3") that ran them. traceJson() exports Chrome
///     trace_event JSON for about:tracing / Perfetto. Every span also
///     feeds its phase's latency histogram.
///
///   * **Runtime gating** — counters are always live (one relaxed add);
///     spans check enabled() (one relaxed load) before touching a clock,
///     and record trace events only when tracing() is also set. Initial
///     state comes from RW_OBS=1 / RW_OBS_TRACE=1 in the environment.
///
/// Compile-time gating: building with -DRW_OBS=OFF (RW_OBS_ENABLED=0)
/// replaces everything here with empty inline stubs — OBS_SPAN expands to
/// nothing, Counter/Span are empty types, and Obs.cpp contributes zero
/// code to the archive (tests/obs_test.cpp pins this).
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_OBS_OBS_H
#define RICHWASM_OBS_OBS_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#ifndef RW_OBS_ENABLED
#define RW_OBS_ENABLED 1
#endif

namespace rw::obs {

/// What a registry entry measures. A histogram is 64 log2 buckets
/// (bucket i counts samples with bit_width(v) == i, i.e. v in
/// [2^(i-1), 2^i)) plus a count and a sum.
enum class MetricKind : uint8_t { Counter, Gauge, Histogram };

/// One aggregated registry entry (shards already folded) or one sampled
/// source value, as returned by snapshot().
struct Metric {
  std::string Name;
  MetricKind Kind = MetricKind::Counter;
  uint64_t Value = 0; ///< Counter/gauge value; histograms: sample count.
  uint64_t Sum = 0;   ///< Histograms only: sum of samples.
  std::vector<uint64_t> Buckets; ///< Histograms only: 64 log2 buckets.
};

struct Snapshot {
  std::vector<Metric> Metrics; ///< Registry entries, then source samples.
};

/// Approximate quantile of a histogram Metric (upper bound of the bucket
/// holding the q-th sample); 0 for empty or non-histogram metrics.
inline uint64_t histQuantile(const Metric &M, double Q) {
  if (M.Kind != MetricKind::Histogram || M.Value == 0 || M.Buckets.empty())
    return 0;
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(M.Value));
  if (Rank >= M.Value)
    Rank = M.Value - 1;
  uint64_t Seen = 0;
  for (size_t I = 0; I < M.Buckets.size(); ++I) {
    Seen += M.Buckets[I];
    if (Seen > Rank)
      return I == 0 ? 0 : (1ull << I) - 1; // Upper bound of bucket I.
  }
  return ~0ull;
}

/// The callback a stats source receives: emit(name, value) one or more
/// times; names are reported as "<prefix>.<name>".
using EmitFn = std::function<void(const char *Name, uint64_t Value)>;

#if RW_OBS_ENABLED

/// True when the layer is compiled in (RW_OBS=ON).
constexpr bool compiledIn() { return true; }

namespace detail {
/// Bit 0: enabled (span clocks + histograms). Bit 1: tracing (ring-buffer
/// events; only meaningful with bit 0). Seeded from RW_OBS / RW_OBS_TRACE.
extern std::atomic<uint32_t> Flags;
unsigned allocSlots(const char *Name, MetricKind K, unsigned Words);
void counterAdd(unsigned Slot, uint64_t N);
void gaugeSet(unsigned Slot, uint64_t V);
uint64_t slotValue(unsigned Slot);
void histRecord(unsigned Slot, uint64_t Sample);
} // namespace detail

/// Master switch for span timing and histogram recording (counters stay
/// live regardless — they are one relaxed add). Cheap to query.
inline bool enabled() {
  return detail::Flags.load(std::memory_order_relaxed) & 1u;
}
void setEnabled(bool On);

/// Trace-event recording (requires enabled()).
inline bool tracing() {
  return (detail::Flags.load(std::memory_order_relaxed) & 3u) == 3u;
}
void setTracing(bool On);

/// Monotonic nanoseconds (steady clock).
uint64_t nowNs();

/// Names the calling thread for trace export and snapshot attribution
/// ("pool-3" instead of a raw thread id). Also applied to the OS thread
/// (pthread name) so debugger/TSan reports match the trace.
void setThreadName(const char *Name);

/// A named monotonic counter. Construction registers (or re-finds) the
/// name; add() is a relaxed fetch_add into the calling thread's shard.
/// Intended use: one function-local `static obs::Counter` per site.
class Counter {
public:
  explicit Counter(const char *Name)
      : Slot(detail::allocSlots(Name, MetricKind::Counter, 1)) {}
  void add(uint64_t N = 1) const { detail::counterAdd(Slot, N); }
  void inc() const { add(1); }
  uint64_t value() const { return detail::slotValue(Slot); }

private:
  unsigned Slot;
};

/// A named last-value gauge (single slot, relaxed store).
class Gauge {
public:
  explicit Gauge(const char *Name)
      : Slot(detail::allocSlots(Name, MetricKind::Gauge, 1)) {}
  void set(uint64_t V) const { detail::gaugeSet(Slot, V); }
  uint64_t value() const { return detail::slotValue(Slot); }

private:
  unsigned Slot;
};

/// A named log2-bucket histogram (64 buckets + count + sum, sharded like
/// counters). record() is gated on enabled() by callers that care (Span
/// does); calling it directly always records.
class Histogram {
public:
  explicit Histogram(const char *Name)
      : Slot(detail::allocSlots(Name, MetricKind::Histogram, 66)) {}
  void record(uint64_t Sample) const { detail::histRecord(Slot, Sample); }

private:
  unsigned Slot;
};

/// An interned pipeline phase: the span name plus its latency histogram
/// ("phase.<name>.ns"). phase() deduplicates by name, so the usual
/// pattern is a function-local `static Phase &P = obs::phase("check")`.
struct Phase {
  const char *Name;
  Histogram Hist;
  explicit Phase(const char *Name, const char *HistName)
      : Name(Name), Hist(HistName) {}
};

Phase &phase(const char *Name);

namespace detail {
void spanEnd(const Phase &P, uint64_t StartNs, uint64_t A, uint64_t B);
} // namespace detail

/// An RAII phase span. When the layer is runtime-disabled the constructor
/// is one relaxed load and the destructor a predictable no-op branch.
/// When enabled, the destructor records the duration into the phase
/// histogram and — if tracing() — appends a trace event (with the two
/// free-form args, e.g. module and function index) to the calling
/// thread's ring buffer.
class Span {
public:
  explicit Span(Phase &P, uint64_t A = 0, uint64_t B = 0)
      : P(&P), A(A), B(B), StartNs(enabled() ? nowNs() : 0) {}
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  ~Span() {
    if (StartNs)
      detail::spanEnd(*P, StartNs, A, B);
  }

private:
  Phase *P;
  uint64_t A, B;
  uint64_t StartNs;
};

#define RW_OBS_CAT2(a, b) a##b
#define RW_OBS_CAT(a, b) RW_OBS_CAT2(a, b)
/// OBS_SPAN("check", Mod, Func): scoped span for the rest of the block.
/// The phase lookup is a function-local static, so steady-state cost is
/// one static-init guard check plus the Span constructor's relaxed load.
#define OBS_SPAN(NAME, ...)                                                    \
  static ::rw::obs::Phase &RW_OBS_CAT(ObsPhase_, __LINE__) =                   \
      ::rw::obs::phase(NAME);                                                  \
  ::rw::obs::Span RW_OBS_CAT(ObsSpan_, __LINE__)(                              \
      RW_OBS_CAT(ObsPhase_, __LINE__) __VA_OPT__(, ) __VA_ARGS__)

/// Registers a stats source sampled by snapshot(). \p Prefix is
/// uniquified ("cache", "cache#2", ...) when already taken. Returns an id
/// for unregisterSource; sources must unregister before the state their
/// callback reads dies.
uint64_t registerSource(const char *Prefix, std::function<void(const EmitFn &)> Fn);
void unregisterSource(uint64_t Id);

/// Folds every shard of every registry entry and samples every source.
Snapshot snapshot();

/// Human-readable one-line-per-metric rendering (histograms get count,
/// mean, and approximate p50/p99).
std::string renderText(const Snapshot &S);

/// Machine-readable rendering: {"metrics": {name: value | {histogram}}}.
std::string renderJson(const Snapshot &S);

/// Chrome trace_event JSON ("traceEvents" array, duration events plus
/// thread_name metadata) of everything currently in the ring buffers.
/// Collect while span-recording threads are quiescent.
std::string traceJson();

/// Drops all recorded trace events (buffers stay registered). Call while
/// span-recording threads are quiescent.
void clearTrace();

/// Events currently held across all ring buffers (after drops).
size_t traceEventCount();

#else // !RW_OBS_ENABLED — every entry point collapses to nothing.

constexpr bool compiledIn() { return false; }
inline bool enabled() { return false; }
inline void setEnabled(bool) {}
inline bool tracing() { return false; }
inline void setTracing(bool) {}
inline uint64_t nowNs() { return 0; }
inline void setThreadName(const char *) {}

class Counter {
public:
  constexpr explicit Counter(const char *) {}
  void add(uint64_t = 1) const {}
  void inc() const {}
  uint64_t value() const { return 0; }
};

class Gauge {
public:
  constexpr explicit Gauge(const char *) {}
  void set(uint64_t) const {}
  uint64_t value() const { return 0; }
};

class Histogram {
public:
  constexpr explicit Histogram(const char *) {}
  void record(uint64_t) const {}
};

struct Phase {};

inline Phase &phase(const char *) {
  static Phase P;
  return P;
}

class Span {
public:
  constexpr explicit Span(Phase &, uint64_t = 0, uint64_t = 0) {}
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
};

#define OBS_SPAN(...) ((void)0)

inline uint64_t registerSource(const char *,
                               std::function<void(const EmitFn &)>) {
  return 0;
}
inline void unregisterSource(uint64_t) {}
inline Snapshot snapshot() { return {}; }
inline std::string renderText(const Snapshot &) {
  return "(observability compiled out)\n";
}
inline std::string renderJson(const Snapshot &) { return "{\"metrics\":{}}"; }
inline std::string traceJson() { return "{\"traceEvents\":[]}"; }
inline void clearTrace() {}
inline size_t traceEventCount() { return 0; }

#endif // RW_OBS_ENABLED

} // namespace rw::obs

#endif // RICHWASM_OBS_OBS_H
