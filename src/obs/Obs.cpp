//===- obs/Obs.cpp - Process-wide observability layer ----------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Storage layout. All metric slots live in one static sharded bank:
// NumShards banks of MaxSlots atomic words. A thread writes only its own
// bank (thread id modulo NumShards), so concurrent hot-path increments
// from different pool workers land on different cache lines; snapshot()
// folds the banks. Counters and gauges take one slot; a histogram takes
// HistBucketCount + 2 consecutive slots (count, sum, sub-buckets — see
// Obs.h for the HDR layout). Slot allocation is name-deduplicated under
// the registry mutex, so function-local static Counter/Phase objects in
// different TUs share storage by name. The banks are BSS (zero pages
// until touched), so raising MaxSlots for the wider histograms costs
// address space, not resident memory, until a slot is written.
//
// Trace events go to a per-thread ring buffer owned by a thread_local
// handle and co-owned by the global registry, so a pool worker's spans
// survive the pool's destruction and are exported with the worker's
// stable name. The buffers are written lock-free by their owner thread;
// collection (traceJson/clearTrace) is specified quiescent-only, which
// every in-tree caller satisfies by collecting after parallelFor returns.
//
// The whole file compiles away under -DRW_OBS=OFF: tests assert this TU
// then contributes no symbols at all.
//
//===----------------------------------------------------------------------===//

#include "obs/Obs.h"

#if RW_OBS_ENABLED

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#if defined(__linux__)
#include <pthread.h>
#endif

using namespace rw;
using namespace rw::obs;

namespace {

constexpr unsigned NumShards = 16;
constexpr unsigned MaxSlots = 64 * 1024; ///< ~64 histograms + counters.
constexpr unsigned HistWords = HistBucketCount + 2; ///< count, sum, buckets.
static_assert(HistWords < MaxSlots, "bank must fit at least one histogram");
constexpr size_t TraceCapacity = 1 << 14; ///< Events per thread buffer.

struct alignas(64) ShardBank {
  std::atomic<uint64_t> V[MaxSlots];
};

ShardBank Banks[NumShards];

struct TraceEvent {
  const char *Name;
  uint64_t StartNs;
  uint64_t DurNs;
  uint64_t A, B;
};

struct TraceBuf {
  std::vector<TraceEvent> Ev; ///< Ring of capacity TraceCapacity.
  size_t N = 0;               ///< Events pushed since the last clear.
  size_t Dropped = 0;         ///< Overwritten by wraparound since clear.
  uint64_t Tid = 0;           ///< Stable small id (registration order).
  std::string Name;           ///< "main", "pool-3", ... ("t<id>" default).
};

struct SlotInfo {
  std::string Name;
  MetricKind Kind;
  unsigned Slot;
  unsigned Words;
};

struct Source {
  uint64_t Id;
  std::string Prefix;
  std::function<void(const EmitFn &)> Fn;
};

struct Registry {
  std::mutex M;
  std::vector<SlotInfo> Slots;
  std::map<std::string, unsigned> ByName; ///< Name → index into Slots.
  unsigned NextSlot = 0;
  std::vector<std::unique_ptr<Phase>> Phases;
  std::vector<std::shared_ptr<TraceBuf>> Threads;
  uint64_t NextTid = 0;
  std::vector<Source> Sources;
  uint64_t NextSourceId = 1;
};

Registry &reg() {
  static Registry R;
  return R;
}

uint32_t flagsFromEnv() {
  auto On = [](const char *V) { return V && V[0] && !(V[0] == '0' && !V[1]); };
  uint32_t F = 0;
  if (On(std::getenv("RW_OBS")))
    F |= 1u;
  if (On(std::getenv("RW_OBS_TRACE")))
    F |= 3u; // Tracing implies enabled.
  return F;
}

uint64_t sampleFromEnv() {
  const char *V = std::getenv("RW_OBS_TRACE_SAMPLE");
  if (!V || !V[0])
    return 1;
  char *End = nullptr;
  unsigned long long N = std::strtoull(V, &End, 10);
  return (End && *End == '\0' && N > 1) ? N : 1;
}

/// 1-in-N head-sampling rate; N <= 1 disables suppression.
std::atomic<uint64_t> SampleN{sampleFromEnv()};

/// Per-thread sampling state: 0 = no enclosing TraceSampleScope (spans
/// record whenever tracing() — the pre-sampling behavior), 1 = selected,
/// 2 = suppressed.
thread_local uint8_t SampleState = 0;

/// The calling thread's trace buffer, registering it (and a default name)
/// on first use. The thread_local shared_ptr keeps the buffer alive for
/// the thread; the registry's copy keeps the *data* alive after exit.
TraceBuf &myBuf() {
  thread_local std::shared_ptr<TraceBuf> B = [] {
    auto P = std::make_shared<TraceBuf>();
    Registry &R = reg();
    std::lock_guard<std::mutex> G(R.M);
    P->Tid = R.NextTid++;
    P->Name = "t" + std::to_string(P->Tid);
    if (P->Tid == 0)
      P->Name = "main";
    R.Threads.push_back(P);
    return P;
  }();
  return *B;
}

std::atomic<unsigned> ShardCounter{0};

unsigned myShard() {
  thread_local unsigned S =
      ShardCounter.fetch_add(1, std::memory_order_relaxed) % NumShards;
  return S;
}

void jsonEscape(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

} // namespace

namespace rw::obs::detail {

std::atomic<uint32_t> Flags{flagsFromEnv()};

unsigned allocSlots(const char *Name, MetricKind K, unsigned Words) {
  Registry &R = reg();
  std::lock_guard<std::mutex> G(R.M);
  auto It = R.ByName.find(Name);
  if (It != R.ByName.end())
    return R.Slots[It->second].Slot; // Same-name re-registration shares.
  if (R.NextSlot + Words > MaxSlots)
    return MaxSlots - Words; // Overflow: alias the tail rather than UB.
  unsigned Slot = R.NextSlot;
  R.NextSlot += Words;
  R.ByName.emplace(Name, static_cast<unsigned>(R.Slots.size()));
  R.Slots.push_back({Name, K, Slot, Words});
  return Slot;
}

void counterAdd(unsigned Slot, uint64_t N) {
  Banks[myShard()].V[Slot].fetch_add(N, std::memory_order_relaxed);
}

void gaugeSet(unsigned Slot, uint64_t V) {
  // Gauges are last-value: a single bank so reads need no fold rule.
  Banks[0].V[Slot].store(V, std::memory_order_relaxed);
}

uint64_t slotValue(unsigned Slot) {
  uint64_t Sum = 0;
  for (ShardBank &B : Banks)
    Sum += B.V[Slot].load(std::memory_order_relaxed);
  return Sum;
}

void histRecord(unsigned Slot, uint64_t Sample) {
  unsigned Bucket = histBucketIndex(Sample);
  ShardBank &B = Banks[myShard()];
  B.V[Slot].fetch_add(1, std::memory_order_relaxed);
  B.V[Slot + 1].fetch_add(Sample, std::memory_order_relaxed);
  B.V[Slot + 2 + Bucket].fetch_add(1, std::memory_order_relaxed);
}

void spanEnd(const Phase &P, uint64_t StartNs, uint64_t A, uint64_t B) {
  uint64_t Dur = nowNs() - StartNs;
  P.Hist.record(Dur);
  if (!tracing())
    return;
  // Head sampling: when a rate is set and this thread is inside a
  // suppressed TraceSampleScope, keep the histogram record above but
  // skip the ring event. Threads with no scope record as before.
  if (SampleState == 2 && SampleN.load(std::memory_order_relaxed) > 1)
    return;
  TraceBuf &T = myBuf();
  if (T.Ev.empty())
    T.Ev.resize(TraceCapacity);
  if (T.N >= TraceCapacity) {
    ++T.Dropped;
    static Counter DroppedC("obs.trace.dropped");
    DroppedC.inc();
  }
  T.Ev[T.N % TraceCapacity] = {P.Name, StartNs, Dur, A, B};
  ++T.N;
}

} // namespace rw::obs::detail

void rw::obs::setEnabled(bool On) {
  uint32_t F = detail::Flags.load(std::memory_order_relaxed);
  detail::Flags.store(On ? (F | 1u) : (F & ~3u), std::memory_order_relaxed);
}

void rw::obs::setTracing(bool On) {
  uint32_t F = detail::Flags.load(std::memory_order_relaxed);
  detail::Flags.store(On ? (F | 3u) : (F & ~2u), std::memory_order_relaxed);
}

void rw::obs::setTraceSampling(uint64_t N) {
  SampleN.store(N > 1 ? N : 1, std::memory_order_relaxed);
}

uint64_t rw::obs::traceSampling() {
  return SampleN.load(std::memory_order_relaxed);
}

bool rw::obs::traceSampleSelect(uint64_t ContentHash) {
  uint64_t N = SampleN.load(std::memory_order_relaxed);
  if (N <= 1)
    return true;
  // Finalizer-style mix so low-entropy hash bits still spread across the
  // modulus; pure function of (hash, N) — thread- and order-independent.
  uint64_t H = ContentHash;
  H ^= H >> 33;
  H *= 0xff51afd7ed558ccdull;
  H ^= H >> 33;
  H *= 0xc4ceb9fe1a85ec53ull;
  H ^= H >> 33;
  return H % N == 0;
}

rw::obs::TraceSampleScope::TraceSampleScope(bool Selected) : Prev(SampleState) {
  SampleState = Selected ? 1 : 2;
}

rw::obs::TraceSampleScope::~TraceSampleScope() { SampleState = Prev; }

bool rw::obs::traceSampleActive() { return SampleState != 0; }

uint64_t rw::obs::traceDroppedCount() {
  Registry &R = reg();
  std::lock_guard<std::mutex> G(R.M);
  uint64_t N = 0;
  for (const std::shared_ptr<TraceBuf> &T : R.Threads)
    N += T->Dropped;
  return N;
}

uint64_t rw::obs::nowNs() {
  timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<uint64_t>(Ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(Ts.tv_nsec);
}

void rw::obs::setThreadName(const char *Name) {
  TraceBuf &T = myBuf();
  {
    Registry &R = reg();
    std::lock_guard<std::mutex> G(R.M);
    T.Name = Name;
  }
#if defined(__linux__)
  char Buf[16]; // pthread names cap at 15 chars + NUL.
  std::strncpy(Buf, Name, sizeof(Buf) - 1);
  Buf[sizeof(Buf) - 1] = '\0';
  pthread_setname_np(pthread_self(), Buf);
#endif
}

Phase &rw::obs::phase(const char *Name) {
  Registry &R = reg();
  {
    std::lock_guard<std::mutex> G(R.M);
    for (const std::unique_ptr<Phase> &P : R.Phases)
      if (std::strcmp(P->Name, Name) == 0)
        return *P;
  }
  // Construct OUTSIDE the registry lock: the Phase's Histogram
  // constructor takes it again via allocSlots (non-recursive mutex).
  // allocSlots copies the name into the registry, so the temporary
  // "phase.<name>.ns" is safe; same-name slot dedup makes a racing
  // duplicate construction harmless.
  std::string HistName = std::string("phase.") + Name + ".ns";
  auto P = std::make_unique<Phase>(Name, HistName.c_str());
  std::lock_guard<std::mutex> G(R.M);
  for (const std::unique_ptr<Phase> &Q : R.Phases)
    if (std::strcmp(Q->Name, Name) == 0)
      return *Q; // A racer interned it first; keep the canonical one.
  R.Phases.push_back(std::move(P));
  return *R.Phases.back();
}

uint64_t rw::obs::registerSource(const char *Prefix,
                                 std::function<void(const EmitFn &)> Fn) {
  Registry &R = reg();
  std::lock_guard<std::mutex> G(R.M);
  std::string P = Prefix;
  auto Taken = [&](const std::string &S) {
    return std::any_of(R.Sources.begin(), R.Sources.end(),
                       [&](const Source &Src) { return Src.Prefix == S; });
  };
  for (unsigned N = 2; Taken(P); ++N)
    P = std::string(Prefix) + "#" + std::to_string(N);
  uint64_t Id = R.NextSourceId++;
  R.Sources.push_back({Id, std::move(P), std::move(Fn)});
  return Id;
}

void rw::obs::unregisterSource(uint64_t Id) {
  if (!Id)
    return;
  Registry &R = reg();
  std::lock_guard<std::mutex> G(R.M);
  R.Sources.erase(std::remove_if(R.Sources.begin(), R.Sources.end(),
                                 [&](const Source &S) { return S.Id == Id; }),
                  R.Sources.end());
}

Snapshot rw::obs::snapshot() {
  Registry &R = reg();
  Snapshot Out;
  std::vector<Source> Sources;
  {
    std::lock_guard<std::mutex> G(R.M);
    Out.Metrics.reserve(R.Slots.size());
    for (const SlotInfo &S : R.Slots) {
      Metric M;
      M.Name = S.Name;
      M.Kind = S.Kind;
      if (S.Kind == MetricKind::Histogram) {
        M.Value = detail::slotValue(S.Slot);
        M.Sum = detail::slotValue(S.Slot + 1);
        M.Buckets.resize(HistBucketCount);
        for (unsigned B = 0; B < HistBucketCount; ++B)
          M.Buckets[B] = detail::slotValue(S.Slot + 2 + B);
      } else {
        M.Value = detail::slotValue(S.Slot);
      }
      Out.Metrics.push_back(std::move(M));
    }
    Sources = R.Sources; // Sampled outside the lock: a source may itself
                         // take locks (cache mutex, arena spinlock).
  }
  for (const Source &S : Sources) {
    EmitFn Emit = [&](const char *Name, uint64_t V) {
      Metric M;
      M.Name = S.Prefix + "." + Name;
      M.Kind = MetricKind::Counter;
      M.Value = V;
      Out.Metrics.push_back(std::move(M));
    };
    S.Fn(Emit);
  }
  return Out;
}

std::string rw::obs::renderText(const Snapshot &S) {
  std::string Out;
  char Buf[256];
  for (const Metric &M : S.Metrics) {
    if (M.Kind == MetricKind::Histogram) {
      double Mean =
          M.Value ? static_cast<double>(M.Sum) / static_cast<double>(M.Value)
                  : 0.0;
      std::snprintf(
          Buf, sizeof(Buf),
          "%-32s count=%llu mean=%.0f p50~%llu p99~%llu p999~%llu\n",
          M.Name.c_str(), static_cast<unsigned long long>(M.Value), Mean,
          static_cast<unsigned long long>(histQuantile(M, 0.50)),
          static_cast<unsigned long long>(histQuantile(M, 0.99)),
          static_cast<unsigned long long>(histQuantile(M, 0.999)));
    } else {
      std::snprintf(Buf, sizeof(Buf), "%-32s %llu\n", M.Name.c_str(),
                    static_cast<unsigned long long>(M.Value));
    }
    Out += Buf;
  }
  return Out;
}

std::string rw::obs::renderJson(const Snapshot &S) {
  std::string Out = "{\"metrics\":{";
  bool First = true;
  char Buf[256];
  for (const Metric &M : S.Metrics) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\"";
    jsonEscape(Out, M.Name);
    Out += "\":";
    if (M.Kind == MetricKind::Histogram) {
      std::snprintf(Buf, sizeof(Buf),
                    "{\"count\":%llu,\"sum\":%llu,\"p50\":%llu,\"p99\":%llu,"
                    "\"p999\":%llu,\"buckets\":{",
                    static_cast<unsigned long long>(M.Value),
                    static_cast<unsigned long long>(M.Sum),
                    static_cast<unsigned long long>(histQuantile(M, 0.50)),
                    static_cast<unsigned long long>(histQuantile(M, 0.99)),
                    static_cast<unsigned long long>(histQuantile(M, 0.999)));
      Out += Buf;
      bool FirstB = true;
      for (size_t B = 0; B < M.Buckets.size(); ++B) {
        if (!M.Buckets[B])
          continue;
        if (!FirstB)
          Out += ",";
        FirstB = false;
        std::snprintf(Buf, sizeof(Buf), "\"%zu\":%llu", B,
                      static_cast<unsigned long long>(M.Buckets[B]));
        Out += Buf;
      }
      Out += "}}";
    } else {
      std::snprintf(Buf, sizeof(Buf), "%llu",
                    static_cast<unsigned long long>(M.Value));
      Out += Buf;
    }
  }
  Out += "}}";
  return Out;
}

namespace {

/// Splits a registry metric name into a Prometheus base name + labels.
/// "cache#2.hits" → base "cache_hits", instance="cache#2";
/// "cache.shard3.evictions" → base "cache_evictions", shard="3".
struct PromName {
  std::string Base;   ///< Sanitized, "rw_"-prefixed.
  std::string Labels; ///< Rendered {k="v",...} block, or empty.
};

PromName promSplit(const std::string &Name) {
  std::string Instance, Shard, Stripped;
  size_t Pos = 0;
  bool FirstSeg = true;
  while (Pos <= Name.size()) {
    size_t Dot = Name.find('.', Pos);
    if (Dot == std::string::npos)
      Dot = Name.size();
    std::string Seg = Name.substr(Pos, Dot - Pos);
    size_t Hash = Seg.find('#');
    if (FirstSeg && Hash != std::string::npos) {
      Instance = Seg;               // Uniquified source prefix.
      Seg = Seg.substr(0, Hash);    // Base name keeps the stem.
    } else if (Seg.size() > 5 && Seg.compare(0, 5, "shard") == 0 &&
               Seg.find_first_not_of("0123456789", 5) == std::string::npos) {
      Shard = Seg.substr(5);
      Seg.clear(); // Lifted into a label; drop from the name.
    }
    if (!Seg.empty()) {
      if (!Stripped.empty())
        Stripped += '.';
      Stripped += Seg;
    }
    FirstSeg = false;
    if (Dot == Name.size())
      break;
    Pos = Dot + 1;
  }
  PromName Out;
  Out.Base = "rw_" + promSanitizeName(Stripped);
  std::string L;
  if (!Instance.empty())
    L += "instance=\"" + promEscapeLabel(Instance) + "\"";
  if (!Shard.empty()) {
    if (!L.empty())
      L += ",";
    L += "shard=\"" + Shard + "\"";
  }
  if (!L.empty())
    Out.Labels = "{" + L + "}";
  return Out;
}

} // namespace

std::string rw::obs::renderPrometheus(const Snapshot &S) {
  std::string Out;
  char Buf[128];
  // One # TYPE line per base name, on first sight (labeled series of the
  // same base — shards, instances — share one TYPE declaration).
  std::map<std::string, MetricKind> Typed;
  for (const Metric &M : S.Metrics) {
    PromName P = promSplit(M.Name);
    auto It = Typed.find(P.Base);
    if (It == Typed.end()) {
      Out += "# TYPE " + P.Base + " ";
      Out += M.Kind == MetricKind::Histogram ? "histogram"
             : M.Kind == MetricKind::Gauge   ? "gauge"
                                             : "counter";
      Out += "\n";
      Typed.emplace(P.Base, M.Kind);
    }
    if (M.Kind != MetricKind::Histogram) {
      std::snprintf(Buf, sizeof(Buf), " %llu\n",
                    static_cast<unsigned long long>(M.Value));
      Out += P.Base + P.Labels + Buf;
      continue;
    }
    // Classic cumulative histogram: one le series per non-empty bucket
    // upper bound (a subset of thresholds is valid exposition), +Inf,
    // then _sum and _count. Labels merge with the le label.
    std::string Inner =
        P.Labels.empty() ? "" : P.Labels.substr(1, P.Labels.size() - 2) + ",";
    uint64_t Cum = 0;
    for (size_t B = 0; B < M.Buckets.size(); ++B) {
      if (!M.Buckets[B])
        continue;
      Cum += M.Buckets[B];
      std::snprintf(Buf, sizeof(Buf), "le=\"%llu\"} %llu\n",
                    static_cast<unsigned long long>(
                        histBucketHi(static_cast<unsigned>(B))),
                    static_cast<unsigned long long>(Cum));
      Out += P.Base + "_bucket{" + Inner + Buf;
    }
    // A snapshot taken while recorders run can see count ahead of the
    // buckets (or behind); keep the +Inf series monotone regardless.
    uint64_t Inf = Cum > M.Value ? Cum : M.Value;
    std::snprintf(Buf, sizeof(Buf), "le=\"+Inf\"} %llu\n",
                  static_cast<unsigned long long>(Inf));
    Out += P.Base + "_bucket{" + Inner + Buf;
    std::snprintf(Buf, sizeof(Buf), " %llu\n",
                  static_cast<unsigned long long>(M.Sum));
    Out += P.Base + "_sum" + P.Labels + Buf;
    std::snprintf(Buf, sizeof(Buf), " %llu\n",
                  static_cast<unsigned long long>(M.Value));
    Out += P.Base + "_count" + P.Labels + Buf;
  }
  return Out;
}

std::string rw::obs::traceJson() {
  Registry &R = reg();
  std::vector<std::shared_ptr<TraceBuf>> Bufs;
  {
    std::lock_guard<std::mutex> G(R.M);
    Bufs = R.Threads;
  }
  std::string Out = "{\"traceEvents\":[";
  char Buf[256];
  bool First = true;
  for (const std::shared_ptr<TraceBuf> &T : Bufs) {
    if (!First)
      Out += ",";
    First = false;
    Out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":";
    Out += std::to_string(T->Tid);
    Out += ",\"args\":{\"name\":\"";
    jsonEscape(Out, T->Name);
    Out += "\"}}";
    size_t Count = std::min(T->N, TraceCapacity);
    size_t Begin = T->N - Count; // Oldest retained event index.
    for (size_t I = Begin; I < T->N; ++I) {
      const TraceEvent &E = T->Ev[I % TraceCapacity];
      std::snprintf(Buf, sizeof(Buf),
                    ",{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"rw\",\"pid\":1,"
                    "\"tid\":%llu,\"ts\":%.3f,\"dur\":%.3f,"
                    "\"args\":{\"a\":%llu,\"b\":%llu}}",
                    E.Name, static_cast<unsigned long long>(T->Tid),
                    static_cast<double>(E.StartNs) / 1000.0,
                    static_cast<double>(E.DurNs) / 1000.0,
                    static_cast<unsigned long long>(E.A),
                    static_cast<unsigned long long>(E.B));
      Out += Buf;
    }
  }
  Out += "]}";
  return Out;
}

void rw::obs::clearTrace() {
  Registry &R = reg();
  std::lock_guard<std::mutex> G(R.M);
  for (const std::shared_ptr<TraceBuf> &T : R.Threads) {
    T->N = 0;
    T->Dropped = 0;
  }
}

size_t rw::obs::traceEventCount() {
  Registry &R = reg();
  std::lock_guard<std::mutex> G(R.M);
  size_t N = 0;
  for (const std::shared_ptr<TraceBuf> &T : R.Threads)
    N += std::min(T->N, TraceCapacity);
  return N;
}

#endif // RW_OBS_ENABLED
