//===- obs/Timeline.cpp - Periodic snapshot-delta ring --------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Sampling reduces a Snapshot to scalar views, diffs against the previous
// views with wrapping arithmetic, and pushes only the changed keys into
// the ring. Eviction folds the oldest delta into Base, preserving the
// base + sum(retained) == latest invariant documented in Timeline.h.
//
// The sampler thread waits on a condition variable so stop() interrupts
// a sleep immediately; sampleNow() shares the same mutex-protected state,
// so external sampling can interleave with the background thread.
//
//===----------------------------------------------------------------------===//

#include "obs/Timeline.h"

#if RW_OBS_ENABLED

#include <chrono>

using namespace rw;
using namespace rw::obs;

namespace {

/// Reduces a snapshot to the timeline's scalar views (see Timeline.h).
std::map<std::string, uint64_t> scalarViews(const Snapshot &S) {
  std::map<std::string, uint64_t> Out;
  for (const Metric &M : S.Metrics) {
    if (M.Kind == MetricKind::Histogram) {
      Out[M.Name + ".count"] = M.Value;
      Out[M.Name + ".sum"] = M.Sum;
    } else {
      Out[M.Name] = M.Value;
    }
  }
  return Out;
}

} // namespace

Timeline::Timeline(Options O) : Opts(O) {
  if (Opts.Capacity == 0)
    Opts.Capacity = 1;
  Base = scalarViews(snapshot());
  Prev = Base;
  LastNs = nowNs();
}

Timeline::~Timeline() { stop(); }

void Timeline::start() {
  std::lock_guard<std::mutex> G(M);
  if (Running)
    return;
  StopReq = false;
  Running = true;
  Sampler = std::thread([this] { run(); });
}

void Timeline::stop() {
  {
    std::lock_guard<std::mutex> G(M);
    if (!Running)
      return;
    StopReq = true;
  }
  Cv.notify_all();
  Sampler.join();
  std::lock_guard<std::mutex> G(M);
  Running = false;
}

void Timeline::run() {
  setThreadName("obs-timeline");
  std::unique_lock<std::mutex> G(M);
  while (!StopReq) {
    // Sample outside the lock: snapshot() runs source callbacks that may
    // take their own locks (cache mutex, arena spinlock).
    G.unlock();
    sampleNow();
    G.lock();
    Cv.wait_for(G, std::chrono::milliseconds(Opts.IntervalMs),
                [this] { return StopReq; });
  }
}

void Timeline::sampleNow() {
  uint64_t Now = nowNs();
  std::map<std::string, uint64_t> Cur = scalarViews(snapshot());
  std::lock_guard<std::mutex> G(M);
  TimelineDelta D;
  D.Seq = ++Samples;
  D.T0Ns = LastNs;
  D.T1Ns = Now;
  LastNs = Now;
  for (const auto &[Name, V] : Cur) {
    auto It = Prev.find(Name);
    uint64_t Old = It == Prev.end() ? 0 : It->second;
    if (V != Old)
      D.Changes.emplace_back(Name, V - Old); // Wrapping: gauges may drop.
  }
  Prev = std::move(Cur);
  Ring.push_back(std::move(D));
  while (Ring.size() > Opts.Capacity) {
    for (const auto &[Name, Dv] : Ring.front().Changes)
      Base[Name] += Dv; // Fold evicted history into the floor.
    Ring.pop_front();
    ++Evicted;
  }
}

uint64_t Timeline::sampleCount() const {
  std::lock_guard<std::mutex> G(M);
  return Samples;
}

uint64_t Timeline::dropped() const {
  std::lock_guard<std::mutex> G(M);
  return Evicted;
}

std::vector<TimelineDelta> Timeline::deltas() const {
  std::lock_guard<std::mutex> G(M);
  return {Ring.begin(), Ring.end()};
}

std::map<std::string, uint64_t> Timeline::base() const {
  std::lock_guard<std::mutex> G(M);
  return Base;
}

std::map<std::string, uint64_t> Timeline::latest() const {
  std::lock_guard<std::mutex> G(M);
  return Prev;
}

std::string Timeline::exportJson() const {
  std::lock_guard<std::mutex> G(M);
  std::string Out = "{\"timeline\":{\"interval_ms\":";
  Out += std::to_string(Opts.IntervalMs);
  Out += ",\"samples\":" + std::to_string(Samples);
  Out += ",\"dropped\":" + std::to_string(Evicted);
  Out += ",\"deltas\":[";
  bool First = true;
  for (const TimelineDelta &D : Ring) {
    if (!First)
      Out += ",";
    First = false;
    Out += "{\"seq\":" + std::to_string(D.Seq);
    Out += ",\"t0_ns\":" + std::to_string(D.T0Ns);
    Out += ",\"t1_ns\":" + std::to_string(D.T1Ns);
    Out += ",\"d\":{";
    bool FirstC = true;
    for (const auto &[Name, V] : D.Changes) {
      if (!FirstC)
        Out += ",";
      FirstC = false;
      Out += "\"";
      // Metric names are registry identifiers ([a-z0-9._#] in practice)
      // but escape quotes/backslashes anyway.
      for (char C : Name) {
        if (C == '"' || C == '\\')
          Out += '\\';
        Out += C;
      }
      Out += "\":" + std::to_string(static_cast<int64_t>(V));
    }
    Out += "}}";
  }
  Out += "]}}";
  return Out;
}

#endif // RW_OBS_ENABLED
