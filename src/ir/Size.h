//===- ir/Size.h - RichWasm size expressions --------------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sizes (paper §2.1, Fig 2: `sz ::= σ | sz + sz | i`) measure memory slots
/// in *bits*. They appear in struct field declarations, local slot
/// declarations, and as upper bounds on type variables; the type system
/// tracks them to make strong updates safe in flat memory. A size is a
/// constant, a de Bruijn size variable, or a sum.
///
/// Sizes are hash-consed: every node is allocated by a TypeArena (see
/// ir/TypeArena.h), canonicalized to its +-normal form at intern time, and
/// unique per structural identity within its arena. Consequently
/// `sizeEquals` is pointer identity and `normalizeSize` is a field read.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_IR_SIZE_H
#define RICHWASM_IR_SIZE_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rw::ir {

class Size;
class TypeArena;
struct TypeArenaAccess;
using SizeRef = std::shared_ptr<const Size>;

/// The normal form of a size: a constant plus a sorted multiset of size
/// variables. Two sizes are structurally equal iff their normal forms match.
struct NormalSize {
  uint64_t Const = 0;
  std::vector<uint32_t> Vars; ///< Sorted, with multiplicity.

  bool operator==(const NormalSize &O) const {
    return Const == O.Const && Vars == O.Vars;
  }

  /// True when this size is a closed constant (no variables).
  bool isConst() const { return Vars.empty(); }
};

/// A size expression tree in canonical (+-normalized) form.
///
/// The canonical shape for a normal form `c + v0 + v1 + ...` (variables
/// sorted ascending, with multiplicity) is a left-leaning chain of sums over
/// the variables with the constant folded in last (and omitted when zero);
/// a variable-free size is a single Const node. Construct sizes only through
/// the factories below — they intern into the current TypeArena, which is
/// what makes pointer comparison a complete equality test.
/// (enable_shared_from_this lets the arena's lock-free memo fast paths hand
/// out *owning* references from a raw cached pointer.)
class Size : public std::enable_shared_from_this<Size> {
public:
  enum class Kind : uint8_t { Const, Var, Plus };

  /// Interns the constant size \p Bits in the current TypeArena.
  static SizeRef constant(uint64_t Bits);
  /// Interns a size variable with de Bruijn index \p Idx.
  static SizeRef var(uint32_t Idx);
  /// Interns the canonicalized sum \p L + \p R.
  static SizeRef plus(SizeRef L, SizeRef R);

  Kind kind() const { return K; }
  uint64_t constBits() const {
    assert(K == Kind::Const && "not a constant size");
    return ConstBits;
  }
  uint32_t varIndex() const {
    assert(K == Kind::Var && "not a size variable");
    return VarIdx;
  }
  const SizeRef &lhs() const {
    assert(K == Kind::Plus && "not a sum");
    return LHS;
  }
  const SizeRef &rhs() const {
    assert(K == Kind::Plus && "not a sum");
    return RHS;
  }

  /// The +-normal form, precomputed at intern time.
  const NormalSize &norm() const { return Norm; }
  /// 1 + the largest free size-variable index in this size (0 when closed).
  uint32_t freeBound() const { return FreeBound; }
  /// Structural hash, stable across arenas.
  uint64_t hashValue() const { return H; }
  /// The arena that owns this node (used for memoized judgments). A node
  /// must not be used after its owning arena is destroyed.
  TypeArena *arena() const { return Arena; }

  std::string str() const {
    switch (K) {
    case Kind::Const:
      return std::to_string(ConstBits);
    case Kind::Var:
      return "σ" + std::to_string(VarIdx);
    case Kind::Plus:
      return "(" + LHS->str() + " + " + RHS->str() + ")";
    }
    return "<size>";
  }

private:
  friend class TypeArena;
  friend struct TypeArenaAccess;
  explicit Size(Kind K) : K(K) {}

  Kind K;
  uint64_t ConstBits = 0;
  uint32_t VarIdx = 0;
  SizeRef LHS, RHS;
  NormalSize Norm;
  uint32_t FreeBound = 0;
  uint64_t H = 0;
  TypeArena *Arena = nullptr;
};

/// O(1): the normal form is computed once when the node is interned.
inline const NormalSize &normalizeSize(const SizeRef &S) {
  assert(S && "normalizing a null size");
  return S->norm();
}

/// Structural equality modulo associativity/commutativity of `+`. Sizes are
/// canonicalized at intern time, so this is pointer identity (valid for
/// sizes interned in the same arena; see ir/TypeArena.h).
inline bool sizeEquals(const SizeRef &A, const SizeRef &B) {
  return A.get() == B.get();
}

/// Deep structural equality via normal forms — the pre-interning reference
/// semantics, kept for differential testing against pointer equality.
inline bool structuralSizeEquals(const SizeRef &A, const SizeRef &B) {
  return normalizeSize(A) == normalizeSize(B);
}

/// Returns the constant value of a closed size, asserting closedness.
inline uint64_t closedSizeBits(const SizeRef &S) {
  assert(S && S->norm().isConst() && "size is not closed");
  return S->norm().Const;
}

} // namespace rw::ir

#endif // RICHWASM_IR_SIZE_H
