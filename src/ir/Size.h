//===- ir/Size.h - RichWasm size expressions --------------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sizes (paper §2.1, Fig 2: `sz ::= σ | sz + sz | i`) measure memory slots
/// in *bits*. They appear in struct field declarations, local slot
/// declarations, and as upper bounds on type variables; the type system
/// tracks them to make strong updates safe in flat memory. A size is a
/// constant, a de Bruijn size variable, or a sum.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_IR_SIZE_H
#define RICHWASM_IR_SIZE_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rw::ir {

class Size;
using SizeRef = std::shared_ptr<const Size>;

/// A size expression tree.
class Size {
public:
  enum class Kind : uint8_t { Const, Var, Plus };

  /// Creates the constant size \p Bits.
  static SizeRef constant(uint64_t Bits) {
    auto S = std::make_shared<Size>(Kind::Const);
    S->ConstBits = Bits;
    return S;
  }
  /// Creates a size variable with de Bruijn index \p Idx.
  static SizeRef var(uint32_t Idx) {
    auto S = std::make_shared<Size>(Kind::Var);
    S->VarIdx = Idx;
    return S;
  }
  /// Creates the sum \p L + \p R.
  static SizeRef plus(SizeRef L, SizeRef R) {
    assert(L && R && "plus of null sizes");
    auto S = std::make_shared<Size>(Kind::Plus);
    S->LHS = std::move(L);
    S->RHS = std::move(R);
    return S;
  }

  explicit Size(Kind K) : K(K) {}

  Kind kind() const { return K; }
  uint64_t constBits() const {
    assert(K == Kind::Const && "not a constant size");
    return ConstBits;
  }
  uint32_t varIndex() const {
    assert(K == Kind::Var && "not a size variable");
    return VarIdx;
  }
  const SizeRef &lhs() const {
    assert(K == Kind::Plus && "not a sum");
    return LHS;
  }
  const SizeRef &rhs() const {
    assert(K == Kind::Plus && "not a sum");
    return RHS;
  }

  std::string str() const {
    switch (K) {
    case Kind::Const:
      return std::to_string(ConstBits);
    case Kind::Var:
      return "σ" + std::to_string(VarIdx);
    case Kind::Plus:
      return "(" + LHS->str() + " + " + RHS->str() + ")";
    }
    return "<size>";
  }

private:
  Kind K;
  uint64_t ConstBits = 0;
  uint32_t VarIdx = 0;
  SizeRef LHS, RHS;
};

/// The normal form of a size: a constant plus a sorted multiset of size
/// variables. Two sizes are structurally equal iff their normal forms match.
struct NormalSize {
  uint64_t Const = 0;
  std::vector<uint32_t> Vars; ///< Sorted, with multiplicity.

  bool operator==(const NormalSize &O) const {
    return Const == O.Const && Vars == O.Vars;
  }

  /// True when this size is a closed constant (no variables).
  bool isConst() const { return Vars.empty(); }
};

/// Flattens \p S into its normal form.
inline NormalSize normalizeSize(const SizeRef &S) {
  NormalSize N;
  // Iterative worklist to avoid deep recursion on pathological sums.
  std::vector<const Size *> Work = {S.get()};
  while (!Work.empty()) {
    const Size *Cur = Work.back();
    Work.pop_back();
    assert(Cur && "null size in normalization");
    switch (Cur->kind()) {
    case Size::Kind::Const:
      N.Const += Cur->constBits();
      break;
    case Size::Kind::Var:
      N.Vars.push_back(Cur->varIndex());
      break;
    case Size::Kind::Plus:
      Work.push_back(Cur->lhs().get());
      Work.push_back(Cur->rhs().get());
      break;
    }
  }
  std::sort(N.Vars.begin(), N.Vars.end());
  return N;
}

/// Structural equality modulo associativity/commutativity of `+`.
inline bool sizeEquals(const SizeRef &A, const SizeRef &B) {
  return normalizeSize(A) == normalizeSize(B);
}

/// Returns the constant value of a closed size, asserting closedness.
inline uint64_t closedSizeBits(const SizeRef &S) {
  NormalSize N = normalizeSize(S);
  assert(N.isConst() && "size is not closed");
  return N.Const;
}

} // namespace rw::ir

#endif // RICHWASM_IR_SIZE_H
