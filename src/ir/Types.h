//===- ir/Types.h - RichWasm value, heap, and function types ----*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The RichWasm type grammar of Fig 2:
///
///   pretypes  p ::= unit | np | (τ*) | ref π ℓ ψ | ptr ℓ | cap π ℓ ψ
///                 | rec q ⪯ α. τ | ∃ρ. τ | coderef χ | own ℓ | α
///   types     τ ::= p^q
///   heap      ψ ::= (variant τ*) | (struct (τ,sz)*) | (array τ)
///                 | (∃ q ⪯ α ≲ sz. τ)
///   functions χ ::= ∀κ*. τ1* → τ2*
///
/// Types are immutable shared trees. Variables of every kind (location,
/// size, qualifier, pretype) are de Bruijn indices in their own index
/// space, mirroring the paper's separate context components. Pretypes form
/// an LLVM-style class hierarchy discriminated by PretypeKind, usable with
/// isa/cast/dyn_cast from support/Casting.h.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_IR_TYPES_H
#define RICHWASM_IR_TYPES_H

#include "ir/Loc.h"
#include "ir/Num.h"
#include "ir/Qual.h"
#include "ir/Size.h"
#include "support/Casting.h"

#include <memory>
#include <utility>
#include <vector>

namespace rw::ir {

class Pretype;
class HeapType;
class FunType;
using PretypeRef = std::shared_ptr<const Pretype>;
using HeapTypeRef = std::shared_ptr<const HeapType>;
using FunTypeRef = std::shared_ptr<const FunType>;

/// A value type τ = p^q: a pretype annotated with a qualifier.
struct Type {
  PretypeRef P;
  Qual Q = Qual::unr();

  Type() = default;
  Type(PretypeRef P, Qual Q) : P(std::move(P)), Q(Q) {}

  bool valid() const { return P != nullptr; }
};

/// Read / read-write memory privilege (π in the paper).
enum class Privilege : uint8_t { R = 0, RW = 1 };

//===----------------------------------------------------------------------===//
// Pretypes
//===----------------------------------------------------------------------===//

enum class PretypeKind : uint8_t {
  Unit,
  Num,
  Var,
  Skolem,
  Prod,
  Ref,
  Ptr,
  Cap,
  Own,
  Rec,
  ExLoc,
  Coderef,
};

/// Base class of all pretypes.
class Pretype {
public:
  PretypeKind kind() const { return K; }
  virtual ~Pretype() = default;

protected:
  explicit Pretype(PretypeKind K) : K(K) {}

private:
  PretypeKind K;
};

/// The unit pretype; its only value is `()` and its size is 0.
class UnitPT : public Pretype {
public:
  UnitPT() : Pretype(PretypeKind::Unit) {}
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Unit;
  }
};

/// A numeric pretype np.
class NumPT : public Pretype {
public:
  explicit NumPT(NumType NT) : Pretype(PretypeKind::Num), NT(NT) {}
  NumType numType() const { return NT; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Num;
  }

private:
  NumType NT;
};

/// A pretype variable α (de Bruijn index into the type context).
class VarPT : public Pretype {
public:
  explicit VarPT(uint32_t Idx) : Pretype(PretypeKind::Var), Idx(Idx) {}
  uint32_t index() const { return Idx; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Var;
  }

private:
  uint32_t Idx;
};

/// A skolem pretype — an eigenvariable the type checker introduces when
/// opening a heap existential (`exist.unpack α. e*`). It remembers the
/// binder's constraints so entailment and sizing can use them. Skolems
/// never occur in programs or at runtime.
class SkolemPT : public Pretype {
public:
  SkolemPT(uint64_t Id, Qual QualLower, SizeRef SizeUpper, bool NoCaps)
      : Pretype(PretypeKind::Skolem), Id(Id), QualLower(QualLower),
        SizeUpper(std::move(SizeUpper)), NoCaps(NoCaps) {}
  uint64_t id() const { return Id; }
  Qual qualLower() const { return QualLower; }
  const SizeRef &sizeUpper() const { return SizeUpper; }
  bool noCaps() const { return NoCaps; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Skolem;
  }

private:
  uint64_t Id;
  Qual QualLower;
  SizeRef SizeUpper;
  bool NoCaps;
};

/// A tuple pretype (τ*). Produced by seq.group; consumed by seq.ungroup.
class ProdPT : public Pretype {
public:
  explicit ProdPT(std::vector<Type> Elems)
      : Pretype(PretypeKind::Prod), Elems(std::move(Elems)) {}
  const std::vector<Type> &elems() const { return Elems; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Prod;
  }

private:
  std::vector<Type> Elems;
};

/// A reference `ref π ℓ ψ`: the fusion of a capability and a pointer to
/// location ℓ, holding heap type ψ with privilege π.
class RefPT : public Pretype {
public:
  RefPT(Privilege Priv, Loc L, HeapTypeRef HT)
      : Pretype(PretypeKind::Ref), Priv(Priv), L(L), HT(std::move(HT)) {}
  Privilege privilege() const { return Priv; }
  const Loc &loc() const { return L; }
  const HeapTypeRef &heapType() const { return HT; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Ref;
  }

private:
  Privilege Priv;
  Loc L;
  HeapTypeRef HT;
};

/// A bare pointer `ptr ℓ`: names a location but confers no access.
class PtrPT : public Pretype {
public:
  explicit PtrPT(Loc L) : Pretype(PretypeKind::Ptr), L(L) {}
  const Loc &loc() const { return L; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Ptr;
  }

private:
  Loc L;
};

/// A capability `cap π ℓ ψ`: static ownership of ℓ, erased at runtime.
class CapPT : public Pretype {
public:
  CapPT(Privilege Priv, Loc L, HeapTypeRef HT)
      : Pretype(PretypeKind::Cap), Priv(Priv), L(L), HT(std::move(HT)) {}
  Privilege privilege() const { return Priv; }
  const Loc &loc() const { return L; }
  const HeapTypeRef &heapType() const { return HT; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Cap;
  }

private:
  Privilege Priv;
  Loc L;
  HeapTypeRef HT;
};

/// An ownership token `own ℓ`: write ownership split off a rw capability.
class OwnPT : public Pretype {
public:
  explicit OwnPT(Loc L) : Pretype(PretypeKind::Own), L(L) {}
  const Loc &loc() const { return L; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Own;
  }

private:
  Loc L;
};

/// An isorecursive type `rec q ⪯ α. τ`. The bound q constrains the
/// qualifiers of the positions the recursive variable may be unfolded into.
/// Binds one pretype variable in Body.
class RecPT : public Pretype {
public:
  RecPT(Qual Bound, Type Body)
      : Pretype(PretypeKind::Rec), Bound(Bound), Body(std::move(Body)) {}
  Qual bound() const { return Bound; }
  const Type &body() const { return Body; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Rec;
  }

private:
  Qual Bound;
  Type Body;
};

/// Existential abstraction over a location: `∃ρ. τ`. Binds one location
/// variable in Body.
class ExLocPT : public Pretype {
public:
  explicit ExLocPT(Type Body)
      : Pretype(PretypeKind::ExLoc), Body(std::move(Body)) {}
  const Type &body() const { return Body; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::ExLoc;
  }

private:
  Type Body;
};

/// A code pointer type `coderef χ`.
class CoderefPT : public Pretype {
public:
  explicit CoderefPT(FunTypeRef FT)
      : Pretype(PretypeKind::Coderef), FT(std::move(FT)) {}
  const FunTypeRef &funType() const { return FT; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Coderef;
  }

private:
  FunTypeRef FT;
};

//===----------------------------------------------------------------------===//
// Heap types
//===----------------------------------------------------------------------===//

enum class HeapTypeKind : uint8_t { Variant, Struct, Array, Ex };

/// Base class of heap types ψ, describing the structured contents of one
/// memory cell.
class HeapType {
public:
  HeapTypeKind kind() const { return K; }
  virtual ~HeapType() = default;

protected:
  explicit HeapType(HeapTypeKind K) : K(K) {}

private:
  HeapTypeKind K;
};

/// `(variant τ*)` — a tagged sum over the listed case types.
class VariantHT : public HeapType {
public:
  explicit VariantHT(std::vector<Type> Cases)
      : HeapType(HeapTypeKind::Variant), Cases(std::move(Cases)) {}
  const std::vector<Type> &cases() const { return Cases; }
  static bool classof(const HeapType *H) {
    return H->kind() == HeapTypeKind::Variant;
  }

private:
  std::vector<Type> Cases;
};

/// One struct field: its current type and its *allocated slot size*. The
/// slot size persists across strong updates and bounds the types that may
/// be swapped into the field.
struct StructField {
  Type T;
  SizeRef Slot;
};

/// `(struct (τ,sz)*)`.
class StructHT : public HeapType {
public:
  explicit StructHT(std::vector<StructField> Fields)
      : HeapType(HeapTypeKind::Struct), Fields(std::move(Fields)) {}
  const std::vector<StructField> &fields() const { return Fields; }
  static bool classof(const HeapType *H) {
    return H->kind() == HeapTypeKind::Struct;
  }

private:
  std::vector<StructField> Fields;
};

/// `(array τ)` — a variable-length array of τ.
class ArrayHT : public HeapType {
public:
  explicit ArrayHT(Type Elem)
      : HeapType(HeapTypeKind::Array), Elem(std::move(Elem)) {}
  const Type &elem() const { return Elem; }
  static bool classof(const HeapType *H) {
    return H->kind() == HeapTypeKind::Array;
  }

private:
  Type Elem;
};

/// `(∃ q ⪯ α ≲ sz. τ)` — a heap-allocated existential package abstracting a
/// pretype with a qualifier lower bound and a size upper bound. Binds one
/// pretype variable in Body.
class ExHT : public HeapType {
public:
  ExHT(Qual QualLower, SizeRef SizeUpper, Type Body)
      : HeapType(HeapTypeKind::Ex), QualLower(QualLower),
        SizeUpper(std::move(SizeUpper)), Body(std::move(Body)) {}
  Qual qualLower() const { return QualLower; }
  const SizeRef &sizeUpper() const { return SizeUpper; }
  const Type &body() const { return Body; }
  static bool classof(const HeapType *H) {
    return H->kind() == HeapTypeKind::Ex;
  }

private:
  Qual QualLower;
  SizeRef SizeUpper;
  Type Body;
};

//===----------------------------------------------------------------------===//
// Quantifiers and function types
//===----------------------------------------------------------------------===//

/// The four binder kinds a function type may quantify over.
enum class QuantKind : uint8_t { Loc, Size, Qual, Type };

/// One quantifier κ with its constraints. Constraint expressions may refer
/// to *earlier* binders in the same quantifier list.
struct Quant {
  QuantKind K = QuantKind::Loc;

  // For K == Size: sz* ≤ σ ≤ sz*.
  std::vector<SizeRef> SizeLower, SizeUpper;
  // For K == Qual: q* ⪯ δ ⪯ q*.
  std::vector<Qual> QualLower, QualUpper;
  // For K == Type: q ⪯ α (c?) ≲ sz.
  Qual TypeQualLower = Qual::unr();
  SizeRef TypeSizeUpper;
  /// True when α is guaranteed capability-free and may therefore be stored
  /// in garbage-collected memory (the absence of the paper's `c` marker).
  bool TypeNoCaps = true;

  static Quant loc() {
    Quant Q;
    Q.K = QuantKind::Loc;
    return Q;
  }
  static Quant size(std::vector<SizeRef> Lower = {},
                    std::vector<SizeRef> Upper = {}) {
    Quant Q;
    Q.K = QuantKind::Size;
    Q.SizeLower = std::move(Lower);
    Q.SizeUpper = std::move(Upper);
    return Q;
  }
  static Quant qual(std::vector<Qual> Lower = {},
                    std::vector<Qual> Upper = {}) {
    Quant Q;
    Q.K = QuantKind::Qual;
    Q.QualLower = std::move(Lower);
    Q.QualUpper = std::move(Upper);
    return Q;
  }
  static Quant type(Qual QualLower, SizeRef SizeUpper, bool NoCaps = true) {
    Quant Q;
    Q.K = QuantKind::Type;
    Q.TypeQualLower = QualLower;
    Q.TypeSizeUpper = std::move(SizeUpper);
    Q.TypeNoCaps = NoCaps;
    return Q;
  }
};

/// An instantiation argument for one quantifier (z/κ at call sites).
struct Index {
  QuantKind K = QuantKind::Loc;
  Loc L = Loc::var(0);
  SizeRef Sz;
  Qual Q = Qual::unr();
  PretypeRef P;

  static Index loc(Loc L) {
    Index I;
    I.K = QuantKind::Loc;
    I.L = L;
    return I;
  }
  static Index size(SizeRef S) {
    Index I;
    I.K = QuantKind::Size;
    I.Sz = std::move(S);
    return I;
  }
  static Index qual(Qual Q) {
    Index I;
    I.K = QuantKind::Qual;
    I.Q = Q;
    return I;
  }
  static Index pretype(PretypeRef P) {
    Index I;
    I.K = QuantKind::Type;
    I.P = std::move(P);
    return I;
  }
};

/// A monomorphic arrow type tf = τ1* → τ2*.
struct ArrowType {
  std::vector<Type> Params;
  std::vector<Type> Results;
};

/// A (possibly polymorphic) function type χ = ∀κ*. τ1* → τ2*. The
/// quantifier list binds left-to-right: the *last* binder of each kind has
/// de Bruijn index 0 inside the arrow.
class FunType {
public:
  FunType(std::vector<Quant> Quants, ArrowType Arrow)
      : Quants(std::move(Quants)), Arrow(std::move(Arrow)) {}

  const std::vector<Quant> &quants() const { return Quants; }
  const ArrowType &arrow() const { return Arrow; }

  static FunTypeRef get(std::vector<Quant> Quants, ArrowType Arrow) {
    return std::make_shared<FunType>(std::move(Quants), std::move(Arrow));
  }

private:
  std::vector<Quant> Quants;
  ArrowType Arrow;
};

//===----------------------------------------------------------------------===//
// Factory helpers
//===----------------------------------------------------------------------===//

inline PretypeRef unitPT() { return std::make_shared<UnitPT>(); }
inline PretypeRef numPT(NumType NT) { return std::make_shared<NumPT>(NT); }
inline PretypeRef varPT(uint32_t Idx) { return std::make_shared<VarPT>(Idx); }
inline PretypeRef skolemPT(uint64_t Id, Qual QualLower, SizeRef SizeUpper,
                           bool NoCaps) {
  return std::make_shared<SkolemPT>(Id, QualLower, std::move(SizeUpper),
                                    NoCaps);
}
inline PretypeRef prodPT(std::vector<Type> Elems) {
  return std::make_shared<ProdPT>(std::move(Elems));
}
inline PretypeRef refPT(Privilege Priv, Loc L, HeapTypeRef HT) {
  return std::make_shared<RefPT>(Priv, L, std::move(HT));
}
inline PretypeRef ptrPT(Loc L) { return std::make_shared<PtrPT>(L); }
inline PretypeRef capPT(Privilege Priv, Loc L, HeapTypeRef HT) {
  return std::make_shared<CapPT>(Priv, L, std::move(HT));
}
inline PretypeRef ownPT(Loc L) { return std::make_shared<OwnPT>(L); }
inline PretypeRef recPT(Qual Bound, Type Body) {
  return std::make_shared<RecPT>(Bound, std::move(Body));
}
inline PretypeRef exLocPT(Type Body) {
  return std::make_shared<ExLocPT>(std::move(Body));
}
inline PretypeRef coderefPT(FunTypeRef FT) {
  return std::make_shared<CoderefPT>(std::move(FT));
}

inline HeapTypeRef variantHT(std::vector<Type> Cases) {
  return std::make_shared<VariantHT>(std::move(Cases));
}
inline HeapTypeRef structHT(std::vector<StructField> Fields) {
  return std::make_shared<StructHT>(std::move(Fields));
}
inline HeapTypeRef arrayHT(Type Elem) {
  return std::make_shared<ArrayHT>(std::move(Elem));
}
inline HeapTypeRef exHT(Qual QualLower, SizeRef SizeUpper, Type Body) {
  return std::make_shared<ExHT>(QualLower, std::move(SizeUpper),
                                std::move(Body));
}

inline Type unitT(Qual Q = Qual::unr()) { return Type(unitPT(), Q); }
inline Type numT(NumType NT, Qual Q = Qual::unr()) {
  return Type(numPT(NT), Q);
}
inline Type i32T(Qual Q = Qual::unr()) { return numT(NumType::I32, Q); }
inline Type i64T(Qual Q = Qual::unr()) { return numT(NumType::I64, Q); }

/// Structural type equality (alpha-equivalence is just index equality under
/// de Bruijn representation). Sizes compare modulo +-normalization.
bool typeEquals(const Type &A, const Type &B);
bool pretypeEquals(const Pretype &A, const Pretype &B);
bool heapTypeEquals(const HeapType &A, const HeapType &B);
bool funTypeEquals(const FunType &A, const FunType &B);
bool arrowEquals(const ArrowType &A, const ArrowType &B);
bool quantEquals(const Quant &A, const Quant &B);

} // namespace rw::ir

#endif // RICHWASM_IR_TYPES_H
