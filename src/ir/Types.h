//===- ir/Types.h - RichWasm value, heap, and function types ----*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The RichWasm type grammar of Fig 2:
///
///   pretypes  p ::= unit | np | (τ*) | ref π ℓ ψ | ptr ℓ | cap π ℓ ψ
///                 | rec q ⪯ α. τ | ∃ρ. τ | coderef χ | own ℓ | α
///   types     τ ::= p^q
///   heap      ψ ::= (variant τ*) | (struct (τ,sz)*) | (array τ)
///                 | (∃ q ⪯ α ≲ sz. τ)
///   functions χ ::= ∀κ*. τ1* → τ2*
///
/// Types are immutable *hash-consed* trees: every Pretype/HeapType/FunType
/// node is interned by a TypeArena (ir/TypeArena.h), so one structural
/// identity has exactly one node per arena and structural equality is
/// pointer comparison (`typeEquals` & friends below). Each node carries
/// precomputed metadata — free-variable bounds per binder kind, occurrence
/// flags, a structural hash, and no_caps bits — that the rewriter, sizing,
/// and no_caps judgments use to short-circuit and memoize.
///
/// Variables of every kind (location, size, qualifier, pretype) are de
/// Bruijn indices in their own index space, mirroring the paper's separate
/// context components. Pretypes form an LLVM-style class hierarchy
/// discriminated by PretypeKind, usable with isa/cast/dyn_cast from
/// support/Casting.h.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_IR_TYPES_H
#define RICHWASM_IR_TYPES_H

#include "ir/Loc.h"
#include "ir/Num.h"
#include "ir/Qual.h"
#include "ir/Size.h"
#include "support/Casting.h"

#include <atomic>
#include <memory>
#include <utility>
#include <vector>

namespace rw::ir {

class Pretype;
class HeapType;
class FunType;
class TypeArena;
struct TypeArenaAccess;
using PretypeRef = std::shared_ptr<const Pretype>;
using HeapTypeRef = std::shared_ptr<const HeapType>;
using FunTypeRef = std::shared_ptr<const FunType>;

/// Per-kind upper bounds on the free de Bruijn variables of a node: for
/// each binder kind, 1 + the largest free index occurring in the subtree
/// (0 = closed with respect to that kind). Precomputed at intern time;
/// rewriters use it to prove a shift/substitution is the identity without
/// walking the tree.
struct FreeBounds {
  uint32_t Loc = 0;
  uint32_t Size = 0;
  uint32_t Qual = 0;
  uint32_t Type = 0;
};

/// Occurrence flags precomputed per node (OR over the whole subtree).
enum TypeNodeFlags : uint8_t {
  /// Mentions a skolem location (checker eigenvariable of mem.unpack).
  TF_HasSkolemLoc = 1u << 0,
  /// Mentions a concrete (runtime) location.
  TF_HasConcreteLoc = 1u << 1,
  /// Mentions a skolem pretype (checker eigenvariable of exist.unpack).
  TF_HasSkolemType = 1u << 2,
};

/// A value type τ = p^q: a pretype annotated with a qualifier. This is the
/// *owning* handle: it keeps the pretype node alive via shared_ptr and is
/// what module structure (instruction annotations, ir::Module fields,
/// serialized records, cache artifacts) stores.
struct Type {
  PretypeRef P;
  Qual Q = Qual::unr();

  Type() = default;
  Type(PretypeRef P, Qual Q) : P(std::move(P)), Q(Q) {}

  bool valid() const { return P != nullptr; }
};

namespace detail {
/// Debug-build arena-lifetime check behind TypeRef: asserts that a node
/// being borrowed belongs to the arena installed on this thread
/// (ArenaScope / TypeArena::current()), so a borrow whose arena is not the
/// active one — the precursor of a dangling borrow — is a loud assert
/// instead of silent UB. Compiled out under NDEBUG. Defined in
/// TypeArena.cpp.
#ifndef NDEBUG
void assertBorrowedFromCurrentArena(const Pretype *P);
#else
inline void assertBorrowedFromCurrentArena(const Pretype *) {}
#endif
} // namespace detail

/// A *borrowed* (non-owning) view of a value type: a raw pointer to an
/// arena-interned pretype plus the qualifier. The admission hot path — the
/// checker's operand stack, local environments, InstInfo annotations, and
/// the lowering's type traffic — runs on these views instead of refcounted
/// Types: every pretype the pipeline touches is interned in a TypeArena
/// whose lifetime strictly outlives any check/lower of its module (the
/// arena's intern table owns the node), so the shared_ptr bumps that
/// dominated the F7 profile are pure overhead there.
///
/// Lifetime contract (DESIGN.md §9): a TypeRef (and anything holding one,
/// e.g. an InfoMap) is valid while (a) the owning arena is alive and (b)
/// no TypeArena::rollback* past the node's intern point has run. Ownership
/// boundaries — module structure, serialization, cache artifacts — keep
/// owning Types; cross the boundary with own().
struct TypeRef {
  const Pretype *P = nullptr;
  Qual Q = Qual::unr();

  TypeRef() = default;
  TypeRef(const Pretype *P, Qual Q) : P(P), Q(Q) {
#ifndef NDEBUG
    detail::assertBorrowedFromCurrentArena(P);
#endif
  }
  /*implicit*/ TypeRef(const Type &T) : TypeRef(T.P.get(), T.Q) {}

  bool valid() const { return P != nullptr; }

  /// Re-owns the node for an ownership boundary (one refcount bump via the
  /// node's enable_shared_from_this). Defined below Pretype.
  inline Type own() const;
};

/// Read / read-write memory privilege (π in the paper).
enum class Privilege : uint8_t { R = 0, RW = 1 };

//===----------------------------------------------------------------------===//
// Pretypes
//===----------------------------------------------------------------------===//

enum class PretypeKind : uint8_t {
  Unit,
  Num,
  Var,
  Skolem,
  Prod,
  Ref,
  Ptr,
  Cap,
  Own,
  Rec,
  ExLoc,
  Coderef,
};

/// Base class of all pretypes. Construct via TypeArena (or the free factory
/// helpers below, which intern into the current arena) — never directly —
/// so that pointer identity coincides with structural identity.
/// (enable_shared_from_this lets the arena's lock-free leaf/memo fast paths
/// hand out owning references from raw cached pointers.)
class Pretype : public std::enable_shared_from_this<Pretype> {
public:
  PretypeKind kind() const { return K; }
  virtual ~Pretype() = default;

  /// Free-variable bounds per binder kind (intern-time metadata).
  const FreeBounds &freeBounds() const { return FB; }
  /// OR of TypeNodeFlags over the subtree.
  uint8_t flags() const { return Flags; }
  /// Structural hash, stable across arenas.
  uint64_t hashValue() const { return H; }
  /// The arena that owns this node. A node must not be used after its
  /// owning arena is destroyed.
  TypeArena *arena() const { return Arena; }

  /// The value of no_caps when every free pretype variable in scope is
  /// itself capability-free (an upper bound: flipping a variable's flag to
  /// "may hold caps" can only turn the predicate false).
  bool noCapsIfAllVarsFree() const { return NoCapsIfTrue; }
  /// Whether no_caps actually depends on the free-variable flags; when
  /// false, noCapsIfAllVarsFree() is the answer in every context.
  bool noCapsDependsOnVars() const { return NoCapsDepends; }

protected:
  explicit Pretype(PretypeKind K) : K(K) {}

private:
  friend class TypeArena;
  friend struct TypeArenaAccess;
  PretypeKind K;
  uint8_t Flags = 0;
  bool NoCapsIfTrue = true;
  bool NoCapsDepends = false;
  FreeBounds FB;
  uint64_t H = 0;
  TypeArena *Arena = nullptr;
  /// Lock-free fast path of TypeArena::closedSizeOf: the canonical size of
  /// a closed pretype, owned (kept alive) by the arena's memo table. A
  /// benign write-once race: every writer stores the same canonical node.
  mutable std::atomic<const Size *> ClosedSizeMemo{nullptr};
  /// Success bits of the context-free well-formedness judgment (see
  /// TypeArena::isKnownWfPretype): bit0 = wf at unr, bit1 = wf at lin.
  mutable std::atomic<uint8_t> WfMemo{0};
};

inline Type TypeRef::own() const { return Type(P->shared_from_this(), Q); }

/// The unit pretype; its only value is `()` and its size is 0.
class UnitPT : public Pretype {
private:
  friend class TypeArena;
  friend struct TypeArenaAccess;
  UnitPT() : Pretype(PretypeKind::Unit) {}

public:
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Unit;
  }
};

/// A numeric pretype np.
class NumPT : public Pretype {
private:
  friend class TypeArena;
  friend struct TypeArenaAccess;
  explicit NumPT(NumType NT) : Pretype(PretypeKind::Num), NT(NT) {}

public:
  NumType numType() const { return NT; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Num;
  }

private:
  NumType NT;
};

/// A pretype variable α (de Bruijn index into the type context).
class VarPT : public Pretype {
private:
  friend class TypeArena;
  friend struct TypeArenaAccess;
  explicit VarPT(uint32_t Idx) : Pretype(PretypeKind::Var), Idx(Idx) {}

public:
  uint32_t index() const { return Idx; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Var;
  }

private:
  uint32_t Idx;
};

/// A skolem pretype — an eigenvariable the type checker introduces when
/// opening a heap existential (`exist.unpack α. e*`). It remembers the
/// binder's constraints so entailment and sizing can use them. Skolems
/// never occur in programs or at runtime. A skolem's identity — both for
/// interning and for structural equality — is (Id, bounds): the checker
/// mints per-check-fresh ids, while the lowering reuses id 0 with varying
/// bounds, and the bounds keep those distinct.
class SkolemPT : public Pretype {
private:
  friend class TypeArena;
  friend struct TypeArenaAccess;
  SkolemPT(uint64_t Id, Qual QualLower, SizeRef SizeUpper, bool NoCaps)
      : Pretype(PretypeKind::Skolem), Id(Id), QualLower(QualLower),
        SizeUpper(std::move(SizeUpper)), NoCaps(NoCaps) {}

public:
  uint64_t id() const { return Id; }
  Qual qualLower() const { return QualLower; }
  const SizeRef &sizeUpper() const { return SizeUpper; }
  bool noCaps() const { return NoCaps; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Skolem;
  }

private:
  uint64_t Id;
  Qual QualLower;
  SizeRef SizeUpper;
  bool NoCaps;
};

/// A tuple pretype (τ*). Produced by seq.group; consumed by seq.ungroup.
class ProdPT : public Pretype {
private:
  friend class TypeArena;
  friend struct TypeArenaAccess;
  explicit ProdPT(std::vector<Type> Elems)
      : Pretype(PretypeKind::Prod), Elems(std::move(Elems)) {}

public:
  const std::vector<Type> &elems() const { return Elems; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Prod;
  }

private:
  std::vector<Type> Elems;
};

/// A reference `ref π ℓ ψ`: the fusion of a capability and a pointer to
/// location ℓ, holding heap type ψ with privilege π.
class RefPT : public Pretype {
private:
  friend class TypeArena;
  friend struct TypeArenaAccess;
  RefPT(Privilege Priv, Loc L, HeapTypeRef HT)
      : Pretype(PretypeKind::Ref), Priv(Priv), L(L), HT(std::move(HT)) {}

public:
  Privilege privilege() const { return Priv; }
  const Loc &loc() const { return L; }
  const HeapTypeRef &heapType() const { return HT; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Ref;
  }

private:
  Privilege Priv;
  Loc L;
  HeapTypeRef HT;
};

/// A bare pointer `ptr ℓ`: names a location but confers no access.
class PtrPT : public Pretype {
private:
  friend class TypeArena;
  friend struct TypeArenaAccess;
  explicit PtrPT(Loc L) : Pretype(PretypeKind::Ptr), L(L) {}

public:
  const Loc &loc() const { return L; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Ptr;
  }

private:
  Loc L;
};

/// A capability `cap π ℓ ψ`: static ownership of ℓ, erased at runtime.
class CapPT : public Pretype {
private:
  friend class TypeArena;
  friend struct TypeArenaAccess;
  CapPT(Privilege Priv, Loc L, HeapTypeRef HT)
      : Pretype(PretypeKind::Cap), Priv(Priv), L(L), HT(std::move(HT)) {}

public:
  Privilege privilege() const { return Priv; }
  const Loc &loc() const { return L; }
  const HeapTypeRef &heapType() const { return HT; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Cap;
  }

private:
  Privilege Priv;
  Loc L;
  HeapTypeRef HT;
};

/// An ownership token `own ℓ`: write ownership split off a rw capability.
class OwnPT : public Pretype {
private:
  friend class TypeArena;
  friend struct TypeArenaAccess;
  explicit OwnPT(Loc L) : Pretype(PretypeKind::Own), L(L) {}

public:
  const Loc &loc() const { return L; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Own;
  }

private:
  Loc L;
};

/// An isorecursive type `rec q ⪯ α. τ`. The bound q constrains the
/// qualifiers of the positions the recursive variable may be unfolded into.
/// Binds one pretype variable in Body.
class RecPT : public Pretype {
private:
  friend class TypeArena;
  friend struct TypeArenaAccess;
  RecPT(Qual Bound, Type Body)
      : Pretype(PretypeKind::Rec), Bound(Bound), Body(std::move(Body)) {}

public:
  Qual bound() const { return Bound; }
  const Type &body() const { return Body; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Rec;
  }

private:
  Qual Bound;
  Type Body;
};

/// Existential abstraction over a location: `∃ρ. τ`. Binds one location
/// variable in Body.
class ExLocPT : public Pretype {
private:
  friend class TypeArena;
  friend struct TypeArenaAccess;
  explicit ExLocPT(Type Body)
      : Pretype(PretypeKind::ExLoc), Body(std::move(Body)) {}

public:
  const Type &body() const { return Body; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::ExLoc;
  }

private:
  Type Body;
};

/// A code pointer type `coderef χ`.
class CoderefPT : public Pretype {
private:
  friend class TypeArena;
  friend struct TypeArenaAccess;
  explicit CoderefPT(FunTypeRef FT)
      : Pretype(PretypeKind::Coderef), FT(std::move(FT)) {}

public:
  const FunTypeRef &funType() const { return FT; }
  static bool classof(const Pretype *P) {
    return P->kind() == PretypeKind::Coderef;
  }

private:
  FunTypeRef FT;
};

//===----------------------------------------------------------------------===//
// Heap types
//===----------------------------------------------------------------------===//

enum class HeapTypeKind : uint8_t { Variant, Struct, Array, Ex };

/// Base class of heap types ψ, describing the structured contents of one
/// memory cell. Interned like pretypes; carries the same metadata.
class HeapType {
public:
  HeapTypeKind kind() const { return K; }
  virtual ~HeapType() = default;

  const FreeBounds &freeBounds() const { return FB; }
  uint8_t flags() const { return Flags; }
  uint64_t hashValue() const { return H; }
  TypeArena *arena() const { return Arena; }
  bool noCapsIfAllVarsFree() const { return NoCapsIfTrue; }
  bool noCapsDependsOnVars() const { return NoCapsDepends; }

protected:
  explicit HeapType(HeapTypeKind K) : K(K) {}

private:
  friend class TypeArena;
  friend struct TypeArenaAccess;
  HeapTypeKind K;
  uint8_t Flags = 0;
  bool NoCapsIfTrue = true;
  bool NoCapsDepends = false;
  FreeBounds FB;
  uint64_t H = 0;
  TypeArena *Arena = nullptr;
};

/// `(variant τ*)` — a tagged sum over the listed case types.
class VariantHT : public HeapType {
private:
  friend class TypeArena;
  friend struct TypeArenaAccess;
  explicit VariantHT(std::vector<Type> Cases)
      : HeapType(HeapTypeKind::Variant), Cases(std::move(Cases)) {}

public:
  const std::vector<Type> &cases() const { return Cases; }
  static bool classof(const HeapType *H) {
    return H->kind() == HeapTypeKind::Variant;
  }

private:
  std::vector<Type> Cases;
};

/// One struct field: its current type and its *allocated slot size*. The
/// slot size persists across strong updates and bounds the types that may
/// be swapped into the field.
struct StructField {
  Type T;
  SizeRef Slot;
};

/// Borrowed view of one struct field (checker scratch for the arena's
/// span-probe interning; same lifetime contract as TypeRef).
struct StructFieldRef {
  TypeRef T;
  const Size *Slot = nullptr;
};

/// `(struct (τ,sz)*)`.
class StructHT : public HeapType {
private:
  friend class TypeArena;
  friend struct TypeArenaAccess;
  explicit StructHT(std::vector<StructField> Fields)
      : HeapType(HeapTypeKind::Struct), Fields(std::move(Fields)) {}

public:
  const std::vector<StructField> &fields() const { return Fields; }
  static bool classof(const HeapType *H) {
    return H->kind() == HeapTypeKind::Struct;
  }

private:
  std::vector<StructField> Fields;
};

/// `(array τ)` — a variable-length array of τ.
class ArrayHT : public HeapType {
private:
  friend class TypeArena;
  friend struct TypeArenaAccess;
  explicit ArrayHT(Type Elem)
      : HeapType(HeapTypeKind::Array), Elem(std::move(Elem)) {}

public:
  const Type &elem() const { return Elem; }
  static bool classof(const HeapType *H) {
    return H->kind() == HeapTypeKind::Array;
  }

private:
  Type Elem;
};

/// `(∃ q ⪯ α ≲ sz. τ)` — a heap-allocated existential package abstracting a
/// pretype with a qualifier lower bound and a size upper bound. Binds one
/// pretype variable in Body.
class ExHT : public HeapType {
private:
  friend class TypeArena;
  friend struct TypeArenaAccess;
  ExHT(Qual QualLower, SizeRef SizeUpper, Type Body)
      : HeapType(HeapTypeKind::Ex), QualLower(QualLower),
        SizeUpper(std::move(SizeUpper)), Body(std::move(Body)) {}

public:
  Qual qualLower() const { return QualLower; }
  const SizeRef &sizeUpper() const { return SizeUpper; }
  const Type &body() const { return Body; }
  static bool classof(const HeapType *H) {
    return H->kind() == HeapTypeKind::Ex;
  }

private:
  Qual QualLower;
  SizeRef SizeUpper;
  Type Body;
};

//===----------------------------------------------------------------------===//
// Quantifiers and function types
//===----------------------------------------------------------------------===//

/// The four binder kinds a function type may quantify over.
enum class QuantKind : uint8_t { Loc, Size, Qual, Type };

/// One quantifier κ with its constraints. Constraint expressions may refer
/// to *earlier* binders in the same quantifier list.
struct Quant {
  QuantKind K = QuantKind::Loc;

  // For K == Size: sz* ≤ σ ≤ sz*.
  std::vector<SizeRef> SizeLower, SizeUpper;
  // For K == Qual: q* ⪯ δ ⪯ q*.
  std::vector<Qual> QualLower, QualUpper;
  // For K == Type: q ⪯ α (c?) ≲ sz.
  Qual TypeQualLower = Qual::unr();
  SizeRef TypeSizeUpper;
  /// True when α is guaranteed capability-free and may therefore be stored
  /// in garbage-collected memory (the absence of the paper's `c` marker).
  bool TypeNoCaps = true;

  static Quant loc() {
    Quant Q;
    Q.K = QuantKind::Loc;
    return Q;
  }
  static Quant size(std::vector<SizeRef> Lower = {},
                    std::vector<SizeRef> Upper = {}) {
    Quant Q;
    Q.K = QuantKind::Size;
    Q.SizeLower = std::move(Lower);
    Q.SizeUpper = std::move(Upper);
    return Q;
  }
  static Quant qual(std::vector<Qual> Lower = {},
                    std::vector<Qual> Upper = {}) {
    Quant Q;
    Q.K = QuantKind::Qual;
    Q.QualLower = std::move(Lower);
    Q.QualUpper = std::move(Upper);
    return Q;
  }
  static Quant type(Qual QualLower, SizeRef SizeUpper, bool NoCaps = true) {
    Quant Q;
    Q.K = QuantKind::Type;
    Q.TypeQualLower = QualLower;
    Q.TypeSizeUpper = std::move(SizeUpper);
    Q.TypeNoCaps = NoCaps;
    return Q;
  }
};

/// An instantiation argument for one quantifier (z/κ at call sites).
struct Index {
  QuantKind K = QuantKind::Loc;
  Loc L = Loc::var(0);
  SizeRef Sz;
  Qual Q = Qual::unr();
  PretypeRef P;

  static Index loc(Loc L) {
    Index I;
    I.K = QuantKind::Loc;
    I.L = L;
    return I;
  }
  static Index size(SizeRef S) {
    Index I;
    I.K = QuantKind::Size;
    I.Sz = std::move(S);
    return I;
  }
  static Index qual(Qual Q) {
    Index I;
    I.K = QuantKind::Qual;
    I.Q = Q;
    return I;
  }
  static Index pretype(PretypeRef P) {
    Index I;
    I.K = QuantKind::Type;
    I.P = std::move(P);
    return I;
  }
};

/// A monomorphic arrow type tf = τ1* → τ2*.
struct ArrowType {
  std::vector<Type> Params;
  std::vector<Type> Results;
};

/// A (possibly polymorphic) function type χ = ∀κ*. τ1* → τ2*. The
/// quantifier list binds left-to-right: the *last* binder of each kind has
/// de Bruijn index 0 inside the arrow. Interned; FunType::get is the
/// canonicalizing constructor.
class FunType {
private:
  friend class TypeArena;
  friend struct TypeArenaAccess;
  FunType(std::vector<Quant> Quants, ArrowType Arrow)
      : Quants(std::move(Quants)), Arrow(std::move(Arrow)) {}

public:
  const std::vector<Quant> &quants() const { return Quants; }
  const ArrowType &arrow() const { return Arrow; }

  const FreeBounds &freeBounds() const { return FB; }
  uint8_t flags() const { return Flags; }
  uint64_t hashValue() const { return H; }
  TypeArena *arena() const { return Arena; }

  /// Interns in the current TypeArena.
  static FunTypeRef get(std::vector<Quant> Quants, ArrowType Arrow);

private:
  std::vector<Quant> Quants;
  ArrowType Arrow;
  uint8_t Flags = 0;
  FreeBounds FB;
  uint64_t H = 0;
  TypeArena *Arena = nullptr;
  /// Success bit of the closed, empty-ambient well-formedness judgment
  /// (see TypeArena::isKnownWfFun).
  mutable std::atomic<uint8_t> WfMemo{0};
};

//===----------------------------------------------------------------------===//
// Factory helpers (intern into the current TypeArena)
//===----------------------------------------------------------------------===//

PretypeRef unitPT();
PretypeRef numPT(NumType NT);
PretypeRef varPT(uint32_t Idx);
PretypeRef skolemPT(uint64_t Id, Qual QualLower, SizeRef SizeUpper,
                    bool NoCaps);
PretypeRef prodPT(std::vector<Type> Elems);
PretypeRef refPT(Privilege Priv, Loc L, HeapTypeRef HT);
PretypeRef ptrPT(Loc L);
PretypeRef capPT(Privilege Priv, Loc L, HeapTypeRef HT);
PretypeRef ownPT(Loc L);
PretypeRef recPT(Qual Bound, Type Body);
PretypeRef exLocPT(Type Body);
PretypeRef coderefPT(FunTypeRef FT);

HeapTypeRef variantHT(std::vector<Type> Cases);
HeapTypeRef structHT(std::vector<StructField> Fields);
HeapTypeRef arrayHT(Type Elem);
HeapTypeRef exHT(Qual QualLower, SizeRef SizeUpper, Type Body);

inline Type unitT(Qual Q = Qual::unr()) { return Type(unitPT(), Q); }
inline Type numT(NumType NT, Qual Q = Qual::unr()) {
  return Type(numPT(NT), Q);
}
inline Type i32T(Qual Q = Qual::unr()) { return numT(NumType::I32, Q); }
inline Type i64T(Qual Q = Qual::unr()) { return numT(NumType::I64, Q); }

//===----------------------------------------------------------------------===//
// Equality
//===----------------------------------------------------------------------===//

/// Structural type equality (alpha-equivalence is just index equality under
/// de Bruijn representation; sizes compare modulo +-normalization). Because
/// every node is hash-consed, these are *pointer comparisons*: within one
/// arena, structurally equal types are the same node. Comparing types from
/// two different arenas yields false even for structurally equal trees —
/// intern interacting modules into a shared arena (the default: all modules
/// use TypeArena::global()). The deep-walking reference implementations
/// survive as structural*Equals in ir/TypeOps.h for differential tests.
inline bool pretypeEquals(const Pretype &A, const Pretype &B) {
  return &A == &B;
}
inline bool typeEquals(const Type &A, const Type &B) {
  return A.P.get() == B.P.get() && A.Q == B.Q;
}
/// Borrowed-view equality; Type converts implicitly, so mixed Type/TypeRef
/// comparisons resolve here too.
inline bool typeEquals(const TypeRef &A, const TypeRef &B) {
  return A.P == B.P && A.Q == B.Q;
}
inline bool heapTypeEquals(const HeapType &A, const HeapType &B) {
  return &A == &B;
}
inline bool funTypeEquals(const FunType &A, const FunType &B) {
  return &A == &B;
}
bool arrowEquals(const ArrowType &A, const ArrowType &B);
bool quantEquals(const Quant &A, const Quant &B);

} // namespace rw::ir

#endif // RICHWASM_IR_TYPES_H
