//===- ir/TypeOps.h - Size metafunction and misc type operations -*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The size metafunction ||τ|| of the paper: computes the (possibly
/// symbolic) number of bits a value of type τ occupies in a slot. Type
/// variables contribute their declared upper bound, looked up in a type
/// context; references, pointers, and code references are one 64-bit word;
/// erased entities (unit, cap, own) are zero bits.
///
/// Both ||τ|| and the no_caps predicate are memoized on the hash-consed
/// nodes: a pretype with no free pretype variables has a context-
/// independent answer, cached per node (sizes in the node's owning arena,
/// no_caps as intern-time bits); open pretypes recurse, with every closed
/// subtree answering in O(1).
///
/// This header also declares the deep-structural equality *reference
/// implementations*. Production equality is pointer comparison on interned
/// nodes (ir/Types.h); these walks exist so differential tests can pin
/// interned equality ≡ structural equality.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_IR_TYPEOPS_H
#define RICHWASM_IR_TYPEOPS_H

#include "ir/Types.h"

#include <vector>

namespace rw::ir {

/// Per-index size upper bounds for the pretype variables in scope,
/// innermost binder first (index 0 = most recently bound).
using TypeVarSizes = std::vector<SizeRef>;

/// Computes ||τ|| under \p Bounds. A rec-bound variable is assigned 64 bits
/// (well-formedness guarantees it only occurs behind a reference, so the
/// value is never consulted for layout). Memoized for closed pretypes.
///
/// The borrowed (`const Pretype *`) entry point returns a borrowed size
/// node — owned by the node's arena like every interned size, valid under
/// the TypeRef lifetime contract. The owning overloads are shims for
/// ownership-boundary callers.
const Size *sizeOfPretypePtr(const Pretype *P, const TypeVarSizes &Bounds);
SizeRef sizeOfPretype(const PretypeRef &P, const TypeVarSizes &Bounds);
inline SizeRef sizeOfType(const Type &T, const TypeVarSizes &Bounds) {
  return sizeOfPretype(T.P, Bounds);
}

namespace detail {
/// The un-memoized recursion behind sizeOfPretype; used by
/// TypeArena::closedSizeOf to fill its cache. Not for general use.
SizeRef sizeOfPretypeRaw(const PretypeRef &P, const TypeVarSizes &Bounds);
} // namespace detail

/// True if the pretype syntactically cannot contain a capability or
/// ownership token (the paper's no_caps predicate). Type variables are
/// capability-free iff their quantifier says so, which \p VarNoCaps
/// records per index (innermost first). O(1) whenever the answer does not
/// depend on the variable flags (precomputed no_caps bits on each node).
/// Core implementations take borrowed nodes; owning shims below.
bool pretypeNoCaps(const Pretype *P, const std::vector<bool> &VarNoCaps);
bool typeNoCaps(TypeRef T, const std::vector<bool> &VarNoCaps);
bool heapTypeNoCaps(const HeapType *H, const std::vector<bool> &VarNoCaps);
inline bool pretypeNoCaps(const PretypeRef &P,
                          const std::vector<bool> &VarNoCaps) {
  return pretypeNoCaps(P.get(), VarNoCaps);
}
inline bool heapTypeNoCaps(const HeapTypeRef &H,
                           const std::vector<bool> &VarNoCaps) {
  return heapTypeNoCaps(H.get(), VarNoCaps);
}

//===----------------------------------------------------------------------===//
// Deep-structural equality — reference implementations (tests only)
//===----------------------------------------------------------------------===//

/// The pre-interning equality semantics: full tree walks, sizes modulo
/// +-normalization, skolems by id. Production code uses the pointer
/// comparisons in ir/Types.h; differential tests check the two agree on
/// types interned in the same arena, and use these to compare types across
/// independent arenas (where pointer identity deliberately fails).
bool structuralTypeEquals(const Type &A, const Type &B);
bool structuralPretypeEquals(const Pretype &A, const Pretype &B);
bool structuralHeapTypeEquals(const HeapType &A, const HeapType &B);
bool structuralFunTypeEquals(const FunType &A, const FunType &B);
bool structuralArrowEquals(const ArrowType &A, const ArrowType &B);
bool structuralQuantEquals(const Quant &A, const Quant &B);

} // namespace rw::ir

#endif // RICHWASM_IR_TYPEOPS_H
