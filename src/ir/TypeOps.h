//===- ir/TypeOps.h - Size metafunction and misc type operations -*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The size metafunction ||τ|| of the paper: computes the (possibly
/// symbolic) number of bits a value of type τ occupies in a slot. Type
/// variables contribute their declared upper bound, looked up in a type
/// context; references, pointers, and code references are one 64-bit word;
/// erased entities (unit, cap, own) are zero bits.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_IR_TYPEOPS_H
#define RICHWASM_IR_TYPEOPS_H

#include "ir/Types.h"

#include <vector>

namespace rw::ir {

/// Per-index size upper bounds for the pretype variables in scope,
/// innermost binder first (index 0 = most recently bound).
using TypeVarSizes = std::vector<SizeRef>;

/// Computes ||τ|| under \p Bounds. A rec-bound variable is assigned 64 bits
/// (well-formedness guarantees it only occurs behind a reference, so the
/// value is never consulted for layout).
SizeRef sizeOfPretype(const PretypeRef &P, const TypeVarSizes &Bounds);
inline SizeRef sizeOfType(const Type &T, const TypeVarSizes &Bounds) {
  return sizeOfPretype(T.P, Bounds);
}

/// True if the pretype syntactically cannot contain a capability or
/// ownership token (the paper's no_caps predicate). Type variables are
/// capability-free iff their quantifier says so, which \p VarNoCaps
/// records per index (innermost first).
bool pretypeNoCaps(const PretypeRef &P, const std::vector<bool> &VarNoCaps);
bool typeNoCaps(const Type &T, const std::vector<bool> &VarNoCaps);
bool heapTypeNoCaps(const HeapTypeRef &H, const std::vector<bool> &VarNoCaps);

} // namespace rw::ir

#endif // RICHWASM_IR_TYPEOPS_H
