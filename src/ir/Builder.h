//===- ir/Builder.h - Convenience factories for RichWasm IR -----*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Terse factory functions for instructions, used by the frontends, tests,
/// examples, and benchmarks. Everything returns shared immutable nodes.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_IR_BUILDER_H
#define RICHWASM_IR_BUILDER_H

#include "ir/Inst.h"
#include "ir/Module.h"

namespace rw::ir::build {

inline ArrowType arrow(std::vector<Type> Params, std::vector<Type> Results) {
  return ArrowType{std::move(Params), std::move(Results)};
}

// Numeric.
inline InstRef iconst(int32_t V) {
  return std::make_shared<NumConstInst>(NumType::I32,
                                        static_cast<uint32_t>(V));
}
inline InstRef uconst(uint32_t V) {
  return std::make_shared<NumConstInst>(NumType::U32, V);
}
inline InstRef i64const(int64_t V) {
  return std::make_shared<NumConstInst>(NumType::I64,
                                        static_cast<uint64_t>(V));
}
inline InstRef numConst(NumType NT, uint64_t Bits) {
  return std::make_shared<NumConstInst>(NT, Bits);
}
inline InstRef binop(NumType NT, BinopKind Op) {
  return std::make_shared<NumBinopInst>(NT, Op);
}
inline InstRef unop(NumType NT, UnopKind Op) {
  return std::make_shared<NumUnopInst>(NT, Op);
}
inline InstRef relop(NumType NT, RelopKind Op) {
  return std::make_shared<NumRelopInst>(NT, Op);
}
inline InstRef testop(NumType NT) {
  return std::make_shared<NumTestopInst>(NT, TestopKind::Eqz);
}
inline InstRef cvt(NumType From, NumType To,
                   CvtopKind Op = CvtopKind::Convert) {
  return std::make_shared<NumCvtInst>(From, To, Op);
}
inline InstRef addI32() { return binop(NumType::I32, BinopKind::Add); }
inline InstRef subI32() { return binop(NumType::I32, BinopKind::Sub); }
inline InstRef mulI32() { return binop(NumType::I32, BinopKind::Mul); }

// Parametric / control.
inline InstRef unreachable() {
  return std::make_shared<SimpleInst>(InstKind::Unreachable);
}
inline InstRef nop() { return std::make_shared<SimpleInst>(InstKind::Nop); }
inline InstRef drop() { return std::make_shared<SimpleInst>(InstKind::Drop); }
inline InstRef select() {
  return std::make_shared<SimpleInst>(InstKind::Select);
}
inline InstRef ret() {
  return std::make_shared<SimpleInst>(InstKind::Return);
}
inline InstRef block(ArrowType TF, std::vector<LocalEffect> Fx, InstVec Body) {
  return std::make_shared<BlockInst>(std::move(TF), std::move(Fx),
                                     std::move(Body));
}
inline InstRef loop(ArrowType TF, InstVec Body) {
  return std::make_shared<LoopInst>(std::move(TF), std::move(Body));
}
inline InstRef ifElse(ArrowType TF, std::vector<LocalEffect> Fx, InstVec Then,
                      InstVec Else) {
  return std::make_shared<IfInst>(std::move(TF), std::move(Fx),
                                  std::move(Then), std::move(Else));
}
inline InstRef br(uint32_t D) {
  return std::make_shared<BrInst>(InstKind::Br, D);
}
inline InstRef brIf(uint32_t D) {
  return std::make_shared<BrInst>(InstKind::BrIf, D);
}
inline InstRef brTable(std::vector<uint32_t> Ds, uint32_t Dflt) {
  return std::make_shared<BrTableInst>(std::move(Ds), Dflt);
}

// Variables.
inline InstRef getLocal(uint32_t I, Qual Q) {
  return std::make_shared<GetLocalInst>(I, Q);
}
inline InstRef setLocal(uint32_t I) {
  return std::make_shared<VarIdxInst>(InstKind::SetLocal, I);
}
inline InstRef teeLocal(uint32_t I) {
  return std::make_shared<VarIdxInst>(InstKind::TeeLocal, I);
}
inline InstRef getGlobal(uint32_t I) {
  return std::make_shared<VarIdxInst>(InstKind::GetGlobal, I);
}
inline InstRef setGlobal(uint32_t I) {
  return std::make_shared<VarIdxInst>(InstKind::SetGlobal, I);
}
inline InstRef qualify(Qual Q) { return std::make_shared<QualifyInst>(Q); }

// Calls.
inline InstRef coderef(uint32_t TableIdx) {
  return std::make_shared<CoderefInst>(TableIdx);
}
inline InstRef instIdx(std::vector<Index> Args) {
  return std::make_shared<InstIdxInst>(std::move(Args));
}
inline InstRef callIndirect() {
  return std::make_shared<SimpleInst>(InstKind::CallIndirect);
}
inline InstRef call(uint32_t F, std::vector<Index> Args = {}) {
  return std::make_shared<CallInst>(F, std::move(Args));
}

// Recursive types / location packages.
inline InstRef recFold(PretypeRef P) {
  return std::make_shared<RecFoldInst>(std::move(P));
}
inline InstRef recUnfold() {
  return std::make_shared<SimpleInst>(InstKind::RecUnfold);
}
inline InstRef memPack(Loc L) { return std::make_shared<MemPackInst>(L); }
inline InstRef memUnpack(ArrowType TF, std::vector<LocalEffect> Fx,
                         InstVec Body) {
  return std::make_shared<MemUnpackInst>(std::move(TF), std::move(Fx),
                                         std::move(Body));
}

// Tuples / capabilities / references.
inline InstRef group(uint32_t N, Qual Q) {
  return std::make_shared<GroupInst>(N, Q);
}
inline InstRef ungroup() {
  return std::make_shared<SimpleInst>(InstKind::Ungroup);
}
inline InstRef capSplit() {
  return std::make_shared<SimpleInst>(InstKind::CapSplit);
}
inline InstRef capJoin() {
  return std::make_shared<SimpleInst>(InstKind::CapJoin);
}
inline InstRef refDemote() {
  return std::make_shared<SimpleInst>(InstKind::RefDemote);
}
inline InstRef refSplit() {
  return std::make_shared<SimpleInst>(InstKind::RefSplit);
}
inline InstRef refJoin() {
  return std::make_shared<SimpleInst>(InstKind::RefJoin);
}

// Structs.
inline InstRef structMalloc(std::vector<SizeRef> Sizes, Qual Q) {
  return std::make_shared<StructMallocInst>(std::move(Sizes), Q);
}
inline InstRef structFree() {
  return std::make_shared<SimpleInst>(InstKind::StructFree);
}
inline InstRef structGet(uint32_t I) {
  return std::make_shared<StructIdxInst>(InstKind::StructGet, I);
}
inline InstRef structSet(uint32_t I) {
  return std::make_shared<StructIdxInst>(InstKind::StructSet, I);
}
inline InstRef structSwap(uint32_t I) {
  return std::make_shared<StructIdxInst>(InstKind::StructSwap, I);
}

// Variants.
inline InstRef variantMalloc(uint32_t Tag, std::vector<Type> Cases, Qual Q) {
  return std::make_shared<VariantMallocInst>(Tag, std::move(Cases), Q);
}
inline InstRef variantCase(Qual Q, HeapTypeRef HT, ArrowType TF,
                           std::vector<LocalEffect> Fx,
                           std::vector<InstVec> Arms) {
  return std::make_shared<VariantCaseInst>(Q, std::move(HT), std::move(TF),
                                           std::move(Fx), std::move(Arms));
}

// Arrays.
inline InstRef arrayMalloc(Qual Q) {
  return std::make_shared<ArrayMallocInst>(Q);
}
inline InstRef arrayGet() {
  return std::make_shared<SimpleInst>(InstKind::ArrayGet);
}
inline InstRef arraySet() {
  return std::make_shared<SimpleInst>(InstKind::ArraySet);
}
inline InstRef arrayFree() {
  return std::make_shared<SimpleInst>(InstKind::ArrayFree);
}

// Existential packages.
inline InstRef existPack(PretypeRef Witness, HeapTypeRef HT, Qual Q) {
  return std::make_shared<ExistPackInst>(std::move(Witness), std::move(HT),
                                         Q);
}
inline InstRef existUnpack(Qual Q, HeapTypeRef HT, ArrowType TF,
                           std::vector<LocalEffect> Fx, InstVec Body) {
  return std::make_shared<ExistUnpackInst>(Q, std::move(HT), std::move(TF),
                                           std::move(Fx), std::move(Body));
}

// Module assembly.
inline Function function(std::vector<std::string> Exports, FunTypeRef Ty,
                         std::vector<SizeRef> Locals, InstVec Body) {
  Function F;
  F.Exports = std::move(Exports);
  F.Ty = std::move(Ty);
  F.Locals = std::move(Locals);
  F.Body = std::move(Body);
  return F;
}
inline Function importFunc(ImportName Name, FunTypeRef Ty) {
  Function F;
  F.Ty = std::move(Ty);
  F.Import = std::move(Name);
  return F;
}

} // namespace rw::ir::build

#endif // RICHWASM_IR_BUILDER_H
