//===- ir/Print.h - Text rendering of RichWasm IR ---------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A human-readable S-expression-flavoured printer for every production of
/// Fig 2 — used by diagnostics, tests, and the examples. Printing is total:
/// any well-formed tree renders without side conditions.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_IR_PRINT_H
#define RICHWASM_IR_PRINT_H

#include "ir/Inst.h"
#include "ir/Module.h"
#include "ir/Types.h"

#include <string>

namespace rw::ir {

std::string printType(const Type &T);
/// Borrowed view (error paths only — re-owns for the owning printer).
inline std::string printType(const TypeRef &T) { return printType(T.own()); }
std::string printPretype(const PretypeRef &P);
std::string printHeapType(const HeapTypeRef &H);
std::string printFunType(const FunType &F);
std::string printArrow(const ArrowType &A);
std::string printInst(const Inst &I, unsigned Indent = 0);
std::string printInsts(const InstVec &Insts, unsigned Indent = 0);
std::string printModule(const Module &M);

} // namespace rw::ir

#endif // RICHWASM_IR_PRINT_H
