//===- ir/Num.h - Numeric pretypes and operators ----------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Numeric pretypes (`np ::= ui32 | ui64 | i32 | i64 | f32 | f64`) and the
/// operator alphabets of Fig 2. Signedness of division, remainder, shifts,
/// and comparisons is determined by the numeric type itself (ui32/ui64 vs
/// i32/i64), which is why the operator enums carry no `sx` suffix.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_IR_NUM_H
#define RICHWASM_IR_NUM_H

#include <cstdint>

namespace rw::ir {

/// The six numeric pretypes.
enum class NumType : uint8_t { I32, U32, I64, U64, F32, F64 };

inline bool isIntType(NumType T) {
  return T == NumType::I32 || T == NumType::U32 || T == NumType::I64 ||
         T == NumType::U64;
}
inline bool isFloatType(NumType T) {
  return T == NumType::F32 || T == NumType::F64;
}
inline bool isSignedType(NumType T) {
  return T == NumType::I32 || T == NumType::I64;
}
/// Bit width of the representation (32 or 64).
inline uint64_t numTypeBits(NumType T) {
  switch (T) {
  case NumType::I32:
  case NumType::U32:
  case NumType::F32:
    return 32;
  case NumType::I64:
  case NumType::U64:
  case NumType::F64:
    return 64;
  }
  return 0;
}

inline const char *numTypeName(NumType T) {
  switch (T) {
  case NumType::I32:
    return "i32";
  case NumType::U32:
    return "ui32";
  case NumType::I64:
    return "i64";
  case NumType::U64:
    return "ui64";
  case NumType::F32:
    return "f32";
  case NumType::F64:
    return "f64";
  }
  return "?";
}

/// Unary operators: integer ones first, float ones after.
enum class UnopKind : uint8_t {
  // Integer.
  Clz,
  Ctz,
  Popcnt,
  // Float.
  Abs,
  Neg,
  Sqrt,
  Ceil,
  Floor,
  Trunc,
  Nearest,
};

inline bool isIntUnop(UnopKind K) { return K <= UnopKind::Popcnt; }

/// Binary operators. Div/Rem/Shr use the signedness of the operand type.
enum class BinopKind : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Rotl,
  Rotr,
  Min,
  Max,
  Copysign,
};

inline bool isIntOnlyBinop(BinopKind K) {
  switch (K) {
  case BinopKind::Rem:
  case BinopKind::And:
  case BinopKind::Or:
  case BinopKind::Xor:
  case BinopKind::Shl:
  case BinopKind::Shr:
  case BinopKind::Rotl:
  case BinopKind::Rotr:
    return true;
  default:
    return false;
  }
}
inline bool isFloatOnlyBinop(BinopKind K) {
  return K == BinopKind::Min || K == BinopKind::Max ||
         K == BinopKind::Copysign;
}

/// Test operators (integer only): produce an i32 boolean.
enum class TestopKind : uint8_t { Eqz };

/// Comparison operators; Lt/Gt/Le/Ge use the type's signedness on integers.
enum class RelopKind : uint8_t { Eq, Ne, Lt, Gt, Le, Ge };

/// Conversion operators between numeric types.
enum class CvtopKind : uint8_t {
  /// Value-preserving conversion (wrap/extend/truncate/convert per the
  /// source and destination types, as in Wasm's `cvtop`).
  Convert,
  /// Bit-pattern reinterpretation between same-width int and float.
  Reinterpret,
};

const char *unopName(UnopKind K);
const char *binopName(BinopKind K);
const char *relopName(RelopKind K);

} // namespace rw::ir

#endif // RICHWASM_IR_NUM_H
