//===- ir/TypeOps.cpp - Equality, sizes, no_caps, op names ---------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/TypeOps.h"

#include "ir/TypeArena.h"

#include <cassert>

using namespace rw;
using namespace rw::ir;

//===----------------------------------------------------------------------===//
// Shallow equality over interned children (arrow/quant are value types)
//===----------------------------------------------------------------------===//

static bool typesEqual(const std::vector<Type> &A, const std::vector<Type> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0, E = A.size(); I != E; ++I)
    if (!typeEquals(A[I], B[I]))
      return false;
  return true;
}

bool rw::ir::arrowEquals(const ArrowType &A, const ArrowType &B) {
  return typesEqual(A.Params, B.Params) && typesEqual(A.Results, B.Results);
}

static bool sizesEqual(const std::vector<SizeRef> &A,
                       const std::vector<SizeRef> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0, E = A.size(); I != E; ++I)
    if (!sizeEquals(A[I], B[I]))
      return false;
  return true;
}

bool rw::ir::quantEquals(const Quant &A, const Quant &B) {
  if (A.K != B.K)
    return false;
  switch (A.K) {
  case QuantKind::Loc:
    return true;
  case QuantKind::Size:
    return sizesEqual(A.SizeLower, B.SizeLower) &&
           sizesEqual(A.SizeUpper, B.SizeUpper);
  case QuantKind::Qual:
    return A.QualLower == B.QualLower && A.QualUpper == B.QualUpper;
  case QuantKind::Type:
    return A.TypeQualLower == B.TypeQualLower &&
           sizeEquals(A.TypeSizeUpper, B.TypeSizeUpper) &&
           A.TypeNoCaps == B.TypeNoCaps;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Deep-structural equality — reference implementations (tests only)
//===----------------------------------------------------------------------===//

static bool structuralSizeRefEquals(const SizeRef &A, const SizeRef &B) {
  if (A.get() == B.get())
    return true;
  if (!A || !B)
    return false;
  return structuralSizeEquals(A, B);
}

bool rw::ir::structuralTypeEquals(const Type &A, const Type &B) {
  if (A.Q != B.Q)
    return false;
  return structuralPretypeEquals(*A.P, *B.P);
}

static bool structuralTypesEqual(const std::vector<Type> &A,
                                 const std::vector<Type> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0, E = A.size(); I != E; ++I)
    if (!structuralTypeEquals(A[I], B[I]))
      return false;
  return true;
}

static bool structuralSizesEqual(const std::vector<SizeRef> &A,
                                 const std::vector<SizeRef> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0, E = A.size(); I != E; ++I)
    if (!structuralSizeRefEquals(A[I], B[I]))
      return false;
  return true;
}

bool rw::ir::structuralArrowEquals(const ArrowType &A, const ArrowType &B) {
  return structuralTypesEqual(A.Params, B.Params) &&
         structuralTypesEqual(A.Results, B.Results);
}

bool rw::ir::structuralQuantEquals(const Quant &A, const Quant &B) {
  if (A.K != B.K)
    return false;
  switch (A.K) {
  case QuantKind::Loc:
    return true;
  case QuantKind::Size:
    return structuralSizesEqual(A.SizeLower, B.SizeLower) &&
           structuralSizesEqual(A.SizeUpper, B.SizeUpper);
  case QuantKind::Qual:
    return A.QualLower == B.QualLower && A.QualUpper == B.QualUpper;
  case QuantKind::Type:
    return A.TypeQualLower == B.TypeQualLower &&
           structuralSizeRefEquals(A.TypeSizeUpper, B.TypeSizeUpper) &&
           A.TypeNoCaps == B.TypeNoCaps;
  }
  return false;
}

bool rw::ir::structuralFunTypeEquals(const FunType &A, const FunType &B) {
  if (A.quants().size() != B.quants().size())
    return false;
  for (size_t I = 0, E = A.quants().size(); I != E; ++I)
    if (!structuralQuantEquals(A.quants()[I], B.quants()[I]))
      return false;
  return structuralArrowEquals(A.arrow(), B.arrow());
}

bool rw::ir::structuralHeapTypeEquals(const HeapType &A, const HeapType &B) {
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case HeapTypeKind::Variant:
    return structuralTypesEqual(cast<VariantHT>(&A)->cases(),
                                cast<VariantHT>(&B)->cases());
  case HeapTypeKind::Struct: {
    const auto &FA = cast<StructHT>(&A)->fields();
    const auto &FB = cast<StructHT>(&B)->fields();
    if (FA.size() != FB.size())
      return false;
    for (size_t I = 0, E = FA.size(); I != E; ++I)
      if (!structuralTypeEquals(FA[I].T, FB[I].T) ||
          !structuralSizeRefEquals(FA[I].Slot, FB[I].Slot))
        return false;
    return true;
  }
  case HeapTypeKind::Array:
    return structuralTypeEquals(cast<ArrayHT>(&A)->elem(),
                                cast<ArrayHT>(&B)->elem());
  case HeapTypeKind::Ex: {
    const auto *EA = cast<ExHT>(&A);
    const auto *EB = cast<ExHT>(&B);
    return EA->qualLower() == EB->qualLower() &&
           structuralSizeRefEquals(EA->sizeUpper(), EB->sizeUpper()) &&
           structuralTypeEquals(EA->body(), EB->body());
  }
  }
  return false;
}

bool rw::ir::structuralPretypeEquals(const Pretype &A, const Pretype &B) {
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case PretypeKind::Unit:
    return true;
  case PretypeKind::Num:
    return cast<NumPT>(&A)->numType() == cast<NumPT>(&B)->numType();
  case PretypeKind::Var:
    return cast<VarPT>(&A)->index() == cast<VarPT>(&B)->index();
  case PretypeKind::Skolem: {
    // A skolem's identity is (id, binder constraints): the checker mints
    // fresh ids, but the lowering reuses id 0 with varying bounds, so the
    // bounds must participate — this is also exactly the intern key, which
    // is what keeps pointer equality ≡ structural equality.
    const auto *SA = cast<SkolemPT>(&A);
    const auto *SB = cast<SkolemPT>(&B);
    return SA->id() == SB->id() && SA->qualLower() == SB->qualLower() &&
           structuralSizeRefEquals(SA->sizeUpper(), SB->sizeUpper()) &&
           SA->noCaps() == SB->noCaps();
  }
  case PretypeKind::Prod:
    return structuralTypesEqual(cast<ProdPT>(&A)->elems(),
                                cast<ProdPT>(&B)->elems());
  case PretypeKind::Ref: {
    const auto *RA = cast<RefPT>(&A);
    const auto *RB = cast<RefPT>(&B);
    return RA->privilege() == RB->privilege() && RA->loc() == RB->loc() &&
           structuralHeapTypeEquals(*RA->heapType(), *RB->heapType());
  }
  case PretypeKind::Ptr:
    return cast<PtrPT>(&A)->loc() == cast<PtrPT>(&B)->loc();
  case PretypeKind::Cap: {
    const auto *CA = cast<CapPT>(&A);
    const auto *CB = cast<CapPT>(&B);
    return CA->privilege() == CB->privilege() && CA->loc() == CB->loc() &&
           structuralHeapTypeEquals(*CA->heapType(), *CB->heapType());
  }
  case PretypeKind::Own:
    return cast<OwnPT>(&A)->loc() == cast<OwnPT>(&B)->loc();
  case PretypeKind::Rec: {
    const auto *RA = cast<RecPT>(&A);
    const auto *RB = cast<RecPT>(&B);
    return RA->bound() == RB->bound() &&
           structuralTypeEquals(RA->body(), RB->body());
  }
  case PretypeKind::ExLoc:
    return structuralTypeEquals(cast<ExLocPT>(&A)->body(),
                                cast<ExLocPT>(&B)->body());
  case PretypeKind::Coderef:
    return structuralFunTypeEquals(*cast<CoderefPT>(&A)->funType(),
                                   *cast<CoderefPT>(&B)->funType());
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Size metafunction (memoized for closed pretypes)
//===----------------------------------------------------------------------===//

SizeRef rw::ir::detail::sizeOfPretypeRaw(const PretypeRef &P,
                                         const TypeVarSizes &Bounds) {
  assert(P && "sizing a null pretype");
  switch (P->kind()) {
  case PretypeKind::Unit:
  case PretypeKind::Cap:
  case PretypeKind::Own:
    return Size::constant(0);
  case PretypeKind::Num:
    return Size::constant(numTypeBits(cast<NumPT>(P.get())->numType()));
  case PretypeKind::Var: {
    uint32_t Idx = cast<VarPT>(P.get())->index();
    assert(Idx < Bounds.size() && "type variable out of scope in sizeOf");
    return Bounds[Idx];
  }
  case PretypeKind::Skolem:
    return cast<SkolemPT>(P.get())->sizeUpper();
  case PretypeKind::Prod: {
    SizeRef Acc = Size::constant(0);
    for (const Type &T : cast<ProdPT>(P.get())->elems())
      Acc = Size::plus(Acc, sizeOfType(T, Bounds));
    return Acc;
  }
  case PretypeKind::Ref:
  case PretypeKind::Ptr:
  case PretypeKind::Coderef:
    return Size::constant(64);
  case PretypeKind::Rec: {
    // The rec variable only occurs behind a reference (enforced by type
    // well-formedness), so any bound works; use one word.
    TypeVarSizes Inner;
    Inner.push_back(Size::constant(64));
    Inner.insert(Inner.end(), Bounds.begin(), Bounds.end());
    return sizeOfType(cast<RecPT>(P.get())->body(), Inner);
  }
  case PretypeKind::ExLoc:
    return sizeOfType(cast<ExLocPT>(P.get())->body(), Bounds);
  }
  return Size::constant(0);
}

SizeRef rw::ir::sizeOfPretype(const PretypeRef &P, const TypeVarSizes &Bounds) {
  assert(P && "sizing a null pretype");
  // A pretype with no free pretype variables has a context-independent
  // size: answer from the per-node cache in its owning arena. Open
  // pretypes recurse, with every closed subtree hitting this fast path.
  if (P->freeBounds().Type == 0 && P->arena())
    return P->arena()->closedSizeOf(P);
  return detail::sizeOfPretypeRaw(P, Bounds);
}

const Size *rw::ir::sizeOfPretypePtr(const Pretype *P,
                                     const TypeVarSizes &Bounds) {
  assert(P && "sizing a null pretype");
  // Borrowed fast path of the checker: the closed-pretype answer comes
  // straight from the per-node memo slot as a raw arena-owned pointer —
  // no shared_from_this, no refcount. Open pretypes (rare: bodies under
  // pretype quantifiers) fall back to the owning recursion; the result is
  // interned, so returning the raw pointer is safe under the TypeRef
  // lifetime contract.
  if (P->freeBounds().Type == 0 && P->arena())
    return P->arena()->closedSizePtr(P);
  return detail::sizeOfPretypeRaw(P->shared_from_this(), Bounds).get();
}

//===----------------------------------------------------------------------===//
// no_caps (answered from intern-time bits when context-independent)
//===----------------------------------------------------------------------===//

bool rw::ir::typeNoCaps(TypeRef T, const std::vector<bool> &VarNoCaps) {
  return pretypeNoCaps(T.P, VarNoCaps);
}

bool rw::ir::heapTypeNoCaps(const HeapType *H,
                            const std::vector<bool> &VarNoCaps) {
  if (!H->noCapsDependsOnVars())
    return H->noCapsIfAllVarsFree();
  switch (H->kind()) {
  case HeapTypeKind::Variant:
    for (const Type &T : cast<VariantHT>(H)->cases())
      if (!typeNoCaps(T, VarNoCaps))
        return false;
    return true;
  case HeapTypeKind::Struct:
    for (const StructField &F : cast<StructHT>(H)->fields())
      if (!typeNoCaps(F.T, VarNoCaps))
        return false;
    return true;
  case HeapTypeKind::Array:
    return typeNoCaps(cast<ArrayHT>(H)->elem(), VarNoCaps);
  case HeapTypeKind::Ex: {
    const auto *E = cast<ExHT>(H);
    std::vector<bool> Inner;
    Inner.push_back(true); // The witness must itself be capability-free.
    Inner.insert(Inner.end(), VarNoCaps.begin(), VarNoCaps.end());
    return typeNoCaps(E->body(), Inner);
  }
  }
  return true;
}

bool rw::ir::pretypeNoCaps(const Pretype *P,
                           const std::vector<bool> &VarNoCaps) {
  if (!P->noCapsDependsOnVars())
    return P->noCapsIfAllVarsFree();
  switch (P->kind()) {
  case PretypeKind::Unit:
  case PretypeKind::Num:
  case PretypeKind::Ptr:
  case PretypeKind::Coderef:
    return true;
  case PretypeKind::Cap:
  case PretypeKind::Own:
    return false;
  case PretypeKind::Var: {
    uint32_t Idx = cast<VarPT>(P)->index();
    assert(Idx < VarNoCaps.size() && "type variable out of scope in no_caps");
    return VarNoCaps[Idx];
  }
  case PretypeKind::Skolem:
    return cast<SkolemPT>(P)->noCaps();
  case PretypeKind::Prod:
    for (const Type &T : cast<ProdPT>(P)->elems())
      if (!typeNoCaps(T, VarNoCaps))
        return false;
    return true;
  case PretypeKind::Ref:
    // A reference pairs its capability with its pointer, which is exactly
    // the form the paper allows in GC'd memory.
    return true;
  case PretypeKind::Rec: {
    std::vector<bool> Inner;
    Inner.push_back(true);
    Inner.insert(Inner.end(), VarNoCaps.begin(), VarNoCaps.end());
    return typeNoCaps(cast<RecPT>(P)->body(), Inner);
  }
  case PretypeKind::ExLoc:
    return typeNoCaps(cast<ExLocPT>(P)->body(), VarNoCaps);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Operator names
//===----------------------------------------------------------------------===//

const char *rw::ir::unopName(UnopKind K) {
  switch (K) {
  case UnopKind::Clz:
    return "clz";
  case UnopKind::Ctz:
    return "ctz";
  case UnopKind::Popcnt:
    return "popcnt";
  case UnopKind::Abs:
    return "abs";
  case UnopKind::Neg:
    return "neg";
  case UnopKind::Sqrt:
    return "sqrt";
  case UnopKind::Ceil:
    return "ceil";
  case UnopKind::Floor:
    return "floor";
  case UnopKind::Trunc:
    return "trunc";
  case UnopKind::Nearest:
    return "nearest";
  }
  return "?";
}

const char *rw::ir::binopName(BinopKind K) {
  switch (K) {
  case BinopKind::Add:
    return "add";
  case BinopKind::Sub:
    return "sub";
  case BinopKind::Mul:
    return "mul";
  case BinopKind::Div:
    return "div";
  case BinopKind::Rem:
    return "rem";
  case BinopKind::And:
    return "and";
  case BinopKind::Or:
    return "or";
  case BinopKind::Xor:
    return "xor";
  case BinopKind::Shl:
    return "shl";
  case BinopKind::Shr:
    return "shr";
  case BinopKind::Rotl:
    return "rotl";
  case BinopKind::Rotr:
    return "rotr";
  case BinopKind::Min:
    return "min";
  case BinopKind::Max:
    return "max";
  case BinopKind::Copysign:
    return "copysign";
  }
  return "?";
}

const char *rw::ir::relopName(RelopKind K) {
  switch (K) {
  case RelopKind::Eq:
    return "eq";
  case RelopKind::Ne:
    return "ne";
  case RelopKind::Lt:
    return "lt";
  case RelopKind::Gt:
    return "gt";
  case RelopKind::Le:
    return "le";
  case RelopKind::Ge:
    return "ge";
  }
  return "?";
}
