//===- ir/Inst.h - RichWasm instructions ------------------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The RichWasm instruction set (Fig 2). Instructions form an LLVM-style
/// class hierarchy keyed by InstKind. Block-introducing instructions carry
/// their arrow type annotation and *local effects* (i, τ)* — the changes the
/// block makes to the types of local slots — as required by the paper so
/// that jumps agree on the local environment. Instruction trees are
/// immutable and shared; substitution (at call/unpack time) produces new
/// trees via ir/Rewrite.h.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_IR_INST_H
#define RICHWASM_IR_INST_H

#include "ir/Types.h"
#include "support/Casting.h"

#include <memory>
#include <vector>

namespace rw::ir {

class Inst;
using InstRef = std::shared_ptr<const Inst>;
using InstVec = std::vector<InstRef>;

/// A local effect annotation: slot \p LocalIdx has type \p T after the
/// annotated block finishes.
struct LocalEffect {
  uint32_t LocalIdx = 0;
  Type T;
};

enum class InstKind : uint8_t {
  // Numeric.
  NumConst,
  NumUnop,
  NumBinop,
  NumTestop,
  NumRelop,
  NumCvt,
  // Parametric / control.
  Unreachable,
  Nop,
  Drop,
  Select,
  Block,
  Loop,
  If,
  Br,
  BrIf,
  BrTable,
  Return,
  // Variables.
  GetLocal,
  SetLocal,
  TeeLocal,
  GetGlobal,
  SetGlobal,
  Qualify,
  // Functions.
  CoderefI,
  InstIdx,
  CallIndirect,
  Call,
  // Recursive and existential-location types.
  RecFold,
  RecUnfold,
  MemPack,
  MemUnpack,
  // Tuples, capabilities, references.
  Group,
  Ungroup,
  CapSplit,
  CapJoin,
  RefDemote,
  RefSplit,
  RefJoin,
  // Structs.
  StructMalloc,
  StructFree,
  StructGet,
  StructSet,
  StructSwap,
  // Variants.
  VariantMalloc,
  VariantCase,
  // Arrays.
  ArrayMalloc,
  ArrayGet,
  ArraySet,
  ArrayFree,
  // Existential (pretype) packages.
  ExistPack,
  ExistUnpack,
};

/// Base class of all RichWasm instructions.
class Inst {
public:
  InstKind kind() const { return K; }
  virtual ~Inst() = default;

protected:
  explicit Inst(InstKind K) : K(K) {}

private:
  InstKind K;
};

//===----------------------------------------------------------------------===//
// Numeric instructions
//===----------------------------------------------------------------------===//

/// `np.const c` — pushes a numeric constant. Bits holds the raw
/// representation (zero-extended for 32-bit types; IEEE bits for floats).
class NumConstInst : public Inst {
public:
  NumConstInst(NumType NT, uint64_t Bits)
      : Inst(InstKind::NumConst), NT(NT), Bits(Bits) {}
  NumType numType() const { return NT; }
  uint64_t bits() const { return Bits; }
  static bool classof(const Inst *I) {
    return I->kind() == InstKind::NumConst;
  }

private:
  NumType NT;
  uint64_t Bits;
};

class NumUnopInst : public Inst {
public:
  NumUnopInst(NumType NT, UnopKind Op)
      : Inst(InstKind::NumUnop), NT(NT), Op(Op) {}
  NumType numType() const { return NT; }
  UnopKind op() const { return Op; }
  static bool classof(const Inst *I) { return I->kind() == InstKind::NumUnop; }

private:
  NumType NT;
  UnopKind Op;
};

class NumBinopInst : public Inst {
public:
  NumBinopInst(NumType NT, BinopKind Op)
      : Inst(InstKind::NumBinop), NT(NT), Op(Op) {}
  NumType numType() const { return NT; }
  BinopKind op() const { return Op; }
  static bool classof(const Inst *I) {
    return I->kind() == InstKind::NumBinop;
  }

private:
  NumType NT;
  BinopKind Op;
};

class NumTestopInst : public Inst {
public:
  NumTestopInst(NumType NT, TestopKind Op)
      : Inst(InstKind::NumTestop), NT(NT), Op(Op) {}
  NumType numType() const { return NT; }
  TestopKind op() const { return Op; }
  static bool classof(const Inst *I) {
    return I->kind() == InstKind::NumTestop;
  }

private:
  NumType NT;
  TestopKind Op;
};

class NumRelopInst : public Inst {
public:
  NumRelopInst(NumType NT, RelopKind Op)
      : Inst(InstKind::NumRelop), NT(NT), Op(Op) {}
  NumType numType() const { return NT; }
  RelopKind op() const { return Op; }
  static bool classof(const Inst *I) {
    return I->kind() == InstKind::NumRelop;
  }

private:
  NumType NT;
  RelopKind Op;
};

/// `np.cvtop np'` — converts the top of stack from From to To.
class NumCvtInst : public Inst {
public:
  NumCvtInst(NumType From, NumType To, CvtopKind Op)
      : Inst(InstKind::NumCvt), From(From), To(To), Op(Op) {}
  NumType from() const { return From; }
  NumType to() const { return To; }
  CvtopKind op() const { return Op; }
  static bool classof(const Inst *I) { return I->kind() == InstKind::NumCvt; }

private:
  NumType From, To;
  CvtopKind Op;
};

//===----------------------------------------------------------------------===//
// Simple (payload-free) instructions
//===----------------------------------------------------------------------===//

/// Covers all instructions whose only payload is their kind: unreachable,
/// nop, drop, select, return, call_indirect, rec.unfold, seq.ungroup,
/// cap.split, cap.join, ref.demote, ref.split, ref.join, struct.free,
/// array.get, array.set, array.free.
class SimpleInst : public Inst {
public:
  explicit SimpleInst(InstKind K) : Inst(K) {
    assert(isSimple(K) && "not a payload-free instruction kind");
  }
  static bool isSimple(InstKind K) {
    switch (K) {
    case InstKind::Unreachable:
    case InstKind::Nop:
    case InstKind::Drop:
    case InstKind::Select:
    case InstKind::Return:
    case InstKind::CallIndirect:
    case InstKind::RecUnfold:
    case InstKind::Ungroup:
    case InstKind::CapSplit:
    case InstKind::CapJoin:
    case InstKind::RefDemote:
    case InstKind::RefSplit:
    case InstKind::RefJoin:
    case InstKind::StructFree:
    case InstKind::ArrayGet:
    case InstKind::ArraySet:
    case InstKind::ArrayFree:
      return true;
    default:
      return false;
    }
  }
  static bool classof(const Inst *I) { return isSimple(I->kind()); }
};

//===----------------------------------------------------------------------===//
// Control flow
//===----------------------------------------------------------------------===//

/// `block tf (i,τ)* e* end`.
class BlockInst : public Inst {
public:
  BlockInst(ArrowType TF, std::vector<LocalEffect> Fx, InstVec Body)
      : Inst(InstKind::Block), TF(std::move(TF)), Fx(std::move(Fx)),
        Body(std::move(Body)) {}
  const ArrowType &arrow() const { return TF; }
  const std::vector<LocalEffect> &effects() const { return Fx; }
  const InstVec &body() const { return Body; }
  static bool classof(const Inst *I) { return I->kind() == InstKind::Block; }

private:
  ArrowType TF;
  std::vector<LocalEffect> Fx;
  InstVec Body;
};

/// `loop tf e* end`. Branching to a loop label re-enters the loop, so the
/// body must leave the local environment as it found it (no local effects).
class LoopInst : public Inst {
public:
  LoopInst(ArrowType TF, InstVec Body)
      : Inst(InstKind::Loop), TF(std::move(TF)), Body(std::move(Body)) {}
  const ArrowType &arrow() const { return TF; }
  const InstVec &body() const { return Body; }
  static bool classof(const Inst *I) { return I->kind() == InstKind::Loop; }

private:
  ArrowType TF;
  InstVec Body;
};

/// `if tf (i,τ)* e1* else e2* end`.
class IfInst : public Inst {
public:
  IfInst(ArrowType TF, std::vector<LocalEffect> Fx, InstVec Then, InstVec Else)
      : Inst(InstKind::If), TF(std::move(TF)), Fx(std::move(Fx)),
        Then(std::move(Then)), Else(std::move(Else)) {}
  const ArrowType &arrow() const { return TF; }
  const std::vector<LocalEffect> &effects() const { return Fx; }
  const InstVec &thenBody() const { return Then; }
  const InstVec &elseBody() const { return Else; }
  static bool classof(const Inst *I) { return I->kind() == InstKind::If; }

private:
  ArrowType TF;
  std::vector<LocalEffect> Fx;
  InstVec Then, Else;
};

/// `br i` / `br_if i`.
class BrInst : public Inst {
public:
  BrInst(InstKind K, uint32_t Depth) : Inst(K), Depth(Depth) {
    assert((K == InstKind::Br || K == InstKind::BrIf) && "bad br kind");
  }
  uint32_t depth() const { return Depth; }
  static bool classof(const Inst *I) {
    return I->kind() == InstKind::Br || I->kind() == InstKind::BrIf;
  }

private:
  uint32_t Depth;
};

/// `br_table i* j`.
class BrTableInst : public Inst {
public:
  BrTableInst(std::vector<uint32_t> Depths, uint32_t Default)
      : Inst(InstKind::BrTable), Depths(std::move(Depths)), Default(Default) {}
  const std::vector<uint32_t> &depths() const { return Depths; }
  uint32_t defaultDepth() const { return Default; }
  static bool classof(const Inst *I) { return I->kind() == InstKind::BrTable; }

private:
  std::vector<uint32_t> Depths;
  uint32_t Default;
};

//===----------------------------------------------------------------------===//
// Locals / globals / qualify
//===----------------------------------------------------------------------===//

/// `get_local i q`. The annotation q is the qualifier the program expects
/// the slot to have; a linear get moves the value out and leaves unit.
class GetLocalInst : public Inst {
public:
  GetLocalInst(uint32_t Idx, Qual Q)
      : Inst(InstKind::GetLocal), Idx(Idx), Q(Q) {}
  uint32_t index() const { return Idx; }
  Qual qual() const { return Q; }
  static bool classof(const Inst *I) {
    return I->kind() == InstKind::GetLocal;
  }

private:
  uint32_t Idx;
  Qual Q;
};

/// `set_local i`, `tee_local i`, `get_global i`, `set_global i`.
class VarIdxInst : public Inst {
public:
  VarIdxInst(InstKind K, uint32_t Idx) : Inst(K), Idx(Idx) {
    assert((K == InstKind::SetLocal || K == InstKind::TeeLocal ||
            K == InstKind::GetGlobal || K == InstKind::SetGlobal) &&
           "bad variable-index instruction kind");
  }
  uint32_t index() const { return Idx; }
  static bool classof(const Inst *I) {
    switch (I->kind()) {
    case InstKind::SetLocal:
    case InstKind::TeeLocal:
    case InstKind::GetGlobal:
    case InstKind::SetGlobal:
      return true;
    default:
      return false;
    }
  }

private:
  uint32_t Idx;
};

/// `qualify q` — weakens the top-of-stack qualifier upward to q.
class QualifyInst : public Inst {
public:
  explicit QualifyInst(Qual Q) : Inst(InstKind::Qualify), Q(Q) {}
  Qual qual() const { return Q; }
  static bool classof(const Inst *I) { return I->kind() == InstKind::Qualify; }

private:
  Qual Q;
};

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

/// `coderef i` — pushes a code reference to function i of this module.
class CoderefInst : public Inst {
public:
  explicit CoderefInst(uint32_t FuncIdx)
      : Inst(InstKind::CoderefI), FuncIdx(FuncIdx) {}
  uint32_t funcIndex() const { return FuncIdx; }
  static bool classof(const Inst *I) {
    return I->kind() == InstKind::CoderefI;
  }

private:
  uint32_t FuncIdx;
};

/// `inst κ*` — instantiates leading quantifiers of a coderef on the stack.
class InstIdxInst : public Inst {
public:
  explicit InstIdxInst(std::vector<Index> Args)
      : Inst(InstKind::InstIdx), Args(std::move(Args)) {}
  const std::vector<Index> &args() const { return Args; }
  static bool classof(const Inst *I) { return I->kind() == InstKind::InstIdx; }

private:
  std::vector<Index> Args;
};

/// `call i κ*` — direct call of function i with instantiation κ*.
class CallInst : public Inst {
public:
  CallInst(uint32_t FuncIdx, std::vector<Index> Args)
      : Inst(InstKind::Call), FuncIdx(FuncIdx), Args(std::move(Args)) {}
  uint32_t funcIndex() const { return FuncIdx; }
  const std::vector<Index> &args() const { return Args; }
  static bool classof(const Inst *I) { return I->kind() == InstKind::Call; }

private:
  uint32_t FuncIdx;
  std::vector<Index> Args;
};

//===----------------------------------------------------------------------===//
// Recursive types and location packages
//===----------------------------------------------------------------------===//

/// `rec.fold p` — folds the top of stack into recursive pretype p (which
/// must be a RecPT).
class RecFoldInst : public Inst {
public:
  explicit RecFoldInst(PretypeRef P)
      : Inst(InstKind::RecFold), P(std::move(P)) {}
  const PretypeRef &pretype() const { return P; }
  static bool classof(const Inst *I) { return I->kind() == InstKind::RecFold; }

private:
  PretypeRef P;
};

/// `mem.pack ℓ` — packs the top of stack into ∃ρ, hiding location ℓ.
class MemPackInst : public Inst {
public:
  explicit MemPackInst(Loc L) : Inst(InstKind::MemPack), L(L) {}
  const Loc &loc() const { return L; }
  static bool classof(const Inst *I) { return I->kind() == InstKind::MemPack; }

private:
  Loc L;
};

/// `mem.unpack tf (i,τ)* ρ. e*` — opens an ∃ρ package, binding one location
/// variable in Body.
class MemUnpackInst : public Inst {
public:
  MemUnpackInst(ArrowType TF, std::vector<LocalEffect> Fx, InstVec Body)
      : Inst(InstKind::MemUnpack), TF(std::move(TF)), Fx(std::move(Fx)),
        Body(std::move(Body)) {}
  const ArrowType &arrow() const { return TF; }
  const std::vector<LocalEffect> &effects() const { return Fx; }
  const InstVec &body() const { return Body; }
  static bool classof(const Inst *I) {
    return I->kind() == InstKind::MemUnpack;
  }

private:
  ArrowType TF;
  std::vector<LocalEffect> Fx;
  InstVec Body;
};

//===----------------------------------------------------------------------===//
// Tuples
//===----------------------------------------------------------------------===//

/// `seq.group i q` — groups the top i stack values into a tuple with
/// qualifier q.
class GroupInst : public Inst {
public:
  GroupInst(uint32_t N, Qual Q) : Inst(InstKind::Group), N(N), Q(Q) {}
  uint32_t count() const { return N; }
  Qual qual() const { return Q; }
  static bool classof(const Inst *I) { return I->kind() == InstKind::Group; }

private:
  uint32_t N;
  Qual Q;
};

//===----------------------------------------------------------------------===//
// Heap: structs, variants, arrays, existentials
//===----------------------------------------------------------------------===//

/// `struct.malloc sz* q` — allocates a struct with the given slot sizes,
/// initializing the fields from the stack.
class StructMallocInst : public Inst {
public:
  StructMallocInst(std::vector<SizeRef> Sizes, Qual Q)
      : Inst(InstKind::StructMalloc), Sizes(std::move(Sizes)), Q(Q) {}
  const std::vector<SizeRef> &sizes() const { return Sizes; }
  Qual qual() const { return Q; }
  static bool classof(const Inst *I) {
    return I->kind() == InstKind::StructMalloc;
  }

private:
  std::vector<SizeRef> Sizes;
  Qual Q;
};

/// `struct.get i`, `struct.set i`, `struct.swap i`.
class StructIdxInst : public Inst {
public:
  StructIdxInst(InstKind K, uint32_t Idx) : Inst(K), Idx(Idx) {
    assert((K == InstKind::StructGet || K == InstKind::StructSet ||
            K == InstKind::StructSwap) &&
           "bad struct-field instruction kind");
  }
  uint32_t fieldIndex() const { return Idx; }
  static bool classof(const Inst *I) {
    return I->kind() == InstKind::StructGet ||
           I->kind() == InstKind::StructSet ||
           I->kind() == InstKind::StructSwap;
  }

private:
  uint32_t Idx;
};

/// `variant.malloc i τ* q` — allocates case Tag of (variant τ*) from the
/// stack value.
class VariantMallocInst : public Inst {
public:
  VariantMallocInst(uint32_t Tag, std::vector<Type> Cases, Qual Q)
      : Inst(InstKind::VariantMalloc), Tag(Tag), Cases(std::move(Cases)),
        Q(Q) {}
  uint32_t tag() const { return Tag; }
  const std::vector<Type> &cases() const { return Cases; }
  Qual qual() const { return Q; }
  static bool classof(const Inst *I) {
    return I->kind() == InstKind::VariantMalloc;
  }

private:
  uint32_t Tag;
  std::vector<Type> Cases;
  Qual Q;
};

/// `variant.case q ψ tf (i,τ)* (e*)* end` — case analysis on a variant
/// reference. A `lin` annotation frees the variant cell after the branch.
class VariantCaseInst : public Inst {
public:
  VariantCaseInst(Qual Q, HeapTypeRef HT, ArrowType TF,
                  std::vector<LocalEffect> Fx, std::vector<InstVec> Arms)
      : Inst(InstKind::VariantCase), Q(Q), HT(std::move(HT)),
        TF(std::move(TF)), Fx(std::move(Fx)), Arms(std::move(Arms)) {}
  Qual qual() const { return Q; }
  const HeapTypeRef &heapType() const { return HT; }
  const ArrowType &arrow() const { return TF; }
  const std::vector<LocalEffect> &effects() const { return Fx; }
  const std::vector<InstVec> &arms() const { return Arms; }
  static bool classof(const Inst *I) {
    return I->kind() == InstKind::VariantCase;
  }

private:
  Qual Q;
  HeapTypeRef HT;
  ArrowType TF;
  std::vector<LocalEffect> Fx;
  std::vector<InstVec> Arms;
};

/// `array.malloc q` — takes an initial value and a ui32 length from the
/// stack and allocates an array.
class ArrayMallocInst : public Inst {
public:
  explicit ArrayMallocInst(Qual Q) : Inst(InstKind::ArrayMalloc), Q(Q) {}
  Qual qual() const { return Q; }
  static bool classof(const Inst *I) {
    return I->kind() == InstKind::ArrayMalloc;
  }

private:
  Qual Q;
};

/// `exist.pack p ψ q` — allocates a heap existential package with witness
/// pretype p.
class ExistPackInst : public Inst {
public:
  ExistPackInst(PretypeRef Witness, HeapTypeRef HT, Qual Q)
      : Inst(InstKind::ExistPack), Witness(std::move(Witness)),
        HT(std::move(HT)), Q(Q) {}
  const PretypeRef &witness() const { return Witness; }
  const HeapTypeRef &heapType() const { return HT; }
  Qual qual() const { return Q; }
  static bool classof(const Inst *I) {
    return I->kind() == InstKind::ExistPack;
  }

private:
  PretypeRef Witness;
  HeapTypeRef HT;
  Qual Q;
};

/// `exist.unpack q ψ tf (i,τ)* α. e* end` — opens a heap existential,
/// binding one pretype variable in Body. A `lin` annotation frees the cell.
class ExistUnpackInst : public Inst {
public:
  ExistUnpackInst(Qual Q, HeapTypeRef HT, ArrowType TF,
                  std::vector<LocalEffect> Fx, InstVec Body)
      : Inst(InstKind::ExistUnpack), Q(Q), HT(std::move(HT)),
        TF(std::move(TF)), Fx(std::move(Fx)), Body(std::move(Body)) {}
  Qual qual() const { return Q; }
  const HeapTypeRef &heapType() const { return HT; }
  const ArrowType &arrow() const { return TF; }
  const std::vector<LocalEffect> &effects() const { return Fx; }
  const InstVec &body() const { return Body; }
  static bool classof(const Inst *I) {
    return I->kind() == InstKind::ExistUnpack;
  }

private:
  Qual Q;
  HeapTypeRef HT;
  ArrowType TF;
  std::vector<LocalEffect> Fx;
  InstVec Body;
};

} // namespace rw::ir

#endif // RICHWASM_IR_INST_H
