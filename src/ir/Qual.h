//===- ir/Qual.h - RichWasm qualifiers --------------------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Qualifiers annotate pretypes with their substructural discipline
/// (paper §2.1): `unr` values may be freely duplicated and dropped, `lin`
/// values must be used exactly once, and qualifier *variables* are bound by
/// function quantifiers with lower/upper bound constraints. The ordering is
/// `unr ⪯ lin`.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_IR_QUAL_H
#define RICHWASM_IR_QUAL_H

#include <cassert>
#include <cstdint>
#include <string>

namespace rw::ir {

/// Concrete qualifier constants, ordered unr ⪯ lin.
enum class QualConst : uint8_t { Unr = 0, Lin = 1 };

/// A qualifier: either a concrete constant or a de Bruijn variable bound by
/// an enclosing function quantifier (δ in the paper's grammar).
class Qual {
public:
  /// The unrestricted constant qualifier.
  static Qual unr() { return Qual(QualConst::Unr); }
  /// The linear constant qualifier.
  static Qual lin() { return Qual(QualConst::Lin); }
  /// A qualifier variable with de Bruijn index \p Idx (innermost binder 0).
  static Qual var(uint32_t Idx) {
    Qual Q(QualConst::Unr);
    Q.VarIdx = static_cast<int64_t>(Idx);
    return Q;
  }

  bool isVar() const { return VarIdx >= 0; }
  bool isConst() const { return VarIdx < 0; }

  uint32_t varIndex() const {
    assert(isVar() && "not a qualifier variable");
    return static_cast<uint32_t>(VarIdx);
  }
  QualConst constValue() const {
    assert(isConst() && "not a concrete qualifier");
    return C;
  }

  bool isUnrConst() const { return isConst() && C == QualConst::Unr; }
  bool isLinConst() const { return isConst() && C == QualConst::Lin; }

  bool operator==(const Qual &Other) const {
    if (isVar() != Other.isVar())
      return false;
    return isVar() ? VarIdx == Other.VarIdx : C == Other.C;
  }
  bool operator!=(const Qual &Other) const { return !(*this == Other); }

  std::string str() const {
    if (isVar())
      return "δ" + std::to_string(VarIdx);
    return C == QualConst::Unr ? "unr" : "lin";
  }

private:
  explicit Qual(QualConst C) : C(C) {}

  int64_t VarIdx = -1; ///< >= 0 when this is a variable.
  QualConst C;
};

} // namespace rw::ir

#endif // RICHWASM_IR_QUAL_H
