//===- ir/Loc.h - RichWasm memory locations ---------------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locations (paper Fig 2: `ℓ ::= ρ | i_unr | i_lin`) name cells in one of
/// RichWasm's two global memories: the manually-managed *linear* memory and
/// the garbage-collected *unrestricted* memory. Concrete locations only
/// arise at runtime; programs abstract over them with location variables
/// bound by function quantifiers, `∃ρ` packages, and `mem.unpack`.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_IR_LOC_H
#define RICHWASM_IR_LOC_H

#include <cassert>
#include <cstdint>
#include <string>

namespace rw::ir {

/// Which of the two RichWasm memories a concrete location lives in.
enum class MemKind : uint8_t { Lin = 0, Unr = 1 };

inline const char *memKindName(MemKind M) {
  return M == MemKind::Lin ? "lin" : "unr";
}

/// A location: a de Bruijn location variable, a concrete address in one of
/// the two memories, or a *skolem* — a fresh eigenvariable the type checker
/// introduces when opening an ∃ρ binder (it never appears at runtime).
class Loc {
public:
  enum class Kind : uint8_t { Var, Concrete, Skolem };

  static Loc var(uint32_t Idx) {
    Loc L;
    L.K = Kind::Var;
    L.VarIdx = Idx;
    return L;
  }
  static Loc concrete(MemKind M, uint64_t Addr) {
    Loc L;
    L.K = Kind::Concrete;
    L.M = M;
    L.Addr = Addr;
    return L;
  }
  static Loc skolem(uint64_t Id) {
    Loc L;
    L.K = Kind::Skolem;
    L.Addr = Id;
    return L;
  }

  Kind kind() const { return K; }
  bool isVar() const { return K == Kind::Var; }
  bool isConcrete() const { return K == Kind::Concrete; }
  bool isSkolem() const { return K == Kind::Skolem; }

  uint32_t varIndex() const {
    assert(isVar() && "not a location variable");
    return VarIdx;
  }
  MemKind mem() const {
    assert(isConcrete() && "not a concrete location");
    return M;
  }
  uint64_t addr() const {
    assert(isConcrete() && "not a concrete location");
    return Addr;
  }
  uint64_t skolemId() const {
    assert(isSkolem() && "not a skolem location");
    return Addr;
  }

  bool operator==(const Loc &O) const {
    if (K != O.K)
      return false;
    switch (K) {
    case Kind::Var:
      return VarIdx == O.VarIdx;
    case Kind::Concrete:
      return M == O.M && Addr == O.Addr;
    case Kind::Skolem:
      return Addr == O.Addr;
    }
    return false;
  }
  bool operator!=(const Loc &O) const { return !(*this == O); }

  std::string str() const {
    switch (K) {
    case Kind::Var:
      return "ρ" + std::to_string(VarIdx);
    case Kind::Concrete:
      return std::to_string(Addr) + (M == MemKind::Lin ? "ₗ" : "ᵤ");
    case Kind::Skolem:
      return "ℓ#" + std::to_string(Addr);
    }
    return "<loc>";
  }

private:
  Loc() = default;

  Kind K = Kind::Var;
  uint32_t VarIdx = 0;
  MemKind M = MemKind::Lin;
  uint64_t Addr = 0;
};

} // namespace rw::ir

#endif // RICHWASM_IR_LOC_H
