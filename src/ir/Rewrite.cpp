//===- ir/Rewrite.cpp - Shift and substitution implementations -----------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Rewrite.h"

#include <cassert>

using namespace rw;
using namespace rw::ir;

//===----------------------------------------------------------------------===//
// TypeRewriter traversal
//===----------------------------------------------------------------------===//

Qual TypeRewriter::rewrite(Qual Q) {
  if (Q.isVar())
    return onQualVar(Q.varIndex());
  return Q;
}

SizeRef TypeRewriter::rewrite(const SizeRef &S) {
  assert(S && "rewriting a null size");
  // Sizes only contain size variables; a size whose free bound is below
  // the current size depth (or a rewriter that never touches size
  // variables) passes through unchanged.
  if (MemoOn && (!ActSize || S->freeBound() <= SizeDepth))
    return S;
  switch (S->kind()) {
  case Size::Kind::Const:
    return S;
  case Size::Kind::Var:
    return onSizeVar(S->varIndex());
  case Size::Kind::Plus:
    return Size::plus(rewrite(S->lhs()), rewrite(S->rhs()));
  }
  return S;
}

Loc TypeRewriter::rewrite(const Loc &L) {
  if (L.isVar())
    return onLocVar(L.varIndex());
  return L;
}

Type TypeRewriter::rewrite(const Type &T) {
  return Type(rewrite(T.P), rewrite(T.Q));
}

PretypeRef TypeRewriter::rewrite(const PretypeRef &P) {
  assert(P && "rewriting a null pretype");
  if (MemoOn && unaffected(P->freeBounds(), P->flags()))
    return P;
  if (!memoUsable())
    return rewriteUncached(P);
  MemoKey K{P.get(), depthKey()};
  if (M)
    if (auto It = M->P.find(K); It != M->P.end())
      return It->second;
  uint64_t Before = ++Visits;
  PretypeRef R = rewriteUncached(P);
  // Memoize only subtrees whose rewrite did real work: caching a leaf-ish
  // node costs a map insert (an allocation) to save a two-node walk, which
  // is a net loss — and the checker's hot opens (mem.unpack, exist.unpack)
  // rewrite exactly such tiny trees.
  if (Visits - Before >= MemoMinVisits)
    memos().P.emplace(K, R);
  return R;
}

PretypeRef TypeRewriter::rewriteUncached(const PretypeRef &P) {
  switch (P->kind()) {
  case PretypeKind::Unit:
  case PretypeKind::Num:
  case PretypeKind::Skolem:
    return P;
  case PretypeKind::Var:
    return onTypeVar(cast<VarPT>(P.get())->index());
  case PretypeKind::Prod: {
    const auto *Prod = cast<ProdPT>(P.get());
    std::vector<Type> Elems;
    Elems.reserve(Prod->elems().size());
    for (const Type &T : Prod->elems())
      Elems.push_back(rewrite(T));
    return prodPT(std::move(Elems));
  }
  case PretypeKind::Ref: {
    const auto *R = cast<RefPT>(P.get());
    return refPT(R->privilege(), rewrite(R->loc()), rewrite(R->heapType()));
  }
  case PretypeKind::Ptr:
    return ptrPT(rewrite(cast<PtrPT>(P.get())->loc()));
  case PretypeKind::Cap: {
    const auto *C = cast<CapPT>(P.get());
    return capPT(C->privilege(), rewrite(C->loc()), rewrite(C->heapType()));
  }
  case PretypeKind::Own:
    return ownPT(rewrite(cast<OwnPT>(P.get())->loc()));
  case PretypeKind::Rec: {
    const auto *R = cast<RecPT>(P.get());
    Qual Bound = rewrite(R->bound());
    enterType();
    Type Body = rewrite(R->body());
    exitType();
    return recPT(Bound, std::move(Body));
  }
  case PretypeKind::ExLoc: {
    enterLoc();
    Type Body = rewrite(cast<ExLocPT>(P.get())->body());
    exitLoc();
    return exLocPT(std::move(Body));
  }
  case PretypeKind::Coderef:
    return coderefPT(rewrite(cast<CoderefPT>(P.get())->funType()));
  }
  return P;
}

HeapTypeRef TypeRewriter::rewrite(const HeapTypeRef &H) {
  assert(H && "rewriting a null heap type");
  if (MemoOn && unaffected(H->freeBounds(), H->flags()))
    return H;
  if (!memoUsable())
    return rewriteUncached(H);
  MemoKey K{H.get(), depthKey()};
  if (M)
    if (auto It = M->H.find(K); It != M->H.end())
      return It->second;
  uint64_t Before = ++Visits;
  HeapTypeRef R = rewriteUncached(H);
  if (Visits - Before >= MemoMinVisits)
    memos().H.emplace(K, R);
  return R;
}

HeapTypeRef TypeRewriter::rewriteUncached(const HeapTypeRef &H) {
  switch (H->kind()) {
  case HeapTypeKind::Variant: {
    const auto *V = cast<VariantHT>(H.get());
    std::vector<Type> Cases;
    Cases.reserve(V->cases().size());
    for (const Type &T : V->cases())
      Cases.push_back(rewrite(T));
    return variantHT(std::move(Cases));
  }
  case HeapTypeKind::Struct: {
    const auto *S = cast<StructHT>(H.get());
    std::vector<StructField> Fields;
    Fields.reserve(S->fields().size());
    for (const StructField &F : S->fields())
      Fields.push_back({rewrite(F.T), rewrite(F.Slot)});
    return structHT(std::move(Fields));
  }
  case HeapTypeKind::Array:
    return arrayHT(rewrite(cast<ArrayHT>(H.get())->elem()));
  case HeapTypeKind::Ex: {
    const auto *E = cast<ExHT>(H.get());
    Qual QL = rewrite(E->qualLower());
    SizeRef SU = rewrite(E->sizeUpper());
    enterType();
    Type Body = rewrite(E->body());
    exitType();
    return exHT(QL, std::move(SU), std::move(Body));
  }
  }
  return H;
}

ArrowType TypeRewriter::rewrite(const ArrowType &A) {
  ArrowType Out;
  Out.Params.reserve(A.Params.size());
  Out.Results.reserve(A.Results.size());
  for (const Type &T : A.Params)
    Out.Params.push_back(rewrite(T));
  for (const Type &T : A.Results)
    Out.Results.push_back(rewrite(T));
  return Out;
}

Quant TypeRewriter::rewrite(const Quant &Q) {
  Quant Out;
  Out.K = Q.K;
  switch (Q.K) {
  case QuantKind::Loc:
    break;
  case QuantKind::Size:
    for (const SizeRef &S : Q.SizeLower)
      Out.SizeLower.push_back(rewrite(S));
    for (const SizeRef &S : Q.SizeUpper)
      Out.SizeUpper.push_back(rewrite(S));
    break;
  case QuantKind::Qual:
    for (Qual X : Q.QualLower)
      Out.QualLower.push_back(rewrite(X));
    for (Qual X : Q.QualUpper)
      Out.QualUpper.push_back(rewrite(X));
    break;
  case QuantKind::Type:
    Out.TypeQualLower = rewrite(Q.TypeQualLower);
    Out.TypeSizeUpper = rewrite(Q.TypeSizeUpper);
    Out.TypeNoCaps = Q.TypeNoCaps;
    break;
  }
  return Out;
}

Index TypeRewriter::rewrite(const Index &I) {
  Index Out;
  Out.K = I.K;
  switch (I.K) {
  case QuantKind::Loc:
    Out.L = rewrite(I.L);
    break;
  case QuantKind::Size:
    Out.Sz = rewrite(I.Sz);
    break;
  case QuantKind::Qual:
    Out.Q = rewrite(I.Q);
    break;
  case QuantKind::Type:
    Out.P = rewrite(I.P);
    break;
  }
  return Out;
}

FunTypeRef TypeRewriter::rewrite(const FunTypeRef &F) {
  assert(F && "rewriting a null function type");
  if (MemoOn && unaffected(F->freeBounds(), F->flags()))
    return F;
  if (!memoUsable())
    return rewriteUncached(F);
  MemoKey K{F.get(), depthKey()};
  if (M)
    if (auto It = M->F.find(K); It != M->F.end())
      return It->second;
  uint64_t Before = ++Visits;
  FunTypeRef R = rewriteUncached(F);
  if (Visits - Before >= MemoMinVisits)
    memos().F.emplace(K, R);
  return R;
}

FunTypeRef TypeRewriter::rewriteUncached(const FunTypeRef &F) {
  std::vector<Quant> Quants;
  Quants.reserve(F->quants().size());
  // Each quantifier's constraints see the binders declared before it.
  unsigned NLoc = 0, NSize = 0, NQual = 0, NType = 0;
  for (const Quant &Q : F->quants()) {
    Quants.push_back(rewrite(Q));
    switch (Q.K) {
    case QuantKind::Loc:
      enterLoc();
      ++NLoc;
      break;
    case QuantKind::Size:
      enterSize();
      ++NSize;
      break;
    case QuantKind::Qual:
      enterQual();
      ++NQual;
      break;
    case QuantKind::Type:
      enterType();
      ++NType;
      break;
    }
  }
  ArrowType Arrow = rewrite(F->arrow());
  for (unsigned I = 0; I < NLoc; ++I)
    exitLoc();
  for (unsigned I = 0; I < NSize; ++I)
    exitSize();
  for (unsigned I = 0; I < NQual; ++I)
    exitQual();
  for (unsigned I = 0; I < NType; ++I)
    exitType();
  return FunType::get(std::move(Quants), std::move(Arrow));
}

//===----------------------------------------------------------------------===//
// Subst
//===----------------------------------------------------------------------===//

Subst Subst::fromIndices(const std::vector<Index> &Args) {
  Subst S;
  for (const Index &I : Args) {
    switch (I.K) {
    case QuantKind::Loc:
      S.Locs.push_back(I.L);
      break;
    case QuantKind::Size:
      S.Sizes.push_back(I.Sz);
      break;
    case QuantKind::Qual:
      S.Quals.push_back(I.Q);
      break;
    case QuantKind::Type:
      S.Types.push_back(I.P);
      break;
    }
  }
  return S;
}

Qual Subst::onQualVar(uint32_t Idx) {
  if (Idx < QualDepth)
    return Qual::var(Idx);
  uint32_t J = Idx - QualDepth;
  size_t M = Quals.size();
  if (J < M) {
    Qual Rep = Quals[M - 1 - J];
    if (Rep.isVar())
      return Qual::var(Rep.varIndex() + QualDepth);
    return Rep;
  }
  return Qual::var(Idx - static_cast<uint32_t>(M));
}

SizeRef Subst::onSizeVar(uint32_t Idx) {
  if (Idx < SizeDepth)
    return Size::var(Idx);
  uint32_t J = Idx - SizeDepth;
  size_t M = Sizes.size();
  if (J < M) {
    Shifter Sh(LocDepth, SizeDepth, QualDepth, TypeDepth);
    return Sh.rewrite(Sizes[M - 1 - J]);
  }
  return Size::var(Idx - static_cast<uint32_t>(M));
}

Loc Subst::onLocVar(uint32_t Idx) {
  if (Idx < LocDepth)
    return Loc::var(Idx);
  uint32_t J = Idx - LocDepth;
  size_t M = Locs.size();
  if (J < M) {
    Loc Rep = Locs[M - 1 - J];
    if (Rep.isVar())
      return Loc::var(Rep.varIndex() + LocDepth);
    return Rep;
  }
  return Loc::var(Idx - static_cast<uint32_t>(M));
}

PretypeRef Subst::onTypeVar(uint32_t Idx) {
  if (Idx < TypeDepth)
    return varPT(Idx);
  uint32_t J = Idx - TypeDepth;
  size_t M = Types.size();
  if (J < M) {
    Shifter Sh(LocDepth, SizeDepth, QualDepth, TypeDepth);
    return Sh.rewrite(Types[M - 1 - J]);
  }
  return varPT(Idx - static_cast<uint32_t>(M));
}

//===----------------------------------------------------------------------===//
// Instruction rewriting
//===----------------------------------------------------------------------===//

static std::vector<LocalEffect> rewriteFx(const std::vector<LocalEffect> &Fx,
                                          TypeRewriter &RW) {
  std::vector<LocalEffect> Out;
  Out.reserve(Fx.size());
  for (const LocalEffect &E : Fx)
    Out.push_back({E.LocalIdx, RW.rewrite(E.T)});
  return Out;
}

static std::vector<Index> rewriteArgs(const std::vector<Index> &Args,
                                      TypeRewriter &RW) {
  std::vector<Index> Out;
  Out.reserve(Args.size());
  for (const Index &I : Args)
    Out.push_back(RW.rewrite(I));
  return Out;
}

//===----------------------------------------------------------------------===//
// Intern-aware subtree sharing
//===----------------------------------------------------------------------===//
//
// Instruction trees are rewritten bottom-up, and every embedded type-level
// component is hash-consed: a component untouched by the rewrite comes
// back as the *same* node (the rewriter's FreeBounds short-circuit proves
// closedness without walking, and interning canonicalizes everything
// else), so "this subtree is closed under the rewrite" is decidable by
// O(1) pointer comparisons on the rewritten pieces. When every piece (and
// every child instruction) is unchanged, the original shared_ptr node is
// returned instead of an allocated clone — call-time instantiation
// (sem::Machine's e*[z*/κ*]) then shares all untouched subtrees with the
// original body and only materializes the spine that actually changes.

static bool fxIdentical(const std::vector<LocalEffect> &A,
                        const std::vector<LocalEffect> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (A[I].LocalIdx != B[I].LocalIdx || !typeEquals(A[I].T, B[I].T))
      return false;
  return true;
}

static bool argsIdentical(const std::vector<Index> &A,
                          const std::vector<Index> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I) {
    const Index &X = A[I], &Y = B[I];
    if (X.K != Y.K)
      return false;
    switch (X.K) {
    case QuantKind::Loc:
      if (!(X.L == Y.L))
        return false;
      break;
    case QuantKind::Size:
      if (X.Sz.get() != Y.Sz.get())
        return false;
      break;
    case QuantKind::Qual:
      if (!(X.Q == Y.Q))
        return false;
      break;
    case QuantKind::Type:
      if (X.P.get() != Y.P.get())
        return false;
      break;
    }
  }
  return true;
}

static bool instsIdentical(const InstVec &A, const InstVec &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (A[I].get() != B[I].get())
      return false;
  return true;
}

InstVec rw::ir::rewriteInsts(const InstVec &Insts, TypeRewriter &RW) {
  InstVec Out;
  Out.reserve(Insts.size());
  for (const InstRef &I : Insts)
    Out.push_back(rewriteInst(I, RW));
  return Out;
}

InstRef rw::ir::rewriteInst(const InstRef &I, TypeRewriter &RW) {
  assert(I && "rewriting a null instruction");
  switch (I->kind()) {
  case InstKind::NumConst:
  case InstKind::NumUnop:
  case InstKind::NumBinop:
  case InstKind::NumTestop:
  case InstKind::NumRelop:
  case InstKind::NumCvt:
  case InstKind::Br:
  case InstKind::BrIf:
  case InstKind::BrTable:
  case InstKind::SetLocal:
  case InstKind::TeeLocal:
  case InstKind::GetGlobal:
  case InstKind::SetGlobal:
  case InstKind::CoderefI:
    return I; // No embedded type-level material.
  default:
    break;
  }
  if (isa<SimpleInst>(I.get()))
    return I;

  switch (I->kind()) {
  case InstKind::Block: {
    const auto *B = cast<BlockInst>(I.get());
    ArrowType TF = RW.rewrite(B->arrow());
    std::vector<LocalEffect> Fx = rewriteFx(B->effects(), RW);
    InstVec Body = rewriteInsts(B->body(), RW);
    if (arrowEquals(TF, B->arrow()) && fxIdentical(Fx, B->effects()) &&
        instsIdentical(Body, B->body()))
      return I;
    return std::make_shared<BlockInst>(std::move(TF), std::move(Fx),
                                       std::move(Body));
  }
  case InstKind::Loop: {
    const auto *L = cast<LoopInst>(I.get());
    ArrowType TF = RW.rewrite(L->arrow());
    InstVec Body = rewriteInsts(L->body(), RW);
    if (arrowEquals(TF, L->arrow()) && instsIdentical(Body, L->body()))
      return I;
    return std::make_shared<LoopInst>(std::move(TF), std::move(Body));
  }
  case InstKind::If: {
    const auto *F = cast<IfInst>(I.get());
    ArrowType TF = RW.rewrite(F->arrow());
    std::vector<LocalEffect> Fx = rewriteFx(F->effects(), RW);
    InstVec Then = rewriteInsts(F->thenBody(), RW);
    InstVec Else = rewriteInsts(F->elseBody(), RW);
    if (arrowEquals(TF, F->arrow()) && fxIdentical(Fx, F->effects()) &&
        instsIdentical(Then, F->thenBody()) &&
        instsIdentical(Else, F->elseBody()))
      return I;
    return std::make_shared<IfInst>(std::move(TF), std::move(Fx),
                                    std::move(Then), std::move(Else));
  }
  case InstKind::GetLocal: {
    const auto *G = cast<GetLocalInst>(I.get());
    Qual Q = RW.rewrite(G->qual());
    if (Q == G->qual())
      return I;
    return std::make_shared<GetLocalInst>(G->index(), Q);
  }
  case InstKind::Qualify: {
    const auto *Q = cast<QualifyInst>(I.get());
    Qual NQ = RW.rewrite(Q->qual());
    if (NQ == Q->qual())
      return I;
    return std::make_shared<QualifyInst>(NQ);
  }
  case InstKind::InstIdx: {
    const auto *II = cast<InstIdxInst>(I.get());
    std::vector<Index> Args = rewriteArgs(II->args(), RW);
    if (argsIdentical(Args, II->args()))
      return I;
    return std::make_shared<InstIdxInst>(std::move(Args));
  }
  case InstKind::Call: {
    const auto *C = cast<CallInst>(I.get());
    std::vector<Index> Args = rewriteArgs(C->args(), RW);
    if (argsIdentical(Args, C->args()))
      return I;
    return std::make_shared<CallInst>(C->funcIndex(), std::move(Args));
  }
  case InstKind::RecFold: {
    const auto *R = cast<RecFoldInst>(I.get());
    PretypeRef P = RW.rewrite(R->pretype());
    if (P.get() == R->pretype().get())
      return I;
    return std::make_shared<RecFoldInst>(std::move(P));
  }
  case InstKind::MemPack: {
    const auto *M = cast<MemPackInst>(I.get());
    Loc L = RW.rewrite(M->loc());
    if (L == M->loc())
      return I;
    return std::make_shared<MemPackInst>(L);
  }
  case InstKind::MemUnpack: {
    const auto *M = cast<MemUnpackInst>(I.get());
    ArrowType TF = RW.rewrite(M->arrow());
    std::vector<LocalEffect> Fx = rewriteFx(M->effects(), RW);
    RW.enterLoc();
    InstVec Body = rewriteInsts(M->body(), RW);
    RW.exitLoc();
    if (arrowEquals(TF, M->arrow()) && fxIdentical(Fx, M->effects()) &&
        instsIdentical(Body, M->body()))
      return I;
    return std::make_shared<MemUnpackInst>(std::move(TF), std::move(Fx),
                                           std::move(Body));
  }
  case InstKind::Group: {
    const auto *G = cast<GroupInst>(I.get());
    Qual Q = RW.rewrite(G->qual());
    if (Q == G->qual())
      return I;
    return std::make_shared<GroupInst>(G->count(), Q);
  }
  case InstKind::StructMalloc: {
    const auto *S = cast<StructMallocInst>(I.get());
    std::vector<SizeRef> Sizes;
    Sizes.reserve(S->sizes().size());
    bool Same = true;
    for (const SizeRef &Sz : S->sizes()) {
      Sizes.push_back(RW.rewrite(Sz));
      Same = Same && Sizes.back().get() == Sz.get();
    }
    Qual Q = RW.rewrite(S->qual());
    if (Same && Q == S->qual())
      return I;
    return std::make_shared<StructMallocInst>(std::move(Sizes), Q);
  }
  case InstKind::StructGet:
  case InstKind::StructSet:
  case InstKind::StructSwap:
    return I;
  case InstKind::VariantMalloc: {
    const auto *V = cast<VariantMallocInst>(I.get());
    std::vector<Type> Cases;
    Cases.reserve(V->cases().size());
    bool Same = true;
    for (const Type &T : V->cases()) {
      Cases.push_back(RW.rewrite(T));
      Same = Same && typeEquals(Cases.back(), T);
    }
    Qual Q = RW.rewrite(V->qual());
    if (Same && Q == V->qual())
      return I;
    return std::make_shared<VariantMallocInst>(V->tag(), std::move(Cases), Q);
  }
  case InstKind::VariantCase: {
    const auto *V = cast<VariantCaseInst>(I.get());
    Qual Q = RW.rewrite(V->qual());
    HeapTypeRef HT = RW.rewrite(V->heapType());
    ArrowType TF = RW.rewrite(V->arrow());
    std::vector<LocalEffect> Fx = rewriteFx(V->effects(), RW);
    std::vector<InstVec> Arms;
    Arms.reserve(V->arms().size());
    bool Same = Q == V->qual() && HT.get() == V->heapType().get() &&
                arrowEquals(TF, V->arrow()) && fxIdentical(Fx, V->effects());
    for (const InstVec &Arm : V->arms()) {
      Arms.push_back(rewriteInsts(Arm, RW));
      Same = Same && instsIdentical(Arms.back(), Arm);
    }
    if (Same)
      return I;
    return std::make_shared<VariantCaseInst>(Q, std::move(HT), std::move(TF),
                                             std::move(Fx), std::move(Arms));
  }
  case InstKind::ArrayMalloc: {
    const auto *A = cast<ArrayMallocInst>(I.get());
    Qual Q = RW.rewrite(A->qual());
    if (Q == A->qual())
      return I;
    return std::make_shared<ArrayMallocInst>(Q);
  }
  case InstKind::ExistPack: {
    const auto *E = cast<ExistPackInst>(I.get());
    PretypeRef W = RW.rewrite(E->witness());
    HeapTypeRef HT = RW.rewrite(E->heapType());
    Qual Q = RW.rewrite(E->qual());
    if (W.get() == E->witness().get() && HT.get() == E->heapType().get() &&
        Q == E->qual())
      return I;
    return std::make_shared<ExistPackInst>(std::move(W), std::move(HT), Q);
  }
  case InstKind::ExistUnpack: {
    const auto *E = cast<ExistUnpackInst>(I.get());
    Qual Q = RW.rewrite(E->qual());
    HeapTypeRef HT = RW.rewrite(E->heapType());
    ArrowType TF = RW.rewrite(E->arrow());
    std::vector<LocalEffect> Fx = rewriteFx(E->effects(), RW);
    RW.enterType();
    InstVec Body = rewriteInsts(E->body(), RW);
    RW.exitType();
    if (Q == E->qual() && HT.get() == E->heapType().get() &&
        arrowEquals(TF, E->arrow()) && fxIdentical(Fx, E->effects()) &&
        instsIdentical(Body, E->body()))
      return I;
    return std::make_shared<ExistUnpackInst>(Q, std::move(HT), std::move(TF),
                                             std::move(Fx), std::move(Body));
  }
  default:
    break;
  }
  assert(false && "unhandled instruction kind in rewriteInst");
  return I;
}

ArrowType rw::ir::instantiateFunType(const FunType &FT,
                                     const std::vector<Index> &Args) {
  assert(FT.quants().size() == Args.size() &&
         "instantiation arity mismatch (checked by the type checker)");
  Subst S = Subst::fromIndices(Args);
  return S.rewrite(FT.arrow());
}
