//===- ir/TypeArena.cpp - Hash-consing interner implementation -----------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Interning discipline: children are interned before parents, so lookup is
// shallow — a structural (Merkle) hash over child hashes plus scalars picks
// the bucket, and candidate equality compares scalars plus child *pointers*
// (pointer equality of children is their structural equality, by
// induction). Sizes are canonicalized to +-normal form before interning,
// which is what keeps `sizeEquals` (pointer identity) equivalent to the old
// equality modulo associativity/commutativity of `+`.
//
//===----------------------------------------------------------------------===//

#include "ir/TypeArena.h"

#include "ir/TypeOps.h"
#include "obs/Obs.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace rw;
using namespace rw::ir;

//===----------------------------------------------------------------------===//
// Structural hashing
//===----------------------------------------------------------------------===//

static uint64_t mix(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  return H;
}

static uint64_t qualHash(Qual Q) {
  return Q.isVar() ? mix(0xA1, Q.varIndex())
                   : mix(0xA2, static_cast<uint64_t>(Q.constValue()));
}

static uint64_t locHash(const Loc &L) {
  switch (L.kind()) {
  case Loc::Kind::Var:
    return mix(0xB1, L.varIndex());
  case Loc::Kind::Concrete:
    return mix(mix(0xB2, static_cast<uint64_t>(L.mem())), L.addr());
  case Loc::Kind::Skolem:
    return mix(0xB3, L.skolemId());
  }
  return 0xB0;
}

static uint64_t sizePtrHash(const SizeRef &S) {
  return S ? S->hashValue() : 0xC0FFEE;
}

static uint64_t typePtrHash(const Type &T) {
  return mix(T.P->hashValue(), qualHash(T.Q));
}

static uint64_t typePtrHash(const TypeRef &T) {
  return mix(T.P->hashValue(), qualHash(T.Q));
}

static uint64_t normalSizeHash(const NormalSize &N) {
  uint64_t H = mix(0xD1, N.Const);
  for (uint32_t V : N.Vars)
    H = mix(H, V);
  return H;
}

static uint64_t quantHash(const Quant &Q) {
  uint64_t H = mix(0xE1, static_cast<uint64_t>(Q.K));
  switch (Q.K) {
  case QuantKind::Loc:
    break;
  case QuantKind::Size:
    for (const SizeRef &S : Q.SizeLower)
      H = mix(H, sizePtrHash(S));
    H = mix(H, 0x11);
    for (const SizeRef &S : Q.SizeUpper)
      H = mix(H, sizePtrHash(S));
    break;
  case QuantKind::Qual:
    for (Qual X : Q.QualLower)
      H = mix(H, qualHash(X));
    H = mix(H, 0x12);
    for (Qual X : Q.QualUpper)
      H = mix(H, qualHash(X));
    break;
  case QuantKind::Type:
    H = mix(H, qualHash(Q.TypeQualLower));
    H = mix(H, sizePtrHash(Q.TypeSizeUpper));
    H = mix(H, Q.TypeNoCaps ? 1 : 0);
    break;
  }
  return H;
}

static uint64_t arrowHash(const ArrowType &A) {
  uint64_t H = 0xE2;
  for (const Type &T : A.Params)
    H = mix(H, typePtrHash(T));
  H = mix(H, 0x13);
  for (const Type &T : A.Results)
    H = mix(H, typePtrHash(T));
  return H;
}

//===----------------------------------------------------------------------===//
// Intern-time metadata (free-variable bounds, occurrence flags)
//===----------------------------------------------------------------------===//

namespace {
/// Accumulator for FreeBounds and occurrence flags while scanning a node's
/// immediate children.
struct Meta {
  FreeBounds FB;
  uint8_t Flags = 0;
};
} // namespace

static void bump(uint32_t &Slot, uint32_t Bound) {
  if (Bound > Slot)
    Slot = Bound;
}

static void mergeFB(FreeBounds &Into, const FreeBounds &From) {
  bump(Into.Loc, From.Loc);
  bump(Into.Size, From.Size);
  bump(Into.Qual, From.Qual);
  bump(Into.Type, From.Type);
}

/// Decrements a free bound across \p N binders of the same kind.
static uint32_t decN(uint32_t X, uint32_t N) { return X > N ? X - N : 0; }

static void accQual(Qual Q, Meta &M) {
  if (Q.isVar())
    bump(M.FB.Qual, Q.varIndex() + 1);
}

static void accLoc(const Loc &L, Meta &M) {
  switch (L.kind()) {
  case Loc::Kind::Var:
    bump(M.FB.Loc, L.varIndex() + 1);
    break;
  case Loc::Kind::Concrete:
    M.Flags |= TF_HasConcreteLoc;
    break;
  case Loc::Kind::Skolem:
    M.Flags |= TF_HasSkolemLoc;
    break;
  }
}

static void accSize(const SizeRef &S, Meta &M) {
  if (S)
    bump(M.FB.Size, S->freeBound());
}

static void accPretype(const PretypeRef &P, Meta &M) {
  mergeFB(M.FB, P->freeBounds());
  M.Flags |= P->flags();
}

static void accType(const Type &T, Meta &M) {
  accPretype(T.P, M);
  accQual(T.Q, M);
}

static void accHeap(const HeapTypeRef &H, Meta &M) {
  mergeFB(M.FB, H->freeBounds());
  M.Flags |= H->flags();
}

static void accFun(const FunTypeRef &F, Meta &M) {
  mergeFB(M.FB, F->freeBounds());
  M.Flags |= F->flags();
}

namespace {
/// no_caps bits of one node: the value when every free pretype variable is
/// capability-free, and whether the answer depends on those variables at
/// all. The all-true value is an upper bound (the predicate is monotone in
/// the variable flags), so Dep is false whenever IfTrue is already false.
struct NoCapsBits {
  bool IfTrue = true;
  bool Dep = false;

  void andWith(bool ChildIfTrue, bool ChildDep) {
    if (!IfTrue)
      return;
    IfTrue = ChildIfTrue;
    Dep = IfTrue ? (Dep || ChildDep) : false;
  }
  void andWithType(const Type &T) {
    andWith(T.P->noCapsIfAllVarsFree(), T.P->noCapsDependsOnVars());
  }
  /// A node with no free pretype variables cannot depend on them.
  void clampTo(const FreeBounds &FB) {
    if (FB.Type == 0)
      Dep = false;
  }
};
} // namespace

//===----------------------------------------------------------------------===//
// The arena
//===----------------------------------------------------------------------===//

namespace {
constexpr uint32_t NumConstSizeCache = 257; ///< Bits 0..256 pre-interned.
constexpr uint32_t NumVarCache = 64;        ///< Indices 0..63 pre-interned.

/// Guard for the intern tables and memo maps. Critical sections are a few
/// hash probes long, so a spinlock beats a futex-backed mutex on the
/// (dominant) uncontended path while keeping the arena thread-safe.
struct SpinLock {
  std::atomic_flag F = ATOMIC_FLAG_INIT;
  void lock() {
    while (F.test_and_set(std::memory_order_acquire)) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
  }
  void unlock() { F.clear(std::memory_order_release); }
};
} // namespace

/// Which intern table a journal entry lives in.
enum class JTab : uint8_t { P, H, F, S };

/// One interned node, in intern order — the journal Checkpoint/rollback
/// replays. Only ever appended under the arena lock.
struct JEntry {
  JTab Tab;
  bool Skolem;     ///< Subtree mentions a checker skolem (loc or pretype).
  uint32_t SBytes; ///< serializedNodeBytes at intern time.
  uint64_t Hash;
  uint64_t Bytes; ///< approxNodeBytes at intern time.
  const void *Node;
};

struct TypeArena::Impl {
  mutable SpinLock M;
  std::unordered_map<uint64_t, std::vector<PretypeRef>> PTab;
  std::unordered_map<uint64_t, std::vector<HeapTypeRef>> HTab;
  std::unordered_map<uint64_t, std::vector<FunTypeRef>> FTab;
  std::unordered_map<uint64_t, std::vector<SizeRef>> STab;
  /// Intern journal for Checkpoint/rollback (one entry per live node).
  std::vector<JEntry> Journal;
  /// Memoized ||p|| for closed pretypes, keyed on the canonical node. This
  /// table also *owns* the cached sizes, backing the per-node fast-path
  /// slot (Pretype::ClosedSizeMemo).
  std::unordered_map<const Pretype *, SizeRef> ClosedSize;
  // Lock-free leaf caches: lazily populated atomic slots pointing at
  // table-owned canonical nodes (populate races are benign — every writer
  // stores the same node). Lazy so that arena construction is near-free,
  // which lets short-lived arenas (per-machine runtime types, fuzz tests)
  // stay cheap.
  std::atomic<const Pretype *> Unit{nullptr};
  std::atomic<const Pretype *> Nums[6] = {};
  std::atomic<const Pretype *> TypeVars[NumVarCache] = {};
  std::atomic<const Size *> ConstSizes[NumConstSizeCache] = {};
  std::atomic<const Size *> SizeVars[NumVarCache] = {};
  Stats St;
};

/// Equality for the insert-race re-probe, comparing against the *built*
/// node (the candidate constructor arguments may have been moved into it).
/// Structural equality coincides with the intern key for nodes whose
/// children are canonical in the same arena.
static bool builtEquals(const Pretype &A, const Pretype &B) {
  return structuralPretypeEquals(A, B);
}
static bool builtEquals(const HeapType &A, const HeapType &B) {
  return structuralHeapTypeEquals(A, B);
}
static bool builtEquals(const FunType &A, const FunType &B) {
  return structuralFunTypeEquals(A, B);
}
static bool builtEquals(const Size &A, const Size &B) {
  return A.norm() == B.norm();
}

static bool nodeHasSkolem(const Pretype &P) {
  return P.flags() & (TF_HasSkolemLoc | TF_HasSkolemType);
}
static bool nodeHasSkolem(const HeapType &H) {
  return H.flags() & (TF_HasSkolemLoc | TF_HasSkolemType);
}
static bool nodeHasSkolem(const FunType &F) {
  return F.flags() & (TF_HasSkolemLoc | TF_HasSkolemType);
}
static bool nodeHasSkolem(const Size &) { return false; }

/// Sizeof-based live-memory estimate for Stats::ApproxBytes: the node
/// object plus its owned vector payloads (children are shared, counted
/// once at their own intern).
static uint64_t approxNodeBytes(const Pretype &P) {
  switch (P.kind()) {
  case PretypeKind::Prod:
    return sizeof(ProdPT) + cast<ProdPT>(&P)->elems().size() * sizeof(Type);
  case PretypeKind::Ref:
    return sizeof(RefPT);
  case PretypeKind::Cap:
    return sizeof(CapPT);
  case PretypeKind::Skolem:
    return sizeof(SkolemPT);
  case PretypeKind::Rec:
    return sizeof(RecPT);
  case PretypeKind::ExLoc:
    return sizeof(ExLocPT);
  case PretypeKind::Coderef:
    return sizeof(CoderefPT);
  default:
    return sizeof(Pretype);
  }
}
static uint64_t approxNodeBytes(const HeapType &H) {
  switch (H.kind()) {
  case HeapTypeKind::Variant:
    return sizeof(VariantHT) +
           cast<VariantHT>(&H)->cases().size() * sizeof(Type);
  case HeapTypeKind::Struct:
    return sizeof(StructHT) +
           cast<StructHT>(&H)->fields().size() * sizeof(StructField);
  case HeapTypeKind::Array:
    return sizeof(ArrayHT);
  case HeapTypeKind::Ex:
    return sizeof(ExHT);
  }
  return sizeof(HeapType);
}
static uint64_t approxNodeBytes(const FunType &F) {
  return sizeof(FunType) + F.quants().size() * sizeof(Quant) +
         (F.arrow().Params.size() + F.arrow().Results.size()) * sizeof(Type);
}
static uint64_t approxNodeBytes(const Size &S) {
  return sizeof(Size) + S.norm().Vars.size() * sizeof(uint32_t);
}

/// Wire-size estimates for Stats::SerializedBytes: what one node record of
/// the serial/ type table costs — a tag byte plus varint scalars and
/// child-index references (~2 bytes each at realistic table sizes). Kept
/// as estimates (true varint widths depend on final indices), mirroring
/// the spirit of ApproxBytes.
static uint64_t serializedNodeBytes(const Pretype &P) {
  switch (P.kind()) {
  case PretypeKind::Unit:
    return 1;
  case PretypeKind::Num:
  case PretypeKind::Var:
    return 2;
  case PretypeKind::Skolem:
    return 8;
  case PretypeKind::Prod:
    return 2 + cast<ProdPT>(&P)->elems().size() * 3;
  case PretypeKind::Ref:
  case PretypeKind::Cap:
    return 7;
  case PretypeKind::Ptr:
  case PretypeKind::Own:
    return 4;
  case PretypeKind::Rec:
    return 5;
  case PretypeKind::ExLoc:
    return 4;
  case PretypeKind::Coderef:
    return 3;
  }
  return 1;
}
static uint64_t serializedNodeBytes(const HeapType &H) {
  switch (H.kind()) {
  case HeapTypeKind::Variant:
    return 2 + cast<VariantHT>(&H)->cases().size() * 3;
  case HeapTypeKind::Struct:
    return 2 + cast<StructHT>(&H)->fields().size() * 5;
  case HeapTypeKind::Array:
    return 4;
  case HeapTypeKind::Ex:
    return 7;
  }
  return 1;
}
static uint64_t serializedNodeBytes(const FunType &F) {
  uint64_t B = 3 + F.quants().size() * 4 +
               (F.arrow().Params.size() + F.arrow().Results.size()) * 3;
  for (const Quant &Q : F.quants())
    B += (Q.SizeLower.size() + Q.SizeUpper.size()) * 2 +
         Q.QualLower.size() + Q.QualUpper.size();
  return B;
}
static uint64_t serializedNodeBytes(const Size &S) {
  // Tag + constant + count + sorted variable indices.
  return 3 + (S.norm().Const > 127 ? 2 : 0) + S.norm().Vars.size() * 2;
}

template <class Ref, class EqFn, class MakeFn>
static Ref internNode(SpinLock &M, std::vector<JEntry> &Journal,
                      TypeArena::Stats &St,
                      std::unordered_map<uint64_t, std::vector<Ref>> &Tab,
                      JTab Tag, uint64_t H, uint64_t &NodeCount, EqFn &&Eq,
                      MakeFn &&Make) {
  // Probe under the lock; allocate and compute metadata *outside* it so
  // the critical sections stay a few hash probes long (Make only reads
  // immutable, already-interned children). On a lost insert race the
  // freshly built node is discarded in favor of the first writer's.
  {
    std::lock_guard<SpinLock> G(M);
    auto It = Tab.find(H);
    if (It != Tab.end())
      for (const Ref &N : It->second)
        if (Eq(*N)) {
          ++St.Hits;
          return N;
        }
  }
  Ref N = Make();
  std::lock_guard<SpinLock> G(M);
  std::vector<Ref> &Bucket = Tab[H];
  for (const Ref &Existing : Bucket)
    if (Existing->hashValue() == H && builtEquals(*Existing, *N)) {
      ++St.Hits;
      return Existing;
    }
  ++St.Misses;
  ++NodeCount;
  bool Sk = nodeHasSkolem(*N);
  uint64_t Bytes = approxNodeBytes(*N);
  uint32_t SBytes = static_cast<uint32_t>(serializedNodeBytes(*N));
  St.ApproxBytes += Bytes;
  St.SerializedBytes += SBytes;
  if (Sk)
    ++St.SkolemNodes;
  Journal.push_back({Tag, Sk, SBytes, H, Bytes, N.get()});
  Bucket.push_back(N);
  return N;
}

//===----------------------------------------------------------------------===//
// Private-field access for the intern helpers
//===----------------------------------------------------------------------===//

/// Befriended by the type-node classes so the file-local intern helpers can
/// fill intern-time metadata on freshly allocated nodes.
struct rw::ir::TypeArenaAccess {
  /// Allocates one canonical size node (no table interaction; callers
  /// guarantee uniqueness per normal form).
  static SizeRef newSizeNode(TypeArena *A, Size::Kind K, uint64_t ConstBits,
                             uint32_t VarIdx, SizeRef L, SizeRef R,
                             NormalSize N) {
    Size *S = new Size(K);
    S->ConstBits = ConstBits;
    S->VarIdx = VarIdx;
    S->LHS = std::move(L);
    S->RHS = std::move(R);
    S->FreeBound = N.Vars.empty() ? 0 : N.Vars.back() + 1;
    S->H = normalSizeHash(N);
    S->Norm = std::move(N);
    S->Arena = A;
    return SizeRef(S);
  }

  /// Fills the intern-time metadata of a freshly allocated node.
  template <class NodeT>
  static void finalize(NodeT &N, TypeArena *A, uint64_t H, const Meta &M) {
    N.FB = M.FB;
    N.Flags = M.Flags;
    N.H = H;
    N.Arena = A;
  }

  template <class NodeT>
  static void finalizeNC(NodeT &N, const NoCapsBits &NC) {
    N.NoCapsIfTrue = NC.IfTrue;
    N.NoCapsDepends = NC.Dep;
  }
};

static SizeRef newSizeNode(TypeArena *A, Size::Kind K, uint64_t ConstBits,
                           uint32_t VarIdx, SizeRef L, SizeRef R,
                           NormalSize N) {
  return TypeArenaAccess::newSizeNode(A, K, ConstBits, VarIdx, std::move(L),
                                      std::move(R), std::move(N));
}

template <class NodeT>
static void finalize(NodeT &N, TypeArena *A, uint64_t H, const Meta &M) {
  TypeArenaAccess::finalize(N, A, H, M);
}

template <class NodeT>
static void finalizeNC(NodeT &N, const NoCapsBits &NC) {
  TypeArenaAccess::finalizeNC(N, NC);
}

//===----------------------------------------------------------------------===//
// Sizes
//===----------------------------------------------------------------------===//

SizeRef TypeArena::sizeConst(uint64_t Bits) {
  std::atomic<const Size *> *Slot =
      Bits < NumConstSizeCache ? &I->ConstSizes[Bits] : nullptr;
  if (Slot)
    if (const Size *S = Slot->load(std::memory_order_acquire))
      return S->shared_from_this();
  NormalSize N;
  N.Const = Bits;
  uint64_t H = normalSizeHash(N);
  SizeRef R = internNode(
      I->M, I->Journal, I->St, I->STab, JTab::S, H, I->St.SizeNodes,
      [&](const Size &S) { return S.norm() == N; },
      [&] {
        return newSizeNode(this, Size::Kind::Const, Bits, 0, nullptr, nullptr,
                           N);
      });
  if (Slot)
    Slot->store(R.get(), std::memory_order_release);
  return R;
}

SizeRef TypeArena::sizeVar(uint32_t Idx) {
  std::atomic<const Size *> *Slot =
      Idx < NumVarCache ? &I->SizeVars[Idx] : nullptr;
  if (Slot)
    if (const Size *S = Slot->load(std::memory_order_acquire))
      return S->shared_from_this();
  NormalSize N;
  N.Vars.push_back(Idx);
  uint64_t H = normalSizeHash(N);
  SizeRef R = internNode(
      I->M, I->Journal, I->St, I->STab, JTab::S, H, I->St.SizeNodes,
      [&](const Size &S) { return S.norm() == N; },
      [&] {
        return newSizeNode(this, Size::Kind::Var, 0, Idx, nullptr, nullptr, N);
      });
  if (Slot)
    Slot->store(R.get(), std::memory_order_release);
  return R;
}

SizeRef TypeArena::sizeFromNormal(NormalSize N) {
  std::sort(N.Vars.begin(), N.Vars.end());
  if (N.Vars.empty())
    return sizeConst(N.Const);
  if (N.Const == 0 && N.Vars.size() == 1)
    return sizeVar(N.Vars[0]);
  // Canonical shape: a left-leaning chain over the sorted variables with
  // the constant (when nonzero) folded in last. Every prefix of the chain
  // is itself a canonical node, so prefixes are shared across sums.
  SizeRef Acc = sizeVar(N.Vars[0]);
  NormalSize Partial;
  Partial.Vars.push_back(N.Vars[0]);
  auto chain = [&](SizeRef Leaf, NormalSize Combined) {
    uint64_t H = normalSizeHash(Combined);
    SizeRef Node = internNode(
        I->M, I->Journal, I->St, I->STab, JTab::S, H, I->St.SizeNodes,
        [&](const Size &S) { return S.norm() == Combined; },
        [&] {
          return newSizeNode(this, Size::Kind::Plus, 0, 0, Acc,
                             std::move(Leaf), Combined);
        });
    Acc = std::move(Node);
    Partial = std::move(Combined);
  };
  for (size_t J = 1; J < N.Vars.size(); ++J) {
    NormalSize Combined = Partial;
    Combined.Vars.push_back(N.Vars[J]);
    chain(sizeVar(N.Vars[J]), std::move(Combined));
  }
  if (N.Const != 0) {
    NormalSize Combined = Partial;
    Combined.Const = N.Const;
    chain(sizeConst(N.Const), std::move(Combined));
  }
  return Acc;
}

SizeRef TypeArena::sizePlus(const SizeRef &L, const SizeRef &R) {
  assert(L && R && "plus of null sizes");
  NormalSize N;
  N.Const = L->norm().Const + R->norm().Const;
  N.Vars = L->norm().Vars;
  N.Vars.reserve(N.Vars.size() + R->norm().Vars.size());
  N.Vars.insert(N.Vars.end(), R->norm().Vars.begin(), R->norm().Vars.end());
  return sizeFromNormal(std::move(N));
}

//===----------------------------------------------------------------------===//
// Pretypes
//===----------------------------------------------------------------------===//

PretypeRef TypeArena::unit() {
  if (const Pretype *P = I->Unit.load(std::memory_order_acquire))
    return P->shared_from_this();
  uint64_t H = mix(static_cast<uint64_t>(PretypeKind::Unit), 0);
  PretypeRef R = internNode(
      I->M, I->Journal, I->St, I->PTab, JTab::P, H, I->St.PretypeNodes,
      [&](const Pretype &P) { return P.kind() == PretypeKind::Unit; },
      [&] {
        auto N = std::shared_ptr<UnitPT>(new UnitPT());
        finalize(*N, this, H, Meta{});
        finalizeNC(*N, NoCapsBits{});
        return N;
      });
  I->Unit.store(R.get(), std::memory_order_release);
  return R;
}

PretypeRef TypeArena::num(NumType NT) {
  std::atomic<const Pretype *> &Slot = I->Nums[static_cast<size_t>(NT)];
  if (const Pretype *P = Slot.load(std::memory_order_acquire))
    return P->shared_from_this();
  uint64_t H = mix(static_cast<uint64_t>(PretypeKind::Num),
                   static_cast<uint64_t>(NT));
  PretypeRef R = internNode(
      I->M, I->Journal, I->St, I->PTab, JTab::P, H, I->St.PretypeNodes,
      [&](const Pretype &P) {
        return P.kind() == PretypeKind::Num && cast<NumPT>(&P)->numType() == NT;
      },
      [&] {
        auto N = std::shared_ptr<NumPT>(new NumPT(NT));
        finalize(*N, this, H, Meta{});
        finalizeNC(*N, NoCapsBits{});
        return N;
      });
  Slot.store(R.get(), std::memory_order_release);
  return R;
}

PretypeRef TypeArena::typeVar(uint32_t Idx) {
  std::atomic<const Pretype *> *Slot =
      Idx < NumVarCache ? &I->TypeVars[Idx] : nullptr;
  if (Slot)
    if (const Pretype *P = Slot->load(std::memory_order_acquire))
      return P->shared_from_this();
  uint64_t H = mix(static_cast<uint64_t>(PretypeKind::Var), Idx);
  PretypeRef R = internNode(
      I->M, I->Journal, I->St, I->PTab, JTab::P, H, I->St.PretypeNodes,
      [&](const Pretype &P) {
        return P.kind() == PretypeKind::Var && cast<VarPT>(&P)->index() == Idx;
      },
      [&] {
        auto N = std::shared_ptr<VarPT>(new VarPT(Idx));
        Meta M;
        M.FB.Type = Idx + 1;
        finalize(*N, this, H, M);
        NoCapsBits NC;
        NC.IfTrue = true;
        NC.Dep = true;
        finalizeNC(*N, NC);
        return N;
      });
  if (Slot)
    Slot->store(R.get(), std::memory_order_release);
  return R;
}

PretypeRef TypeArena::skolem(uint64_t Id, Qual QualLower, SizeRef SizeUpper,
                             bool NoCaps) {
  uint64_t H = mix(static_cast<uint64_t>(PretypeKind::Skolem), Id);
  H = mix(H, qualHash(QualLower));
  H = mix(H, sizePtrHash(SizeUpper));
  H = mix(H, NoCaps ? 1 : 0);
  return internNode(
      I->M, I->Journal, I->St, I->PTab, JTab::P, H, I->St.PretypeNodes,
      [&](const Pretype &P) {
        if (P.kind() != PretypeKind::Skolem)
          return false;
        const auto *S = cast<SkolemPT>(&P);
        return S->id() == Id && S->qualLower() == QualLower &&
               S->sizeUpper().get() == SizeUpper.get() &&
               S->noCaps() == NoCaps;
      },
      [&] {
        auto N = std::shared_ptr<SkolemPT>(new SkolemPT(Id, QualLower,
                                            std::move(SizeUpper), NoCaps));
        Meta M;
        accQual(N->qualLower(), M);
        accSize(N->sizeUpper(), M);
        M.Flags |= TF_HasSkolemType;
        finalize(*N, this, H, M);
        NoCapsBits NC;
        NC.IfTrue = N->noCaps();
        finalizeNC(*N, NC);
        return N;
      });
}

PretypeRef TypeArena::prod(std::vector<Type> Elems) {
  return prodImpl(Elems.data(), Elems.size(), &Elems);
}

PretypeRef TypeArena::prodSpan(const Type *Elems, size_t N) {
  return prodImpl(Elems, N, nullptr);
}

PretypeRef TypeArena::prodSpan(const TypeRef *Elems, size_t N) {
  return prodImpl(Elems, N, nullptr);
}

/// Re-owns one element for a freshly interned node: owning elements copy,
/// borrowed ones bump the node's refcount (cold path only — a table hit
/// never materializes anything).
static Type ownElem(const Type &T) { return T; }
static Type ownElem(const TypeRef &T) { return T.own(); }

template <class E>
PretypeRef TypeArena::prodImpl(const E *Elems, size_t NumElems,
                               std::vector<Type> *Own) {
  uint64_t H = mix(0xF0, static_cast<uint64_t>(PretypeKind::Prod));
  for (size_t J = 0; J < NumElems; ++J)
    H = mix(H, typePtrHash(Elems[J]));
  return internNode(
      I->M, I->Journal, I->St, I->PTab, JTab::P, H, I->St.PretypeNodes,
      [&](const Pretype &P) {
        if (P.kind() != PretypeKind::Prod)
          return false;
        const auto &Have = cast<ProdPT>(&P)->elems();
        if (Have.size() != NumElems)
          return false;
        for (size_t J = 0; J < NumElems; ++J)
          if (!typeEquals(Have[J], Elems[J]))
            return false;
        return true;
      },
      [&] {
        std::vector<Type> OwnV;
        if (Own) {
          OwnV = std::move(*Own);
        } else {
          OwnV.reserve(NumElems);
          for (size_t J = 0; J < NumElems; ++J)
            OwnV.push_back(ownElem(Elems[J]));
        }
        auto N = std::shared_ptr<ProdPT>(new ProdPT(std::move(OwnV)));
        Meta M;
        NoCapsBits NC;
        for (const Type &T : N->elems()) {
          accType(T, M);
          NC.andWithType(T);
        }
        NC.clampTo(M.FB);
        finalize(*N, this, H, M);
        finalizeNC(*N, NC);
        return N;
      });
}

PretypeRef TypeArena::ref(Privilege Priv, Loc L, HeapTypeRef HT) {
  assert(HT && "ref with null heap type");
  uint64_t H = mix(static_cast<uint64_t>(PretypeKind::Ref),
                   static_cast<uint64_t>(Priv));
  H = mix(H, locHash(L));
  H = mix(H, HT->hashValue());
  return internNode(
      I->M, I->Journal, I->St, I->PTab, JTab::P, H, I->St.PretypeNodes,
      [&](const Pretype &P) {
        if (P.kind() != PretypeKind::Ref)
          return false;
        const auto *R = cast<RefPT>(&P);
        return R->privilege() == Priv && R->loc() == L &&
               R->heapType().get() == HT.get();
      },
      [&] {
        auto N = std::shared_ptr<RefPT>(new RefPT(Priv, L, std::move(HT)));
        Meta M;
        accLoc(N->loc(), M);
        accHeap(N->heapType(), M);
        finalize(*N, this, H, M);
        // A reference pairs its capability with its pointer — exactly the
        // form the paper allows in GC'd memory, so no_caps holds outright.
        finalizeNC(*N, NoCapsBits{});
        return N;
      });
}

PretypeRef TypeArena::ptr(Loc L) {
  uint64_t H = mix(static_cast<uint64_t>(PretypeKind::Ptr), locHash(L));
  return internNode(
      I->M, I->Journal, I->St, I->PTab, JTab::P, H, I->St.PretypeNodes,
      [&](const Pretype &P) {
        return P.kind() == PretypeKind::Ptr && cast<PtrPT>(&P)->loc() == L;
      },
      [&] {
        auto N = std::shared_ptr<PtrPT>(new PtrPT(L));
        Meta M;
        accLoc(L, M);
        finalize(*N, this, H, M);
        finalizeNC(*N, NoCapsBits{});
        return N;
      });
}

PretypeRef TypeArena::cap(Privilege Priv, Loc L, HeapTypeRef HT) {
  assert(HT && "cap with null heap type");
  uint64_t H = mix(static_cast<uint64_t>(PretypeKind::Cap),
                   static_cast<uint64_t>(Priv));
  H = mix(H, locHash(L));
  H = mix(H, HT->hashValue());
  return internNode(
      I->M, I->Journal, I->St, I->PTab, JTab::P, H, I->St.PretypeNodes,
      [&](const Pretype &P) {
        if (P.kind() != PretypeKind::Cap)
          return false;
        const auto *C = cast<CapPT>(&P);
        return C->privilege() == Priv && C->loc() == L &&
               C->heapType().get() == HT.get();
      },
      [&] {
        auto N = std::shared_ptr<CapPT>(new CapPT(Priv, L, std::move(HT)));
        Meta M;
        accLoc(N->loc(), M);
        accHeap(N->heapType(), M);
        finalize(*N, this, H, M);
        NoCapsBits NC;
        NC.IfTrue = false;
        finalizeNC(*N, NC);
        return N;
      });
}

PretypeRef TypeArena::own(Loc L) {
  uint64_t H = mix(static_cast<uint64_t>(PretypeKind::Own), locHash(L));
  return internNode(
      I->M, I->Journal, I->St, I->PTab, JTab::P, H, I->St.PretypeNodes,
      [&](const Pretype &P) {
        return P.kind() == PretypeKind::Own && cast<OwnPT>(&P)->loc() == L;
      },
      [&] {
        auto N = std::shared_ptr<OwnPT>(new OwnPT(L));
        Meta M;
        accLoc(L, M);
        finalize(*N, this, H, M);
        NoCapsBits NC;
        NC.IfTrue = false;
        finalizeNC(*N, NC);
        return N;
      });
}

PretypeRef TypeArena::rec(Qual Bound, Type Body) {
  assert(Body.valid() && "rec with null body");
  uint64_t H = mix(static_cast<uint64_t>(PretypeKind::Rec), qualHash(Bound));
  H = mix(H, typePtrHash(Body));
  return internNode(
      I->M, I->Journal, I->St, I->PTab, JTab::P, H, I->St.PretypeNodes,
      [&](const Pretype &P) {
        if (P.kind() != PretypeKind::Rec)
          return false;
        const auto *R = cast<RecPT>(&P);
        return R->bound() == Bound && typeEquals(R->body(), Body);
      },
      [&] {
        auto N = std::shared_ptr<RecPT>(new RecPT(Bound, std::move(Body)));
        Meta M;
        accType(N->body(), M);
        M.FB.Type = decN(M.FB.Type, 1); // One pretype binder.
        accQual(N->bound(), M);
        finalize(*N, this, H, M);
        NoCapsBits NC;
        NC.andWithType(N->body());
        NC.clampTo(M.FB);
        finalizeNC(*N, NC);
        return N;
      });
}

PretypeRef TypeArena::exLoc(Type Body) {
  assert(Body.valid() && "exloc with null body");
  uint64_t H =
      mix(static_cast<uint64_t>(PretypeKind::ExLoc), typePtrHash(Body));
  return internNode(
      I->M, I->Journal, I->St, I->PTab, JTab::P, H, I->St.PretypeNodes,
      [&](const Pretype &P) {
        return P.kind() == PretypeKind::ExLoc &&
               typeEquals(cast<ExLocPT>(&P)->body(), Body);
      },
      [&] {
        auto N = std::shared_ptr<ExLocPT>(new ExLocPT(std::move(Body)));
        Meta M;
        accType(N->body(), M);
        M.FB.Loc = decN(M.FB.Loc, 1); // One location binder.
        finalize(*N, this, H, M);
        NoCapsBits NC;
        NC.andWithType(N->body());
        NC.clampTo(M.FB);
        finalizeNC(*N, NC);
        return N;
      });
}

PretypeRef TypeArena::coderef(FunTypeRef FT) {
  assert(FT && "coderef with null function type");
  uint64_t H =
      mix(static_cast<uint64_t>(PretypeKind::Coderef), FT->hashValue());
  return internNode(
      I->M, I->Journal, I->St, I->PTab, JTab::P, H, I->St.PretypeNodes,
      [&](const Pretype &P) {
        return P.kind() == PretypeKind::Coderef &&
               cast<CoderefPT>(&P)->funType().get() == FT.get();
      },
      [&] {
        auto N = std::shared_ptr<CoderefPT>(new CoderefPT(std::move(FT)));
        Meta M;
        accFun(N->funType(), M);
        finalize(*N, this, H, M);
        finalizeNC(*N, NoCapsBits{}); // Code pointers never hold caps.
        return N;
      });
}

//===----------------------------------------------------------------------===//
// Heap types
//===----------------------------------------------------------------------===//

HeapTypeRef TypeArena::variant(std::vector<Type> Cases) {
  return variantImpl(Cases.data(), Cases.size(), &Cases);
}

HeapTypeRef TypeArena::variantSpan(const Type *Cases, size_t N) {
  return variantImpl(Cases, N, nullptr);
}

HeapTypeRef TypeArena::variantSpan(const TypeRef *Cases, size_t N) {
  return variantImpl(Cases, N, nullptr);
}

template <class E>
HeapTypeRef TypeArena::variantImpl(const E *Cases, size_t NumCases,
                                   std::vector<Type> *Own) {
  uint64_t H = mix(0xF1, static_cast<uint64_t>(HeapTypeKind::Variant));
  for (size_t J = 0; J < NumCases; ++J)
    H = mix(H, typePtrHash(Cases[J]));
  return internNode(
      I->M, I->Journal, I->St, I->HTab, JTab::H, H, I->St.HeapTypeNodes,
      [&](const HeapType &HT) {
        if (HT.kind() != HeapTypeKind::Variant)
          return false;
        const auto &Have = cast<VariantHT>(&HT)->cases();
        if (Have.size() != NumCases)
          return false;
        for (size_t J = 0; J < NumCases; ++J)
          if (!typeEquals(Have[J], Cases[J]))
            return false;
        return true;
      },
      [&] {
        std::vector<Type> OwnV;
        if (Own) {
          OwnV = std::move(*Own);
        } else {
          OwnV.reserve(NumCases);
          for (size_t J = 0; J < NumCases; ++J)
            OwnV.push_back(ownElem(Cases[J]));
        }
        auto N = std::shared_ptr<VariantHT>(new VariantHT(std::move(OwnV)));
        Meta M;
        NoCapsBits NC;
        for (const Type &T : N->cases()) {
          accType(T, M);
          NC.andWithType(T);
        }
        NC.clampTo(M.FB);
        finalize(*N, this, H, M);
        finalizeNC(*N, NC);
        return N;
      });
}

HeapTypeRef TypeArena::structure(std::vector<StructField> Fields) {
  return structureImpl(Fields.data(), Fields.size(), &Fields);
}

HeapTypeRef TypeArena::structureSpan(const StructField *Fields, size_t N) {
  return structureImpl(Fields, N, nullptr);
}

/// Uniform raw-slot access over owning and borrowed struct fields, so
/// the struct recipe below exists exactly once.
static const Size *slotPtr(const StructField &F) { return F.Slot.get(); }
static const Size *slotPtr(const StructFieldRef &F) { return F.Slot; }
static StructField ownField(const StructField &F) { return F; }
static StructField ownField(const StructFieldRef &F) {
  return {F.T.own(), F.Slot->shared_from_this()};
}

HeapTypeRef TypeArena::structureSpan(const StructFieldRef *Fields,
                                     size_t N) {
  return structureImpl(Fields, N, nullptr);
}

template <class F>
HeapTypeRef TypeArena::structureImpl(const F *Fields, size_t NumFields,
                                     std::vector<StructField> *Own) {
  uint64_t H = mix(0xF1, static_cast<uint64_t>(HeapTypeKind::Struct));
  for (size_t J = 0; J < NumFields; ++J) {
    H = mix(H, typePtrHash(Fields[J].T));
    const Size *S = slotPtr(Fields[J]);
    H = mix(H, S ? S->hashValue() : 0xC0FFEE);
  }
  return internNode(
      I->M, I->Journal, I->St, I->HTab, JTab::H, H, I->St.HeapTypeNodes,
      [&](const HeapType &HT) {
        if (HT.kind() != HeapTypeKind::Struct)
          return false;
        const auto &Have = cast<StructHT>(&HT)->fields();
        if (Have.size() != NumFields)
          return false;
        for (size_t J = 0; J < NumFields; ++J)
          if (!typeEquals(Have[J].T, Fields[J].T) ||
              Have[J].Slot.get() != slotPtr(Fields[J]))
            return false;
        return true;
      },
      [&] {
        std::vector<StructField> OwnV;
        if (Own) {
          OwnV = std::move(*Own);
        } else {
          OwnV.reserve(NumFields);
          for (size_t J = 0; J < NumFields; ++J)
            OwnV.push_back(ownField(Fields[J]));
        }
        auto N = std::shared_ptr<StructHT>(new StructHT(std::move(OwnV)));
        Meta M;
        NoCapsBits NC;
        for (const StructField &Fld : N->fields()) {
          accType(Fld.T, M);
          accSize(Fld.Slot, M);
          NC.andWithType(Fld.T);
        }
        NC.clampTo(M.FB);
        finalize(*N, this, H, M);
        finalizeNC(*N, NC);
        return N;
      });
}

HeapTypeRef TypeArena::array(Type Elem) {
  assert(Elem.valid() && "array with null element type");
  uint64_t H =
      mix(mix(0xF1, static_cast<uint64_t>(HeapTypeKind::Array)),
          typePtrHash(Elem));
  return internNode(
      I->M, I->Journal, I->St, I->HTab, JTab::H, H, I->St.HeapTypeNodes,
      [&](const HeapType &HT) {
        return HT.kind() == HeapTypeKind::Array &&
               typeEquals(cast<ArrayHT>(&HT)->elem(), Elem);
      },
      [&] {
        auto N = std::shared_ptr<ArrayHT>(new ArrayHT(std::move(Elem)));
        Meta M;
        accType(N->elem(), M);
        finalize(*N, this, H, M);
        NoCapsBits NC;
        NC.andWithType(N->elem());
        NC.clampTo(M.FB);
        finalizeNC(*N, NC);
        return N;
      });
}

HeapTypeRef TypeArena::ex(Qual QualLower, SizeRef SizeUpper, Type Body) {
  assert(Body.valid() && "ex with null body");
  uint64_t H = mix(mix(0xF1, static_cast<uint64_t>(HeapTypeKind::Ex)),
                   qualHash(QualLower));
  H = mix(H, sizePtrHash(SizeUpper));
  H = mix(H, typePtrHash(Body));
  return internNode(
      I->M, I->Journal, I->St, I->HTab, JTab::H, H, I->St.HeapTypeNodes,
      [&](const HeapType &HT) {
        if (HT.kind() != HeapTypeKind::Ex)
          return false;
        const auto *E = cast<ExHT>(&HT);
        return E->qualLower() == QualLower &&
               E->sizeUpper().get() == SizeUpper.get() &&
               typeEquals(E->body(), Body);
      },
      [&] {
        auto N = std::shared_ptr<ExHT>(new ExHT(QualLower, std::move(SizeUpper),
                                        std::move(Body)));
        Meta M;
        accQual(N->qualLower(), M);
        accSize(N->sizeUpper(), M);
        {
          Meta BodyM;
          accType(N->body(), BodyM);
          BodyM.FB.Type = decN(BodyM.FB.Type, 1); // One pretype binder.
          mergeFB(M.FB, BodyM.FB);
          M.Flags |= BodyM.Flags;
        }
        finalize(*N, this, H, M);
        NoCapsBits NC;
        NC.andWithType(N->body()); // The binder's witness is cap-free.
        NC.clampTo(M.FB);
        finalizeNC(*N, NC);
        return N;
      });
}

//===----------------------------------------------------------------------===//
// Function types
//===----------------------------------------------------------------------===//

FunTypeRef TypeArena::fun(std::vector<Quant> Quants, ArrowType Arrow) {
  uint64_t H = 0xF2;
  for (const Quant &Q : Quants)
    H = mix(H, quantHash(Q));
  H = mix(H, arrowHash(Arrow));
  return internNode(
      I->M, I->Journal, I->St, I->FTab, JTab::F, H, I->St.FunTypeNodes,
      [&](const FunType &F) {
        if (F.quants().size() != Quants.size())
          return false;
        for (size_t J = 0; J < Quants.size(); ++J)
          if (!quantEquals(F.quants()[J], Quants[J]))
            return false;
        return arrowEquals(F.arrow(), Arrow);
      },
      [&] {
        auto N = std::shared_ptr<FunType>(new FunType(std::move(Quants), std::move(Arrow)));
        Meta M;
        // Each quantifier's constraints see only the binders declared
        // before it; free bounds are re-based across those.
        uint32_t NL = 0, NS = 0, NQ = 0, NT = 0;
        for (const Quant &Q : N->quants()) {
          Meta QM;
          switch (Q.K) {
          case QuantKind::Loc:
            break;
          case QuantKind::Size:
            for (const SizeRef &S : Q.SizeLower)
              accSize(S, QM);
            for (const SizeRef &S : Q.SizeUpper)
              accSize(S, QM);
            break;
          case QuantKind::Qual:
            for (Qual X : Q.QualLower)
              accQual(X, QM);
            for (Qual X : Q.QualUpper)
              accQual(X, QM);
            break;
          case QuantKind::Type:
            accQual(Q.TypeQualLower, QM);
            accSize(Q.TypeSizeUpper, QM);
            break;
          }
          FreeBounds Rebased;
          Rebased.Loc = decN(QM.FB.Loc, NL);
          Rebased.Size = decN(QM.FB.Size, NS);
          Rebased.Qual = decN(QM.FB.Qual, NQ);
          Rebased.Type = decN(QM.FB.Type, NT);
          mergeFB(M.FB, Rebased);
          M.Flags |= QM.Flags;
          switch (Q.K) {
          case QuantKind::Loc:
            ++NL;
            break;
          case QuantKind::Size:
            ++NS;
            break;
          case QuantKind::Qual:
            ++NQ;
            break;
          case QuantKind::Type:
            ++NT;
            break;
          }
        }
        Meta AM;
        for (const Type &T : N->arrow().Params)
          accType(T, AM);
        for (const Type &T : N->arrow().Results)
          accType(T, AM);
        FreeBounds Rebased;
        Rebased.Loc = decN(AM.FB.Loc, NL);
        Rebased.Size = decN(AM.FB.Size, NS);
        Rebased.Qual = decN(AM.FB.Qual, NQ);
        Rebased.Type = decN(AM.FB.Type, NT);
        mergeFB(M.FB, Rebased);
        M.Flags |= AM.Flags;
        finalize(*N, this, H, M);
        return N;
      });
}

//===----------------------------------------------------------------------===//
// Memoized closed-type sizing
//===----------------------------------------------------------------------===//

SizeRef TypeArena::closedSizeOf(const PretypeRef &P) {
  assert(P && P->freeBounds().Type == 0 &&
         "closedSizeOf on an open pretype");
  // Lock-free fast path: the per-node slot caches a raw pointer to the
  // canonical size (kept alive by this arena's memo table); hand out an
  // *owning* reference via shared_from_this so the caller's SizeRef has
  // the same lifetime semantics as every other node reference.
  if (const Size *S = P->ClosedSizeMemo.load(std::memory_order_acquire))
    return S->shared_from_this();
  // Compute outside the lock (the recursion interns sizes, which locks per
  // operation), interning the result into *this* arena so that repeated
  // queries — possibly under a different current arena — always return the
  // same canonical node.
  SizeRef R;
  {
    ArenaScope Scope(*this);
    static const TypeVarSizes Empty;
    R = detail::sizeOfPretypeRaw(P, Empty);
  }
  std::lock_guard<SpinLock> G(I->M);
  auto [It, Inserted] = I->ClosedSize.emplace(P.get(), R);
  // Publish the first writer's node; later writers store the same pointer.
  P->ClosedSizeMemo.store(It->second.get(), std::memory_order_release);
  return It->second;
}

const Size *TypeArena::closedSizePtr(const Pretype *P) {
  assert(P && P->freeBounds().Type == 0 &&
         "closedSizePtr on an open pretype");
  // Same memo as closedSizeOf, but the answer stays a raw pointer: the
  // memo table owns the node for the arena's lifetime, so the borrowed
  // checker path never touches a refcount here.
  if (const Size *S = P->ClosedSizeMemo.load(std::memory_order_acquire))
    return S;
  return closedSizeOf(P->shared_from_this()).get();
}

// The wf memos live as lock-free per-node success bits; the arena methods
// are the sanctioned accessors (the bits are meaningless without the
// interning invariant that one structural identity is one node).

bool TypeArena::isKnownWfPretype(const Pretype *P, bool OuterLin) const {
  return P->WfMemo.load(std::memory_order_acquire) & (OuterLin ? 2u : 1u);
}

void TypeArena::noteWfPretype(const Pretype *P, bool OuterLin) {
  P->WfMemo.fetch_or(OuterLin ? 2u : 1u, std::memory_order_release);
}

bool TypeArena::isKnownWfFun(const FunType *F) const {
  return F->WfMemo.load(std::memory_order_acquire) != 0;
}

void TypeArena::noteWfFun(const FunType *F) {
  F->WfMemo.store(1, std::memory_order_release);
}

//===----------------------------------------------------------------------===//
// Arena lifecycle, current-arena scoping, stats
//===----------------------------------------------------------------------===//

// Leaf caches are lazy (see Impl), so constructing an arena allocates
// nothing beyond the empty tables — short-lived arenas are cheap.
TypeArena::TypeArena() : I(std::make_unique<Impl>()) {}

TypeArena::~TypeArena() = default;

TypeArena::Stats TypeArena::stats() const {
  std::lock_guard<SpinLock> G(I->M);
  return I->St;
}

//===----------------------------------------------------------------------===//
// Checkpoint / rollback (bounded growth under skolem churn)
//===----------------------------------------------------------------------===//

TypeArena::Checkpoint TypeArena::checkpoint() const {
  std::lock_guard<SpinLock> G(I->M);
  return Checkpoint{I->Journal.size()};
}

namespace {
/// Swap-removes the journal entry's node from its bucket. Returns false if
/// the node is no longer in the table (already removed by an earlier
/// overlapping rollback — callers treat that as a no-op).
template <class Ref>
bool eraseNode(std::unordered_map<uint64_t, std::vector<Ref>> &Tab,
               const JEntry &E) {
  auto It = Tab.find(E.Hash);
  if (It == Tab.end())
    return false;
  std::vector<Ref> &Bucket = It->second;
  for (size_t J = 0; J < Bucket.size(); ++J)
    if (Bucket[J].get() == E.Node) {
      Bucket[J] = std::move(Bucket.back());
      Bucket.pop_back();
      if (Bucket.empty())
        Tab.erase(It);
      return true;
    }
  return false;
}
} // namespace

uint64_t TypeArena::rollbackImpl(uint64_t Mark, bool SkolemOnly) {
  std::lock_guard<SpinLock> G(I->M);
  if (Mark > I->Journal.size())
    return 0;

  uint64_t Removed = 0;
  // Pointers removed from each table, for the post-pass scrubs below.
  std::unordered_set<const void *> RemovedP, RemovedS;
  std::vector<JEntry> Kept; // Young survivors (SkolemOnly), reverse order.

  for (size_t J = I->Journal.size(); J > Mark; --J) {
    JEntry &E = I->Journal[J - 1];
    if (SkolemOnly && !E.Skolem) {
      Kept.push_back(E);
      continue;
    }
    bool Erased = false;
    switch (E.Tab) {
    case JTab::P: {
      // Clear the node's closed-size fast-path slot *before* the bucket
      // erase: dropping the table's reference may destroy the node, and
      // an externally retained node must not keep a raw pointer into a
      // memo entry we are about to drop.
      const Pretype *PN = static_cast<const Pretype *>(E.Node);
      auto CS = I->ClosedSize.find(PN);
      if (CS != I->ClosedSize.end())
        PN->ClosedSizeMemo.store(nullptr, std::memory_order_release);
      Erased = eraseNode(I->PTab, E);
      if (Erased) {
        --I->St.PretypeNodes;
        RemovedP.insert(E.Node);
        if (CS != I->ClosedSize.end())
          I->ClosedSize.erase(CS);
      }
      break;
    }
    case JTab::H:
      Erased = eraseNode(I->HTab, E);
      if (Erased)
        --I->St.HeapTypeNodes;
      break;
    case JTab::F:
      Erased = eraseNode(I->FTab, E);
      if (Erased)
        --I->St.FunTypeNodes;
      break;
    case JTab::S:
      Erased = eraseNode(I->STab, E);
      if (Erased) {
        --I->St.SizeNodes;
        RemovedS.insert(E.Node);
      }
      break;
    }
    if (Erased) {
      ++Removed;
      I->St.ApproxBytes -= E.Bytes;
      I->St.SerializedBytes -= E.SBytes;
      if (E.Skolem)
        --I->St.SkolemNodes;
    }
  }

  I->Journal.resize(Mark);
  for (size_t J = Kept.size(); J > 0; --J)
    I->Journal.push_back(Kept[J - 1]);

  // Full-rollback hygiene: leaf caches and closed-size memos may hold raw
  // pointers to nodes that just lost table ownership. (SkolemOnly never
  // removes leaves or sizes — they cannot mention a skolem.)
  if (!SkolemOnly && !RemovedP.empty()) {
    auto ScrubP = [&](std::atomic<const Pretype *> &Slot) {
      if (RemovedP.count(Slot.load(std::memory_order_relaxed)))
        Slot.store(nullptr, std::memory_order_relaxed);
    };
    ScrubP(I->Unit);
    for (auto &S : I->Nums)
      ScrubP(S);
    for (auto &S : I->TypeVars)
      ScrubP(S);
  }
  if (!SkolemOnly && !RemovedS.empty()) {
    auto ScrubS = [&](std::atomic<const Size *> &Slot) {
      if (RemovedS.count(Slot.load(std::memory_order_relaxed)))
        Slot.store(nullptr, std::memory_order_relaxed);
    };
    for (auto &S : I->ConstSizes)
      ScrubS(S);
    for (auto &S : I->SizeVars)
      ScrubS(S);
    // A kept pretype's closed-size memo may reference a removed size; the
    // map entry owns that size, so erase the pair (and clear the slot) to
    // keep canonicality: a re-interned equal size would otherwise compare
    // pointer-unequal to the memoized one.
    for (auto It = I->ClosedSize.begin(); It != I->ClosedSize.end();) {
      if (RemovedS.count(It->second.get())) {
        It->first->ClosedSizeMemo.store(nullptr, std::memory_order_release);
        It = I->ClosedSize.erase(It);
      } else {
        ++It;
      }
    }
  }
  return Removed;
}

uint64_t TypeArena::rollbackSkolems(const Checkpoint &C) {
  return rollbackImpl(C.Mark, /*SkolemOnly=*/true);
}

uint64_t TypeArena::rollback(const Checkpoint &C) {
  return rollbackImpl(C.Mark, /*SkolemOnly=*/false);
}

const std::shared_ptr<TypeArena> &TypeArena::globalPtr() {
  static std::shared_ptr<TypeArena> G = [] {
    auto A = std::make_shared<TypeArena>();
    // The process-wide arena reports through obs::snapshot() for the
    // whole process lifetime (the weak_ptr breaks the cycle and guards
    // static-destruction order; short-lived scratch arenas stay out of
    // the registry). Never unregistered — the arena lives as long as any
    // code that could snapshot.
    obs::registerSource(
        "arena", [W = std::weak_ptr<TypeArena>(A)](const obs::EmitFn &E) {
          std::shared_ptr<TypeArena> A = W.lock();
          if (!A)
            return;
          TypeArena::Stats S = A->stats();
          E("hits", S.Hits);
          E("misses", S.Misses);
          E("pretype_nodes", S.PretypeNodes);
          E("heap_type_nodes", S.HeapTypeNodes);
          E("fun_type_nodes", S.FunTypeNodes);
          E("size_nodes", S.SizeNodes);
          E("skolem_nodes", S.SkolemNodes);
          E("total_nodes", S.totalNodes());
          E("approx_bytes", S.ApproxBytes);
          E("serialized_bytes", S.SerializedBytes);
        });
    return A;
  }();
  return G;
}

TypeArena &TypeArena::global() { return *globalPtr(); }

static thread_local TypeArena *CurrentArena = nullptr;

TypeArena &TypeArena::current() {
  return CurrentArena ? *CurrentArena : global();
}

ArenaScope::ArenaScope(TypeArena &A) : Prev(CurrentArena) {
  CurrentArena = &A;
}

ArenaScope::~ArenaScope() { CurrentArena = Prev; }

#ifndef NDEBUG
// Debug arena-lifetime assertion behind ir::TypeRef (ir/Types.h): every
// borrow must name a node of the arena active on this thread — the one
// whose table keeps the node alive for the duration of the check/lower.
// A mismatch means the borrow could outlive its owner (or that a worker
// thread forgot to install the module's ArenaScope), so fail loudly here
// rather than dangle later. The owner tag is the node's existing
// intern-time Arena back-pointer, so this costs nothing in release builds.
void rw::ir::detail::assertBorrowedFromCurrentArena(const Pretype *P) {
  assert((!P || !P->arena() || P->arena() == &TypeArena::current()) &&
         "borrowed TypeRef node does not belong to the active ArenaScope "
         "arena");
}
#endif

//===----------------------------------------------------------------------===//
// Free factory helpers (ir/Types.h, ir/Size.h) — intern into current()
//===----------------------------------------------------------------------===//

SizeRef Size::constant(uint64_t Bits) {
  return TypeArena::current().sizeConst(Bits);
}
SizeRef Size::var(uint32_t Idx) { return TypeArena::current().sizeVar(Idx); }
SizeRef Size::plus(SizeRef L, SizeRef R) {
  return TypeArena::current().sizePlus(L, R);
}

FunTypeRef FunType::get(std::vector<Quant> Quants, ArrowType Arrow) {
  return TypeArena::current().fun(std::move(Quants), std::move(Arrow));
}

PretypeRef rw::ir::unitPT() { return TypeArena::current().unit(); }
PretypeRef rw::ir::numPT(NumType NT) { return TypeArena::current().num(NT); }
PretypeRef rw::ir::varPT(uint32_t Idx) {
  return TypeArena::current().typeVar(Idx);
}
PretypeRef rw::ir::skolemPT(uint64_t Id, Qual QualLower, SizeRef SizeUpper,
                            bool NoCaps) {
  return TypeArena::current().skolem(Id, QualLower, std::move(SizeUpper),
                                     NoCaps);
}
PretypeRef rw::ir::prodPT(std::vector<Type> Elems) {
  return TypeArena::current().prod(std::move(Elems));
}
PretypeRef rw::ir::refPT(Privilege Priv, Loc L, HeapTypeRef HT) {
  return TypeArena::current().ref(Priv, L, std::move(HT));
}
PretypeRef rw::ir::ptrPT(Loc L) { return TypeArena::current().ptr(L); }
PretypeRef rw::ir::capPT(Privilege Priv, Loc L, HeapTypeRef HT) {
  return TypeArena::current().cap(Priv, L, std::move(HT));
}
PretypeRef rw::ir::ownPT(Loc L) { return TypeArena::current().own(L); }
PretypeRef rw::ir::recPT(Qual Bound, Type Body) {
  return TypeArena::current().rec(Bound, std::move(Body));
}
PretypeRef rw::ir::exLocPT(Type Body) {
  return TypeArena::current().exLoc(std::move(Body));
}
PretypeRef rw::ir::coderefPT(FunTypeRef FT) {
  return TypeArena::current().coderef(std::move(FT));
}

HeapTypeRef rw::ir::variantHT(std::vector<Type> Cases) {
  return TypeArena::current().variant(std::move(Cases));
}
HeapTypeRef rw::ir::structHT(std::vector<StructField> Fields) {
  return TypeArena::current().structure(std::move(Fields));
}
HeapTypeRef rw::ir::arrayHT(Type Elem) {
  return TypeArena::current().array(std::move(Elem));
}
HeapTypeRef rw::ir::exHT(Qual QualLower, SizeRef SizeUpper, Type Body) {
  return TypeArena::current().ex(QualLower, std::move(SizeUpper),
                                 std::move(Body));
}
