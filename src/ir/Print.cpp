//===- ir/Print.cpp - Text rendering of RichWasm IR ----------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Print.h"

#include <cassert>
#include <sstream>

using namespace rw;
using namespace rw::ir;

static std::string printTypes(const std::vector<Type> &Ts) {
  std::string Out;
  for (size_t I = 0; I < Ts.size(); ++I) {
    if (I)
      Out += " ";
    Out += printType(Ts[I]);
  }
  return Out;
}

std::string rw::ir::printArrow(const ArrowType &A) {
  return "[" + printTypes(A.Params) + "] -> [" + printTypes(A.Results) + "]";
}

std::string rw::ir::printHeapType(const HeapTypeRef &H) {
  assert(H && "printing a null heap type");
  switch (H->kind()) {
  case HeapTypeKind::Variant:
    return "(variant " + printTypes(cast<VariantHT>(H.get())->cases()) + ")";
  case HeapTypeKind::Struct: {
    std::string Out = "(struct";
    for (const StructField &F : cast<StructHT>(H.get())->fields())
      Out += " (" + printType(F.T) + ", " + F.Slot->str() + ")";
    return Out + ")";
  }
  case HeapTypeKind::Array:
    return "(array " + printType(cast<ArrayHT>(H.get())->elem()) + ")";
  case HeapTypeKind::Ex: {
    const auto *E = cast<ExHT>(H.get());
    return "(∃ " + E->qualLower().str() + " ⪯ α ≲ " +
           E->sizeUpper()->str() + ". " + printType(E->body()) + ")";
  }
  }
  return "<heaptype>";
}

std::string rw::ir::printFunType(const FunType &F) {
  std::string Out;
  if (!F.quants().empty()) {
    Out += "∀";
    for (const Quant &Q : F.quants()) {
      switch (Q.K) {
      case QuantKind::Loc:
        Out += " ρ";
        break;
      case QuantKind::Size: {
        Out += " (σ";
        for (const SizeRef &S : Q.SizeLower)
          Out += " ≥" + S->str();
        for (const SizeRef &S : Q.SizeUpper)
          Out += " ≤" + S->str();
        Out += ")";
        break;
      }
      case QuantKind::Qual: {
        Out += " (δ";
        for (Qual X : Q.QualLower)
          Out += " ⪰" + X.str();
        for (Qual X : Q.QualUpper)
          Out += " ⪯" + X.str();
        Out += ")";
        break;
      }
      case QuantKind::Type:
        Out += " (" + Q.TypeQualLower.str() + " ⪯ α" +
               (Q.TypeNoCaps ? "" : "ᶜ") + " ≲ " + Q.TypeSizeUpper->str() +
               ")";
        break;
      }
    }
    Out += ". ";
  }
  return Out + printArrow(F.arrow());
}

std::string rw::ir::printPretype(const PretypeRef &P) {
  assert(P && "printing a null pretype");
  switch (P->kind()) {
  case PretypeKind::Unit:
    return "unit";
  case PretypeKind::Num:
    return numTypeName(cast<NumPT>(P.get())->numType());
  case PretypeKind::Var:
    return "α" + std::to_string(cast<VarPT>(P.get())->index());
  case PretypeKind::Skolem:
    return "α#" + std::to_string(cast<SkolemPT>(P.get())->id());
  case PretypeKind::Prod:
    return "(" + printTypes(cast<ProdPT>(P.get())->elems()) + ")";
  case PretypeKind::Ref: {
    const auto *R = cast<RefPT>(P.get());
    return std::string("(ref ") +
           (R->privilege() == Privilege::RW ? "rw " : "r ") +
           R->loc().str() + " " + printHeapType(R->heapType()) + ")";
  }
  case PretypeKind::Ptr:
    return "(ptr " + cast<PtrPT>(P.get())->loc().str() + ")";
  case PretypeKind::Cap: {
    const auto *C = cast<CapPT>(P.get());
    return std::string("(cap ") +
           (C->privilege() == Privilege::RW ? "rw " : "r ") +
           C->loc().str() + " " + printHeapType(C->heapType()) + ")";
  }
  case PretypeKind::Own:
    return "(own " + cast<OwnPT>(P.get())->loc().str() + ")";
  case PretypeKind::Rec: {
    const auto *R = cast<RecPT>(P.get());
    return "(rec " + R->bound().str() + " ⪯ α. " + printType(R->body()) +
           ")";
  }
  case PretypeKind::ExLoc:
    return "(∃ρ. " + printType(cast<ExLocPT>(P.get())->body()) + ")";
  case PretypeKind::Coderef:
    return "(coderef " + printFunType(*cast<CoderefPT>(P.get())->funType()) +
           ")";
  }
  return "<pretype>";
}

std::string rw::ir::printType(const Type &T) {
  return printPretype(T.P) + "^" + T.Q.str();
}

static std::string indentStr(unsigned Indent) {
  return std::string(Indent * 2, ' ');
}

static std::string printFx(const std::vector<LocalEffect> &Fx) {
  if (Fx.empty())
    return "";
  std::string Out = " {";
  for (size_t I = 0; I < Fx.size(); ++I) {
    if (I)
      Out += ", ";
    Out += std::to_string(Fx[I].LocalIdx) + " ↦ " + printType(Fx[I].T);
  }
  return Out + "}";
}

std::string rw::ir::printInsts(const InstVec &Insts, unsigned Indent) {
  std::string Out;
  for (const InstRef &I : Insts)
    Out += printInst(*I, Indent) + "\n";
  return Out;
}

std::string rw::ir::printInst(const Inst &I, unsigned Indent) {
  std::string Pad = indentStr(Indent);
  switch (I.kind()) {
  case InstKind::NumConst: {
    const auto *C = cast<NumConstInst>(&I);
    return Pad + std::string(numTypeName(C->numType())) + ".const " +
           std::to_string(C->bits());
  }
  case InstKind::NumUnop: {
    const auto *U = cast<NumUnopInst>(&I);
    return Pad + std::string(numTypeName(U->numType())) + "." +
           unopName(U->op());
  }
  case InstKind::NumBinop: {
    const auto *B = cast<NumBinopInst>(&I);
    return Pad + std::string(numTypeName(B->numType())) + "." +
           binopName(B->op());
  }
  case InstKind::NumTestop:
    return Pad +
           std::string(numTypeName(cast<NumTestopInst>(&I)->numType())) +
           ".eqz";
  case InstKind::NumRelop: {
    const auto *R = cast<NumRelopInst>(&I);
    return Pad + std::string(numTypeName(R->numType())) + "." +
           relopName(R->op());
  }
  case InstKind::NumCvt: {
    const auto *C = cast<NumCvtInst>(&I);
    return Pad + std::string(numTypeName(C->to())) + "." +
           (C->op() == CvtopKind::Convert ? "convert" : "reinterpret") + "/" +
           numTypeName(C->from());
  }
  case InstKind::Unreachable:
    return Pad + "unreachable";
  case InstKind::Nop:
    return Pad + "nop";
  case InstKind::Drop:
    return Pad + "drop";
  case InstKind::Select:
    return Pad + "select";
  case InstKind::Block: {
    const auto *B = cast<BlockInst>(&I);
    return Pad + "block " + printArrow(B->arrow()) + printFx(B->effects()) +
           "\n" + printInsts(B->body(), Indent + 1) + Pad + "end";
  }
  case InstKind::Loop: {
    const auto *L = cast<LoopInst>(&I);
    return Pad + "loop " + printArrow(L->arrow()) + "\n" +
           printInsts(L->body(), Indent + 1) + Pad + "end";
  }
  case InstKind::If: {
    const auto *F = cast<IfInst>(&I);
    return Pad + "if " + printArrow(F->arrow()) + printFx(F->effects()) +
           "\n" + printInsts(F->thenBody(), Indent + 1) + Pad + "else\n" +
           printInsts(F->elseBody(), Indent + 1) + Pad + "end";
  }
  case InstKind::Br:
    return Pad + "br " + std::to_string(cast<BrInst>(&I)->depth());
  case InstKind::BrIf:
    return Pad + "br_if " + std::to_string(cast<BrInst>(&I)->depth());
  case InstKind::BrTable: {
    const auto *B = cast<BrTableInst>(&I);
    std::string Out = Pad + "br_table";
    for (uint32_t D : B->depths())
      Out += " " + std::to_string(D);
    return Out + " default=" + std::to_string(B->defaultDepth());
  }
  case InstKind::Return:
    return Pad + "return";
  case InstKind::GetLocal: {
    const auto *G = cast<GetLocalInst>(&I);
    return Pad + "get_local " + std::to_string(G->index()) + " " +
           G->qual().str();
  }
  case InstKind::SetLocal:
    return Pad + "set_local " + std::to_string(cast<VarIdxInst>(&I)->index());
  case InstKind::TeeLocal:
    return Pad + "tee_local " + std::to_string(cast<VarIdxInst>(&I)->index());
  case InstKind::GetGlobal:
    return Pad + "get_global " +
           std::to_string(cast<VarIdxInst>(&I)->index());
  case InstKind::SetGlobal:
    return Pad + "set_global " +
           std::to_string(cast<VarIdxInst>(&I)->index());
  case InstKind::Qualify:
    return Pad + "qualify " + cast<QualifyInst>(&I)->qual().str();
  case InstKind::CoderefI:
    return Pad + "coderef " + std::to_string(cast<CoderefInst>(&I)->funcIndex());
  case InstKind::InstIdx:
    return Pad + "inst <" +
           std::to_string(cast<InstIdxInst>(&I)->args().size()) + " indices>";
  case InstKind::CallIndirect:
    return Pad + "call_indirect";
  case InstKind::Call: {
    const auto *C = cast<CallInst>(&I);
    std::string Out = Pad + "call " + std::to_string(C->funcIndex());
    if (!C->args().empty())
      Out += " <" + std::to_string(C->args().size()) + " indices>";
    return Out;
  }
  case InstKind::RecFold:
    return Pad + "rec.fold " + printPretype(cast<RecFoldInst>(&I)->pretype());
  case InstKind::RecUnfold:
    return Pad + "rec.unfold";
  case InstKind::MemPack:
    return Pad + "mem.pack " + cast<MemPackInst>(&I)->loc().str();
  case InstKind::MemUnpack: {
    const auto *M = cast<MemUnpackInst>(&I);
    return Pad + "mem.unpack " + printArrow(M->arrow()) +
           printFx(M->effects()) + " ρ.\n" +
           printInsts(M->body(), Indent + 1) + Pad + "end";
  }
  case InstKind::Group: {
    const auto *G = cast<GroupInst>(&I);
    return Pad + "seq.group " + std::to_string(G->count()) + " " +
           G->qual().str();
  }
  case InstKind::Ungroup:
    return Pad + "seq.ungroup";
  case InstKind::CapSplit:
    return Pad + "cap.split";
  case InstKind::CapJoin:
    return Pad + "cap.join";
  case InstKind::RefDemote:
    return Pad + "ref.demote";
  case InstKind::RefSplit:
    return Pad + "ref.split";
  case InstKind::RefJoin:
    return Pad + "ref.join";
  case InstKind::StructMalloc: {
    const auto *S = cast<StructMallocInst>(&I);
    std::string Out = Pad + "struct.malloc [";
    for (size_t K = 0; K < S->sizes().size(); ++K) {
      if (K)
        Out += " ";
      Out += S->sizes()[K]->str();
    }
    return Out + "] " + S->qual().str();
  }
  case InstKind::StructFree:
    return Pad + "struct.free";
  case InstKind::StructGet:
    return Pad + "struct.get " +
           std::to_string(cast<StructIdxInst>(&I)->fieldIndex());
  case InstKind::StructSet:
    return Pad + "struct.set " +
           std::to_string(cast<StructIdxInst>(&I)->fieldIndex());
  case InstKind::StructSwap:
    return Pad + "struct.swap " +
           std::to_string(cast<StructIdxInst>(&I)->fieldIndex());
  case InstKind::VariantMalloc: {
    const auto *V = cast<VariantMallocInst>(&I);
    return Pad + "variant.malloc " + std::to_string(V->tag()) + " [" +
           printTypes(V->cases()) + "] " + V->qual().str();
  }
  case InstKind::VariantCase: {
    const auto *V = cast<VariantCaseInst>(&I);
    std::string Out = Pad + "variant.case " + V->qual().str() + " " +
                      printHeapType(V->heapType()) + " " +
                      printArrow(V->arrow()) + printFx(V->effects()) + "\n";
    for (const InstVec &Arm : V->arms()) {
      Out += Pad + "case\n" + printInsts(Arm, Indent + 1);
    }
    return Out + Pad + "end";
  }
  case InstKind::ArrayMalloc:
    return Pad + "array.malloc " + cast<ArrayMallocInst>(&I)->qual().str();
  case InstKind::ArrayGet:
    return Pad + "array.get";
  case InstKind::ArraySet:
    return Pad + "array.set";
  case InstKind::ArrayFree:
    return Pad + "array.free";
  case InstKind::ExistPack: {
    const auto *E = cast<ExistPackInst>(&I);
    return Pad + "exist.pack " + printPretype(E->witness()) + " " +
           printHeapType(E->heapType()) + " " + E->qual().str();
  }
  case InstKind::ExistUnpack: {
    const auto *E = cast<ExistUnpackInst>(&I);
    return Pad + "exist.unpack " + E->qual().str() + " " +
           printHeapType(E->heapType()) + " " + printArrow(E->arrow()) +
           printFx(E->effects()) + " α.\n" +
           printInsts(E->body(), Indent + 1) + Pad + "end";
  }
  }
  return Pad + "<inst>";
}

std::string rw::ir::printModule(const Module &M) {
  std::ostringstream OS;
  OS << "(module \"" << M.Name << "\"\n";
  for (size_t I = 0; I < M.Funcs.size(); ++I) {
    const Function &F = M.Funcs[I];
    OS << "  (func $" << I;
    for (const std::string &E : F.Exports)
      OS << " (export \"" << E << "\")";
    if (F.isImport())
      OS << " (import \"" << F.Import->Module << "\" \"" << F.Import->Name
         << "\")";
    OS << " : " << printFunType(*F.Ty) << "\n";
    if (!F.isImport()) {
      OS << "    (locals";
      for (const SizeRef &S : F.Locals)
        OS << " " << S->str();
      OS << ")\n" << printInsts(F.Body, 2);
    }
    OS << "  )\n";
  }
  for (size_t I = 0; I < M.Globals.size(); ++I) {
    const Global &G = M.Globals[I];
    OS << "  (global $" << I << (G.Mut ? " mut " : " ")
       << printPretype(G.P);
    for (const std::string &E : G.Exports)
      OS << " (export \"" << E << "\")";
    OS << ")\n";
  }
  OS << "  (table";
  for (uint32_t E : M.Tab.Entries)
    OS << " " << E;
  OS << ")\n)\n";
  return OS.str();
}
