//===- ir/TypeArena.h - Hash-consing interner for RichWasm types -*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hash-consing arena behind ir/Types.h and ir/Size.h. Every
/// Pretype/HeapType/FunType/Size node is allocated exactly once per
/// structural identity: interning a node whose (canonicalized) constructor
/// arguments match an existing node returns that node. Children are always
/// interned before their parents, so the intern lookup is *shallow* — a
/// hash over child pointers plus scalars, and pointer-wise equality on the
/// candidate's fields. This is what collapses `typeEquals` and friends to
/// pointer comparison, and it is the foundation for the memoized judgments
/// (closed-type sizing, no_caps bits, rewrite short-circuiting) layered on
/// the per-node metadata.
///
/// Invariants:
///  * Sizes are canonicalized to +-normal form at intern time; the arena
///    interns one node per normal form.
///  * A type tree must be interned wholly within one arena; pointer
///    equality is only meaningful between nodes of the same arena.
///  * Nodes keep their children alive via shared_ptr, but a node's
///    back-pointer to its owning arena (used by the memo caches) dangles
///    once the arena is destroyed — do not use nodes after that.
///
/// Ownership & threading: modules own a shared arena handle
/// (ir::Module::Arena), defaulting to the process-wide TypeArena::global(),
/// so that separately built modules share one canonical type universe and
/// link-time import/export matching stays a pointer comparison. All arena
/// operations (interning and the memo caches) are guarded by a per-arena
/// mutex, so many modules may be checked in parallel over one arena. The
/// free factory helpers intern into the *current* arena — a thread-local
/// set with ArenaScope, global() by default.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_IR_TYPEARENA_H
#define RICHWASM_IR_TYPEARENA_H

#include "ir/Types.h"

#include <memory>
#include <type_traits>

namespace rw::ir {

/// Hash-consing interner and memo-cache owner for RichWasm types.
class TypeArena {
public:
  TypeArena();
  ~TypeArena();
  TypeArena(const TypeArena &) = delete;
  TypeArena &operator=(const TypeArena &) = delete;

  /// The process-wide default arena (alive for the whole program).
  static TypeArena &global();
  /// Shared handle to the global arena, for module ownership.
  static const std::shared_ptr<TypeArena> &globalPtr();
  /// The arena the free factory helpers intern into: the innermost active
  /// ArenaScope on this thread, or global() when none is active.
  static TypeArena &current();

  /// Generic interning entry point, `Arena.get<XxxPT>(args...)`; dispatches
  /// to the kind-specific interners below.
  template <class T, class... Args> auto get(Args &&...args);

  // Pretypes.
  PretypeRef unit();
  PretypeRef num(NumType NT);
  PretypeRef typeVar(uint32_t Idx);
  PretypeRef skolem(uint64_t Id, Qual QualLower, SizeRef SizeUpper,
                    bool NoCaps);
  PretypeRef prod(std::vector<Type> Elems);
  PretypeRef ref(Privilege Priv, Loc L, HeapTypeRef HT);
  PretypeRef ptr(Loc L);
  PretypeRef cap(Privilege Priv, Loc L, HeapTypeRef HT);
  PretypeRef own(Loc L);
  PretypeRef rec(Qual Bound, Type Body);
  PretypeRef exLoc(Type Body);
  PretypeRef coderef(FunTypeRef FT);

  // Heap types.
  HeapTypeRef variant(std::vector<Type> Cases);
  HeapTypeRef structure(std::vector<StructField> Fields);
  HeapTypeRef array(Type Elem);
  HeapTypeRef ex(Qual QualLower, SizeRef SizeUpper, Type Body);

  /// Span-probe variants: intern from a borrowed element range without
  /// materializing an argument vector. On a table hit (the steady-state
  /// checker case) nothing is allocated; elements are copied into a node
  /// only on a miss. The range is not retained.
  PretypeRef prodSpan(const Type *Elems, size_t N);
  HeapTypeRef variantSpan(const Type *Cases, size_t N);
  HeapTypeRef structureSpan(const StructField *Fields, size_t N);
  /// Borrowed-range span probes (TypeRef / StructFieldRef elements): the
  /// checker's operand stack holds borrowed views, and these probe the
  /// table against them directly; elements are re-owned only on a miss.
  PretypeRef prodSpan(const TypeRef *Elems, size_t N);
  HeapTypeRef variantSpan(const TypeRef *Cases, size_t N);
  HeapTypeRef structureSpan(const StructFieldRef *Fields, size_t N);

  // Function types.
  FunTypeRef fun(std::vector<Quant> Quants, ArrowType Arrow);

  // Sizes (canonicalized to +-normal form).
  SizeRef sizeConst(uint64_t Bits);
  SizeRef sizeVar(uint32_t Idx);
  SizeRef sizePlus(const SizeRef &L, const SizeRef &R);
  SizeRef sizeFromNormal(NormalSize N);

  /// Memoized ||p|| for *closed* pretypes (freeBounds().Type == 0): the
  /// size of such a pretype is independent of the type-variable context, so
  /// it is computed once per node and cached here, interned in this arena.
  SizeRef closedSizeOf(const PretypeRef &P);
  /// Borrowed variant: the same memoized size as a raw arena-owned pointer
  /// (no shared_from_this) — the checker's TypeRef-based fast path.
  const Size *closedSizePtr(const Pretype *P);

  /// Judgment memos for type well-formedness: a closed pretype checked at a
  /// concrete qualifier, and a closed function type checked under an empty
  /// ambient context, are context-independent judgments. Only successes
  /// are recorded (failures are cold paths whose diagnostics must be
  /// recomputed anyway).
  bool isKnownWfPretype(const Pretype *P, bool OuterLin) const;
  void noteWfPretype(const Pretype *P, bool OuterLin);
  bool isKnownWfFun(const FunType *F) const;
  void noteWfFun(const FunType *F);

  /// Intern-table statistics (for benchmarks, tests, and server growth
  /// monitoring). Counts cover the locked table probes only: the
  /// lock-free fast paths (leaf caches, per-node closed-size slots)
  /// deliberately skip the counters, so Hits is a lower bound on real
  /// cache effectiveness. SkolemNodes counts currently-interned nodes
  /// whose subtree mentions a checker skolem (the population Checkpoint
  /// rollback targets); ApproxBytes is a sizeof-based estimate of live
  /// node memory (excluding table overhead); SerializedBytes estimates
  /// what the same nodes would occupy in the serial/ wire format's type
  /// table (tag + varint fields + child references) — the
  /// capacity-planning number for an on-disk module registry or a
  /// serialized arena snapshot.
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t PretypeNodes = 0;
    uint64_t HeapTypeNodes = 0;
    uint64_t FunTypeNodes = 0;
    uint64_t SizeNodes = 0;
    uint64_t SkolemNodes = 0;
    uint64_t ApproxBytes = 0;
    uint64_t SerializedBytes = 0;

    uint64_t totalNodes() const {
      return PretypeNodes + HeapTypeNodes + FunTypeNodes + SizeNodes;
    }
  };
  Stats stats() const;

  //===--------------------------------------------------------------------===//
  // Bounded growth under skolem churn (DESIGN.md §7)
  //===--------------------------------------------------------------------===//
  //
  // Checker-minted skolem types intern into the arena and would otherwise
  // be retained forever; a long-lived server re-checking adversarial
  // modules grows monotonically. A Checkpoint marks the intern journal;
  // rolling back un-interns nodes added after the mark — either only the
  // skolem-tainted ones (rollbackSkolems, safe after a completed
  // checkModule whose per-check artifacts are dropped) or everything
  // (rollback, for check-and-reject admission where the whole module is
  // discarded).
  //
  // Un-interning removes the *table's* ownership and canonical identity;
  // nodes still referenced externally stay alive but a later re-intern of
  // the same structure creates a fresh node. Hence the safety contract:
  //   * quiescence — no concurrent checks may be running in this arena
  //     during rollback, and
  //   * no retained artifact (module types for rollback; checker results /
  //     InfoMaps for rollbackSkolems) may hold nodes younger than the
  //     checkpoint.
  // Checkpoints nest LIFO: rolling back to an older checkpoint subsumes
  // newer ones.

  struct Checkpoint {
    uint64_t Mark = 0;
  };
  Checkpoint checkpoint() const;
  /// Un-interns every skolem-tainted node interned after \p C. Returns the
  /// number of nodes removed.
  uint64_t rollbackSkolems(const Checkpoint &C);
  /// Un-interns every node interned after \p C. Returns the number of
  /// nodes removed.
  uint64_t rollback(const Checkpoint &C);

private:
  uint64_t rollbackImpl(uint64_t Mark, bool SkolemOnly);
  /// One interning recipe each for prod/variant/struct, shared between the
  /// owning (Type/StructField) and borrowed (TypeRef/StructFieldRef) span
  /// probes — the hash seed, probe predicate, and metadata finalization
  /// must stay identical or one structural identity interns twice, so
  /// there is exactly one copy. Defined (and only instantiated) in
  /// TypeArena.cpp.
  template <class E>
  PretypeRef prodImpl(const E *Elems, size_t N, std::vector<Type> *Own);
  template <class E>
  HeapTypeRef variantImpl(const E *Cases, size_t N, std::vector<Type> *Own);
  template <class F>
  HeapTypeRef structureImpl(const F *Fields, size_t N,
                            std::vector<StructField> *Own);

  struct Impl;
  std::unique_ptr<Impl> I;
};

/// RAII override of the thread-local current arena.
class ArenaScope {
public:
  explicit ArenaScope(TypeArena &A);
  ~ArenaScope();
  ArenaScope(const ArenaScope &) = delete;
  ArenaScope &operator=(const ArenaScope &) = delete;

private:
  TypeArena *Prev;
};

template <class T, class... Args> auto TypeArena::get(Args &&...args) {
  if constexpr (std::is_same_v<T, UnitPT>)
    return unit();
  else if constexpr (std::is_same_v<T, NumPT>)
    return num(std::forward<Args>(args)...);
  else if constexpr (std::is_same_v<T, VarPT>)
    return typeVar(std::forward<Args>(args)...);
  else if constexpr (std::is_same_v<T, SkolemPT>)
    return skolem(std::forward<Args>(args)...);
  else if constexpr (std::is_same_v<T, ProdPT>)
    return prod(std::forward<Args>(args)...);
  else if constexpr (std::is_same_v<T, RefPT>)
    return ref(std::forward<Args>(args)...);
  else if constexpr (std::is_same_v<T, PtrPT>)
    return ptr(std::forward<Args>(args)...);
  else if constexpr (std::is_same_v<T, CapPT>)
    return cap(std::forward<Args>(args)...);
  else if constexpr (std::is_same_v<T, OwnPT>)
    return own(std::forward<Args>(args)...);
  else if constexpr (std::is_same_v<T, RecPT>)
    return rec(std::forward<Args>(args)...);
  else if constexpr (std::is_same_v<T, ExLocPT>)
    return exLoc(std::forward<Args>(args)...);
  else if constexpr (std::is_same_v<T, CoderefPT>)
    return coderef(std::forward<Args>(args)...);
  else if constexpr (std::is_same_v<T, VariantHT>)
    return variant(std::forward<Args>(args)...);
  else if constexpr (std::is_same_v<T, StructHT>)
    return structure(std::forward<Args>(args)...);
  else if constexpr (std::is_same_v<T, ArrayHT>)
    return array(std::forward<Args>(args)...);
  else if constexpr (std::is_same_v<T, ExHT>)
    return ex(std::forward<Args>(args)...);
  else if constexpr (std::is_same_v<T, FunType>)
    return fun(std::forward<Args>(args)...);
  else if constexpr (std::is_same_v<T, Size>)
    return sizeFromNormal(std::forward<Args>(args)...);
  else
    static_assert(!sizeof(T *), "not an internable type node");
}

} // namespace rw::ir

#endif // RICHWASM_IR_TYPEARENA_H
