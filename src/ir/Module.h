//===- ir/Module.h - RichWasm modules ---------------------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Top-level declarations (Fig 2): functions (defined or imported), globals,
/// a function table for indirect calls, and exports. A module is the unit of
/// separate compilation and of linking; cross-module memory safety is
/// exactly what the RichWasm type checker enforces at link boundaries.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_IR_MODULE_H
#define RICHWASM_IR_MODULE_H

#include "ir/Inst.h"
#include "ir/TypeArena.h"
#include "ir/Types.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace rw::ir {

/// A two-part import name, e.g. `ml.stash` in Fig 3.
struct ImportName {
  std::string Module;
  std::string Name;
};

/// A function: either defined (with local slot sizes and a body) or
/// imported. Imported functions still declare their full RichWasm type so
/// that cross-module calls are checked.
struct Function {
  std::vector<std::string> Exports;
  FunTypeRef Ty;
  /// Slot sizes of the locals *beyond* the parameters. Locals are not tied
  /// to one type; they start as unrestricted unit and may be strongly
  /// updated with any value that fits the slot.
  std::vector<SizeRef> Locals;
  InstVec Body;
  std::optional<ImportName> Import;

  bool isImport() const { return Import.has_value(); }
};

/// A global declaration. Globals hold unrestricted values; mutable globals
/// support type-preserving updates only. Init runs during instantiation
/// with an empty stack and must leave exactly one value of the declared
/// pretype.
struct Global {
  std::vector<std::string> Exports;
  bool Mut = false;
  PretypeRef P;
  InstVec Init;
  std::optional<ImportName> Import;

  bool isImport() const { return Import.has_value(); }
};

/// The function table used by indirect calls: a list of function indices.
struct Table {
  std::vector<std::string> Exports;
  std::vector<uint32_t> Entries;
  std::optional<ImportName> Import;
};

/// A RichWasm module.
struct Module {
  std::string Name;
  std::vector<Function> Funcs;
  std::vector<Global> Globals;
  Table Tab;
  /// Index of an optional start function run at instantiation (an
  /// extension over the paper's grammar, needed by the ML frontend to
  /// initialize heap-allocated globals).
  std::optional<uint32_t> Start;
  /// The type arena this module's types are interned in. Defaults to the
  /// process-wide arena so that independently built modules share one
  /// canonical type universe — which is what keeps link-time import/export
  /// type matching a pointer comparison. The checker, lowering, and linker
  /// install this as the current arena while processing the module.
  std::shared_ptr<TypeArena> Arena = TypeArena::globalPtr();
};

} // namespace rw::ir

#endif // RICHWASM_IR_MODULE_H
