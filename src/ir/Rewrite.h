//===- ir/Rewrite.h - Shift and substitution over types/insts ---*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generic structural rewriting over RichWasm types and instruction trees.
/// TypeRewriter walks a type maintaining per-kind binder depths (location,
/// size, qualifier, pretype) and dispatches free-variable occurrences to
/// overridable hooks. Two standard rewriters are provided:
///
///  * Shifter — adds a delta to every free variable of selected kinds;
///  * Subst — simultaneously replaces an outermost group of binders (as
///    when instantiating a function type's quantifier list at a call site,
///    or opening a single rec/∃ binder), shifting replacements as they move
///    under binders.
///
/// rewriteInsts clones an instruction tree through a TypeRewriter, entering
/// binder scopes for mem.unpack (location) and exist.unpack (pretype)
/// bodies — this is what call-time substitution e*[z*/κ*] in Fig 4 uses.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_IR_REWRITE_H
#define RICHWASM_IR_REWRITE_H

#include "ir/Inst.h"
#include "ir/Types.h"

namespace rw::ir {

/// Depth-tracking structural rewriter over types.
class TypeRewriter {
public:
  virtual ~TypeRewriter() = default;

  Qual rewrite(Qual Q);
  SizeRef rewrite(const SizeRef &S);
  virtual Loc rewrite(const Loc &L);
  Type rewrite(const Type &T);
  PretypeRef rewrite(const PretypeRef &P);
  HeapTypeRef rewrite(const HeapTypeRef &H);
  FunTypeRef rewrite(const FunTypeRef &F);
  ArrowType rewrite(const ArrowType &A);
  Quant rewrite(const Quant &Q);
  Index rewrite(const Index &I);

  /// Binder-scope management, public so the instruction rewriter can enter
  /// the scopes opened by mem.unpack / exist.unpack bodies.
  void enterLoc() { ++LocDepth; }
  void exitLoc() { --LocDepth; }
  void enterType() { ++TypeDepth; }
  void exitType() { --TypeDepth; }
  void enterSize() { ++SizeDepth; }
  void exitSize() { --SizeDepth; }
  void enterQual() { ++QualDepth; }
  void exitQual() { --QualDepth; }

protected:
  /// Hooks receive the raw de Bruijn index of a variable occurrence; the
  /// current depths are available as members. Defaults are the identity.
  virtual Qual onQualVar(uint32_t Idx) { return Qual::var(Idx); }
  virtual SizeRef onSizeVar(uint32_t Idx) { return Size::var(Idx); }
  virtual Loc onLocVar(uint32_t Idx) { return Loc::var(Idx); }
  virtual PretypeRef onTypeVar(uint32_t Idx) { return varPT(Idx); }

  uint32_t LocDepth = 0;
  uint32_t SizeDepth = 0;
  uint32_t QualDepth = 0;
  uint32_t TypeDepth = 0;
};

/// Adds per-kind deltas to all free variables (those with index >= the
/// depth at their occurrence).
class Shifter : public TypeRewriter {
public:
  Shifter(uint32_t DLoc, uint32_t DSize, uint32_t DQual, uint32_t DType)
      : DLoc(DLoc), DSize(DSize), DQual(DQual), DType(DType) {}

protected:
  Qual onQualVar(uint32_t Idx) override {
    return Qual::var(Idx >= QualDepth ? Idx + DQual : Idx);
  }
  SizeRef onSizeVar(uint32_t Idx) override {
    return Size::var(Idx >= SizeDepth ? Idx + DSize : Idx);
  }
  Loc onLocVar(uint32_t Idx) override {
    return Loc::var(Idx >= LocDepth ? Idx + DLoc : Idx);
  }
  PretypeRef onTypeVar(uint32_t Idx) override {
    return varPT(Idx >= TypeDepth ? Idx + DType : Idx);
  }

private:
  uint32_t DLoc, DSize, DQual, DType;
};

/// Simultaneous substitution of an outermost binder group. Replacement
/// vectors are ordered *outermost binder first* (the order of a function
/// type's quantifier list); binders beyond the replaced group are stripped
/// (their indices drop by the group size). Replacements are shifted by the
/// current depths as they move under binders.
class Subst : public TypeRewriter {
public:
  std::vector<Loc> Locs;
  std::vector<SizeRef> Sizes;
  std::vector<Qual> Quals;
  std::vector<PretypeRef> Types;

  /// Builds a substitution from a quantifier instantiation list (the κ*/z*
  /// of call/inst), splitting the indices by kind.
  static Subst fromIndices(const std::vector<Index> &Args);

  /// Substitution of a single location binder (mem.unpack).
  static Subst oneLoc(Loc L) {
    Subst S;
    S.Locs.push_back(L);
    return S;
  }
  /// Substitution of a single pretype binder (rec unfold, exist.unpack).
  static Subst onePretype(PretypeRef P) {
    Subst S;
    S.Types.push_back(std::move(P));
    return S;
  }

protected:
  Qual onQualVar(uint32_t Idx) override;
  SizeRef onSizeVar(uint32_t Idx) override;
  Loc onLocVar(uint32_t Idx) override;
  PretypeRef onTypeVar(uint32_t Idx) override;
};

/// Clones an instruction sequence, rewriting every embedded type, size,
/// qualifier, location, and instantiation index through \p RW. Binder
/// scopes introduced by instruction forms are entered appropriately.
InstVec rewriteInsts(const InstVec &Insts, TypeRewriter &RW);
InstRef rewriteInst(const InstRef &I, TypeRewriter &RW);

/// Instantiates the full quantifier list of \p FT with \p Args, yielding
/// the monomorphic arrow. Asserts that counts and kinds line up (the type
/// checker validates this before use).
ArrowType instantiateFunType(const FunType &FT, const std::vector<Index> &Args);

} // namespace rw::ir

#endif // RICHWASM_IR_REWRITE_H
