//===- ir/Rewrite.h - Shift and substitution over types/insts ---*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generic structural rewriting over RichWasm types and instruction trees.
/// TypeRewriter walks a type maintaining per-kind binder depths (location,
/// size, qualifier, pretype) and dispatches free-variable occurrences to
/// overridable hooks. Two standard rewriters are provided:
///
///  * Shifter — adds a delta to every free variable of selected kinds;
///  * Subst — simultaneously replaces an outermost group of binders (as
///    when instantiating a function type's quantifier list at a call site,
///    or opening a single rec/∃ binder), shifting replacements as they move
///    under binders.
///
/// Because types are hash-consed (ir/TypeArena.h), the rewriter exploits
/// per-node metadata: a subtree whose free-variable bounds show it cannot
/// be touched by the hooks is returned as-is (closed-type short-circuit),
/// and rewriters whose hooks are pure in (index, depths) memoize results
/// per (node, binder-depths) — so rewriting a shared subtree twice costs
/// one hash lookup the second time. Shifter and Subst opt in; custom
/// subclasses may via enableStructuralMemo once their replacement state is
/// final.
///
/// rewriteInsts rewrites an instruction tree through a TypeRewriter,
/// entering binder scopes for mem.unpack (location) and exist.unpack
/// (pretype) bodies — this is what call-time substitution e*[z*/κ*] in
/// Fig 4 uses. It is intern-aware: rewritten components are hash-consed,
/// so a subtree the rewrite cannot touch is detected by O(1) pointer
/// comparisons bottom-up and returned as the *original* shared node
/// instead of a clone — instantiation shares everything but the changed
/// spine.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_IR_REWRITE_H
#define RICHWASM_IR_REWRITE_H

#include "ir/Inst.h"
#include "ir/Types.h"
#include "support/SmallVec.h"

#include <memory>
#include <unordered_map>

namespace rw::ir {

/// Depth-tracking structural rewriter over types.
class TypeRewriter {
public:
  TypeRewriter() = default;
  TypeRewriter(TypeRewriter &&) = default;
  TypeRewriter &operator=(TypeRewriter &&) = default;
  virtual ~TypeRewriter() = default;

  Qual rewrite(Qual Q);
  SizeRef rewrite(const SizeRef &S);
  virtual Loc rewrite(const Loc &L);
  Type rewrite(const Type &T);
  PretypeRef rewrite(const PretypeRef &P);
  HeapTypeRef rewrite(const HeapTypeRef &H);
  FunTypeRef rewrite(const FunTypeRef &F);
  ArrowType rewrite(const ArrowType &A);
  Quant rewrite(const Quant &Q);
  Index rewrite(const Index &I);

  /// Binder-scope management, public so the instruction rewriter can enter
  /// the scopes opened by mem.unpack / exist.unpack bodies.
  void enterLoc() { ++LocDepth; }
  void exitLoc() { --LocDepth; }
  void enterType() { ++TypeDepth; }
  void exitType() { --TypeDepth; }
  void enterSize() { ++SizeDepth; }
  void exitSize() { --SizeDepth; }
  void enterQual() { ++QualDepth; }
  void exitQual() { --QualDepth; }

protected:
  /// Hooks receive the raw de Bruijn index of a variable occurrence; the
  /// current depths are available as members. Defaults are the identity.
  virtual Qual onQualVar(uint32_t Idx) { return Qual::var(Idx); }
  virtual SizeRef onSizeVar(uint32_t Idx) { return Size::var(Idx); }
  virtual Loc onLocVar(uint32_t Idx) { return Loc::var(Idx); }
  virtual PretypeRef onTypeVar(uint32_t Idx) { return varPT(Idx); }

  /// Opts in to per-(node, depths) memoization and closed-subtree
  /// short-circuiting. Only valid when the hooks are pure functions of
  /// (index, current depths) that leave bound variables (index < depth)
  /// untouched, and when the rewriter's state is final. \p ActLoc..ActType
  /// say which kinds of free variables the hooks may change; a subtree
  /// whose free bounds rule out any such occurrence is returned unchanged.
  /// Set \p NonVarLocs when rewrite(Loc) may also alter skolem/concrete
  /// locations — subtrees mentioning one are then never short-circuited.
  void enableStructuralMemo(bool ActLoc, bool ActSize, bool ActQual,
                            bool ActType, bool NonVarLocs = false) {
    MemoOn = true;
    this->ActLoc = ActLoc;
    this->ActSize = ActSize;
    this->ActQual = ActQual;
    this->ActType = ActType;
    this->NonVarLocs = NonVarLocs;
  }

  uint32_t LocDepth = 0;
  uint32_t SizeDepth = 0;
  uint32_t QualDepth = 0;
  uint32_t TypeDepth = 0;

private:
  /// True when the hooks provably leave every variable of \p FB unchanged
  /// at the current depths (and, for loc-rewriting hooks, the subtree
  /// mentions no skolem/concrete location).
  bool unaffected(const FreeBounds &FB, uint8_t Flags) const {
    if (NonVarLocs && (Flags & (TF_HasSkolemLoc | TF_HasConcreteLoc)))
      return false;
    return (!ActLoc || FB.Loc <= LocDepth) &&
           (!ActSize || FB.Size <= SizeDepth) &&
           (!ActQual || FB.Qual <= QualDepth) &&
           (!ActType || FB.Type <= TypeDepth);
  }
  /// Packs the four binder depths into one memo-key word.
  uint64_t depthKey() const {
    return (static_cast<uint64_t>(LocDepth & 0xffff)) |
           (static_cast<uint64_t>(SizeDepth & 0xffff) << 16) |
           (static_cast<uint64_t>(QualDepth & 0xffff) << 32) |
           (static_cast<uint64_t>(TypeDepth & 0xffff) << 48);
  }
  bool memoUsable() const {
    return MemoOn && LocDepth < 0x10000 && SizeDepth < 0x10000 &&
           QualDepth < 0x10000 && TypeDepth < 0x10000;
  }

  struct MemoKey {
    const void *Node;
    uint64_t Depths;
    bool operator==(const MemoKey &O) const {
      return Node == O.Node && Depths == O.Depths;
    }
  };
  struct MemoKeyHash {
    size_t operator()(const MemoKey &K) const {
      uint64_t H = reinterpret_cast<uintptr_t>(K.Node);
      H ^= K.Depths + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
      return static_cast<size_t>(H);
    }
  };

  bool MemoOn = false;
  bool ActLoc = false, ActSize = false, ActQual = false, ActType = false;
  bool NonVarLocs = false;
  /// Counts rewrite() entries; a node is memoized only when rewriting it
  /// required at least MemoMinVisits nested visits, so tiny trees (the
  /// checker's unpack opens) never pay for a map insert.
  uint64_t Visits = 0;
  static constexpr uint64_t MemoMinVisits = 4;
  /// The memo tables, allocated on first insert: rewriters are built and
  /// torn down per instruction on the checker's hot path (one Subst per
  /// unpack open, one scan per skolem-escape check), and most never
  /// memoize anything — three map ctor/dtor pairs per rewriter showed up
  /// in the F7 profile.
  struct Memos {
    std::unordered_map<MemoKey, PretypeRef, MemoKeyHash> P;
    std::unordered_map<MemoKey, HeapTypeRef, MemoKeyHash> H;
    std::unordered_map<MemoKey, FunTypeRef, MemoKeyHash> F;
  };
  Memos &memos() {
    if (!M)
      M = std::make_unique<Memos>();
    return *M;
  }
  std::unique_ptr<Memos> M;

  PretypeRef rewriteUncached(const PretypeRef &P);
  HeapTypeRef rewriteUncached(const HeapTypeRef &H);
  FunTypeRef rewriteUncached(const FunTypeRef &F);
};

/// Adds per-kind deltas to all free variables (those with index >= the
/// depth at their occurrence).
class Shifter : public TypeRewriter {
public:
  Shifter(uint32_t DLoc, uint32_t DSize, uint32_t DQual, uint32_t DType)
      : DLoc(DLoc), DSize(DSize), DQual(DQual), DType(DType) {
    enableStructuralMemo(DLoc != 0, DSize != 0, DQual != 0, DType != 0);
  }

protected:
  Qual onQualVar(uint32_t Idx) override {
    return Qual::var(Idx >= QualDepth ? Idx + DQual : Idx);
  }
  SizeRef onSizeVar(uint32_t Idx) override {
    return Size::var(Idx >= SizeDepth ? Idx + DSize : Idx);
  }
  Loc onLocVar(uint32_t Idx) override {
    return Loc::var(Idx >= LocDepth ? Idx + DLoc : Idx);
  }
  PretypeRef onTypeVar(uint32_t Idx) override {
    return varPT(Idx >= TypeDepth ? Idx + DType : Idx);
  }

private:
  uint32_t DLoc, DSize, DQual, DType;
};

/// Simultaneous substitution of an outermost binder group. Replacement
/// vectors are ordered *outermost binder first* (the order of a function
/// type's quantifier list); binders beyond the replaced group are stripped
/// (their indices drop by the group size). Replacements are shifted by the
/// current depths as they move under binders.
///
/// The replacement vectors are populated only through the factories below
/// — the first rewrite call freezes which variable kinds the memoization
/// treats as active, so later mutation would be unsound (and is also
/// guarded by a debug fingerprint).
class Subst : public TypeRewriter {
public:
  /// Builds a substitution from a quantifier instantiation list (the κ*/z*
  /// of call/inst), splitting the indices by kind.
  static Subst fromIndices(const std::vector<Index> &Args);

  /// Substitution of a single location binder (mem.unpack).
  static Subst oneLoc(Loc L) {
    Subst S;
    S.Locs.push_back(L);
    return S;
  }
  /// Substitution of a single pretype binder (rec unfold, exist.unpack).
  static Subst onePretype(PretypeRef P) {
    Subst S;
    S.Types.push_back(std::move(P));
    return S;
  }

  Type rewrite(const Type &T) { return seal().TypeRewriter::rewrite(T); }
  PretypeRef rewrite(const PretypeRef &P) {
    return seal().TypeRewriter::rewrite(P);
  }
  HeapTypeRef rewrite(const HeapTypeRef &H) {
    return seal().TypeRewriter::rewrite(H);
  }
  FunTypeRef rewrite(const FunTypeRef &F) {
    return seal().TypeRewriter::rewrite(F);
  }
  ArrowType rewrite(const ArrowType &A) {
    return seal().TypeRewriter::rewrite(A);
  }
  SizeRef rewrite(const SizeRef &S) { return seal().TypeRewriter::rewrite(S); }
  Qual rewrite(Qual Q) { return seal().TypeRewriter::rewrite(Q); }
  using TypeRewriter::rewrite; // Loc, Quant, Index.

protected:
  Qual onQualVar(uint32_t Idx) override;
  SizeRef onSizeVar(uint32_t Idx) override;
  Loc onLocVar(uint32_t Idx) override;
  PretypeRef onTypeVar(uint32_t Idx) override;

private:
  // Inline storage: nearly every substitution replaces a handful of
  // binders (one for the checker's unpack opens), so building one should
  // not allocate.
  support::SmallVec<Loc, 4> Locs;
  support::SmallVec<SizeRef, 4> Sizes;
  support::SmallVec<Qual, 4> Quals;
  support::SmallVec<PretypeRef, 4> Types;

  /// Debug fingerprint of the replacement vectors (element-sensitive, not
  /// just sizes), so mutation after the first rewrite is caught.
  size_t replacementFingerprint() const {
    auto Mix = [](size_t H, size_t V) {
      return H ^ (V + 0x9e3779b9u + (H << 6) + (H >> 2));
    };
    size_t H = Locs.size();
    for (const Loc &L : Locs)
      H = Mix(H, L.isVar() ? L.varIndex() + 1
                           : (L.isSkolem() ? L.skolemId() * 3 + 2
                                           : L.addr() * 5 + 3));
    for (const SizeRef &S : Sizes)
      H = Mix(H, reinterpret_cast<uintptr_t>(S.get()));
    for (Qual Q : Quals)
      H = Mix(H, Q.isVar() ? Q.varIndex() * 2 + 1
                           : static_cast<size_t>(Q.constValue()) * 2);
    for (const PretypeRef &P : Types)
      H = Mix(H, reinterpret_cast<uintptr_t>(P.get()));
    return H;
  }

  /// Enables memoization once the replacement vectors are known; later
  /// mutation of the vectors would make the frozen activity flags (and any
  /// cached results) wrong, so it is rejected in debug builds via the
  /// element-sensitive fingerprint above.
  Subst &seal() {
    if (!Sealed) {
      Sealed = true;
      SealedFingerprint = replacementFingerprint();
      enableStructuralMemo(!Locs.empty(), !Sizes.empty(), !Quals.empty(),
                           !Types.empty());
    } else {
      assert(SealedFingerprint == replacementFingerprint() &&
             "Subst replacement vectors mutated after the first rewrite");
    }
    return *this;
  }
  bool Sealed = false;
  size_t SealedFingerprint = 0;
};

/// Clones an instruction sequence, rewriting every embedded type, size,
/// qualifier, location, and instantiation index through \p RW. Binder
/// scopes introduced by instruction forms are entered appropriately.
InstVec rewriteInsts(const InstVec &Insts, TypeRewriter &RW);
InstRef rewriteInst(const InstRef &I, TypeRewriter &RW);

/// Instantiates the full quantifier list of \p FT with \p Args, yielding
/// the monomorphic arrow. Asserts that counts and kinds line up (the type
/// checker validates this before use).
ArrowType instantiateFunType(const FunType &FT, const std::vector<Index> &Args);

} // namespace rw::ir

#endif // RICHWASM_IR_REWRITE_H
