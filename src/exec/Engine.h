//===- exec/Engine.h - Flat-bytecode Wasm engine ----------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat-bytecode execution engine (EngineKind::Flat, DESIGN.md §5):
/// a drop-in replacement for the tree-walking wasm::WasmInstance that
/// first translates the module with exec::translate and then runs the
/// resulting linear code with a tight dispatch loop —
///
///   * one switch-dispatched loop over pre-decoded uint32_t words; no
///     per-step label resolution, block re-scanning, or recursion;
///   * an operand stack of raw 64-bit slots (no type tags on the hot
///     path; types were pinned by validation);
///   * a register file holding all frames' locals contiguously, and an
///     explicit call-frame stack, so calls and returns are index
///     arithmetic instead of C++ recursion;
///   * host calls resolved once at initialize() into a direct table.
///
/// Semantics (results, traps, memory effects, GC-visible globals) match
/// the tree engine exactly; tests/exec_test.cpp holds the differential
/// suite. Instances are not re-entrant — the operand stack, register
/// file, and frame stack are instance state — but unlike the tree engine
/// this is *enforced*: a host function that calls invoke() back into the
/// instance that invoked it gets a proper trap ("re-entrant invoke"),
/// never corrupted state.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_EXEC_ENGINE_H
#define RICHWASM_EXEC_ENGINE_H

#include "exec/Translate.h"
#include "wasm/Instance.h"

namespace rw::exec {

/// An instantiated Wasm module executed as flat bytecode.
class FlatInstance : public wasm::Instance {
public:
  explicit FlatInstance(const wasm::WModule &M) : Instance(M) {}

  Expected<std::vector<wasm::WValue>>
  invoke(uint32_t FuncIdx, std::vector<wasm::WValue> Args,
         uint64_t MaxFuel = 1'000'000'000) override;

  wasm::EngineKind engine() const override {
    return wasm::EngineKind::Flat;
  }

  /// The translated module (valid after initialize()).
  const FlatModule &flat() const { return Active ? *Active : FM; }

  /// Installs a shared pre-translated module (e.g. the memoized
  /// translation from the admission cache) so prepare() skips
  /// exec::translate. Borrowed, not copied — the shared handle keeps the
  /// translation alive for the instance's lifetime; many instances may
  /// execute one translation concurrently (it is immutable; all mutable
  /// state lives in the instance). \p Pre must describe exactly this
  /// instance's module (Pre->Source == &module()); call before
  /// initialize().
  void adoptPretranslated(std::shared_ptr<const FlatModule> Pre) {
    PreFM = std::move(Pre);
  }

protected:
  Status prepare() override;

private:
  struct CallFrame {
    const FlatFunc *F;
    uint32_t Pc;      ///< Saved while a callee runs.
    uint32_t RegBase; ///< This frame's slice of the register file.
    uint32_t OpBase;  ///< Absolute operand-stack base of this frame.
  };

  /// Runs until the root frame returns. On a trap, fills \p TrapMsg and
  /// returns false.
  bool run(uint64_t MaxFuel, std::string &TrapMsg);

  FlatModule FM; ///< Owned translation (self-translated instances).
  /// Adopted pre-translation (shared, immutable) — see adoptPretranslated.
  std::shared_ptr<const FlatModule> PreFM;
  /// The translation executed: &FM or PreFM.get(); set by prepare().
  const FlatModule *Active = nullptr;
  std::vector<uint64_t> OpStack; ///< Raw 64-bit operand slots.
  std::vector<uint64_t> Regs;    ///< All frames' locals, contiguous.
  std::vector<CallFrame> Frames;
  /// Re-entrancy guard: set while run() executes. A host function called
  /// from this instance re-entering invoke() would clobber OpStack/Regs/
  /// Frames mid-run (undefined behavior before this guard); now it traps.
  bool Running = false;
  /// Function-space index the last run() trap was attributed to, for the
  /// " [func N]" suffix invoke() appends (see Instance::trapNote).
  uint32_t LastTrapFunc = 0;
};

} // namespace rw::exec

#endif // RICHWASM_EXEC_ENGINE_H
