//===- exec/Engine.h - Flat-bytecode Wasm engine ----------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat-bytecode execution engine (EngineKind::Flat, DESIGN.md §5):
/// a drop-in replacement for the tree-walking wasm::WasmInstance that
/// first translates the module with exec::translate and then runs the
/// resulting linear code with a tight dispatch loop —
///
///   * one switch-dispatched loop over pre-decoded uint32_t words; no
///     per-step label resolution, block re-scanning, or recursion;
///   * an operand stack of raw 64-bit slots (no type tags on the hot
///     path; types were pinned by validation);
///   * a register file holding all frames' locals contiguously, and an
///     explicit call-frame stack, so calls and returns are index
///     arithmetic instead of C++ recursion;
///   * host calls resolved once at initialize() into a direct table.
///
/// Semantics (results, traps, memory effects, GC-visible globals) match
/// the tree engine exactly; tests/exec_test.cpp holds the differential
/// suite. Instances are not re-entrant — the operand stack, register
/// file, and frame stack are instance state — but unlike the tree engine
/// this is *enforced*: a host function that calls invoke() back into the
/// instance that invoked it gets a proper trap ("re-entrant invoke"),
/// never corrupted state.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_EXEC_ENGINE_H
#define RICHWASM_EXEC_ENGINE_H

#include "exec/Translate.h"
#include "wasm/Instance.h"

#include <thread>

#ifndef RW_JIT_ENABLED
#define RW_JIT_ENABLED 0
#endif

namespace rw::jit {
class ModuleJit;
struct JitContext;
} // namespace rw::jit

namespace rw::exec {

/// Resets the per-function execution profile of \p I (all counters to
/// zero, relaxed stores). Long-lived server instances call this so the
/// counters describe recent behavior and tiering can re-trigger after a
/// workload shift; compiled tiers are unaffected.
inline void resetProfiles(wasm::Instance &I) { I.resetProfiles(); }

/// An instantiated Wasm module executed as flat bytecode, optionally
/// tiered up to native code (src/jit/) per function.
class FlatInstance : public wasm::Instance {
public:
  /// Sentinel tier-up threshold meaning "never compile".
  static constexpr uint64_t NeverTier = UINT64_MAX;

  explicit FlatInstance(const wasm::WModule &M,
                        wasm::EngineKind K = wasm::EngineKind::Flat);
  ~FlatInstance() override;

  Expected<std::vector<wasm::WValue>>
  invoke(uint32_t FuncIdx, std::vector<wasm::WValue> Args,
         uint64_t MaxFuel = 1'000'000'000) override;

  wasm::EngineKind engine() const override { return Kind; }

  /// Tier-up policy; call before initialize(). \p Threshold: 0 compiles
  /// every function eagerly at prepare(); N >= 1 compiles a function
  /// once its profile mass (Invocations + LoopHeads) reaches N (this
  /// turns profiling on); NeverTier disables tiering. \p Background
  /// moves threshold-triggered compiles to a background thread — running
  /// invokes keep interpreting and pick the native entry up at the next
  /// call. Defaults: EngineKind::Jit instances tier eagerly; Flat
  /// instances honor the RW_JIT_THRESHOLD environment variable (same
  /// meaning; unset = never). Ignored under -DRW_JIT=OFF.
  void setTierPolicy(uint64_t Threshold, bool Background = false) {
    TierThreshold = Threshold;
    TierBackground = Background;
    TierPolicySet = true;
  }

  /// Functions currently backed by native code (0 under -DRW_JIT=OFF).
  uint32_t jitCompiledCount() const;

  /// The translated module (valid after initialize()).
  const FlatModule &flat() const { return Active ? *Active : FM; }

  /// Installs a shared pre-translated module (e.g. the memoized
  /// translation from the admission cache) so prepare() skips
  /// exec::translate. Borrowed, not copied — the shared handle keeps the
  /// translation alive for the instance's lifetime; many instances may
  /// execute one translation concurrently (it is immutable; all mutable
  /// state lives in the instance). \p Pre must describe exactly this
  /// instance's module (Pre->Source == &module()); call before
  /// initialize().
  void adoptPretranslated(std::shared_ptr<const FlatModule> Pre) {
    PreFM = std::move(Pre);
  }

protected:
  Status prepare() override;

private:
  struct CallFrame {
    const FlatFunc *F;
    uint32_t Pc;      ///< Saved while a callee runs.
    uint32_t RegBase; ///< This frame's slice of the register file.
    uint32_t OpBase;  ///< Absolute operand-stack base of this frame.
  };

  /// Runs until the root frame returns, resuming Frames.back() at its
  /// saved Pc (0 for a fresh invoke; a deopt point after a native exit)
  /// with operand height ResumeSp. Consumes from \p Fuel (written back
  /// at every exit; the caller owns the Executed accounting). On a trap,
  /// fills \p TrapMsg and returns false.
  bool run(uint64_t &Fuel, std::string &TrapMsg);

  FlatModule FM; ///< Owned translation (self-translated instances).
  /// Adopted pre-translation (shared, immutable) — see adoptPretranslated.
  std::shared_ptr<const FlatModule> PreFM;
  /// The translation executed: &FM or PreFM.get(); set by prepare().
  const FlatModule *Active = nullptr;
  std::vector<uint64_t> OpStack; ///< Raw 64-bit operand slots.
  std::vector<uint64_t> Regs;    ///< All frames' locals, contiguous.
  std::vector<CallFrame> Frames;
  /// Re-entrancy guard: set while run() executes. A host function called
  /// from this instance re-entering invoke() would clobber OpStack/Regs/
  /// Frames mid-run (undefined behavior before this guard); now it traps.
  bool Running = false;
  /// Function-space index the last run() trap was attributed to, for the
  /// " [func N]" suffix invoke() appends (see Instance::trapNote).
  uint32_t LastTrapFunc = 0;

  wasm::EngineKind Kind;

  // Tier-up state (src/jit/). Inert under -DRW_JIT=OFF: prepare() never
  // creates a ModuleJit, so every hook below stays on its null fast path.
  uint64_t TierThreshold = NeverTier;
  bool TierBackground = false;
  bool TierPolicySet = false;
  /// Operand height (frame-relative) at which run() resumes Frames.back()
  /// after a native deopt; 0 for fresh invokes.
  uint32_t ResumeSp = 0;

#if RW_JIT_ENABLED
  /// Outcome of one native attempt on Frames.back(), normalized for the
  /// interpreter: Done (frame popped, results at its operand base),
  /// Resume (interpret Frames.back() from its Pc at height ResumeSp), or
  /// Trapped (trap fully recorded; TrapMsg in JitTrapMsg).
  enum class JitRun { Done, Resume, Trapped };

  /// Executes the native code of Frames.back() (which must have an
  /// entry), consuming from \p Fuel.
  JitRun jitExecuteBack(uint64_t &Fuel);

  /// Threshold policy: compiles functions whose profile mass crossed
  /// TierThreshold (synchronously, or on TierWorker when backgrounded).
  void maybeTierUp();

public:
  // Helper entry points the generated code calls back into (defined in
  // Jit.cpp, reached via extern "C" trampolines); they mirror the
  // interpreter's direct_call / host_call / memory.grow blocks exactly.
  // Public only for those trampolines — not part of the embedder API.
  uint32_t jitDirectCall(jit::JitContext &Ctx, uint32_t CalleeIdx,
                         uint32_t SpRel, uint32_t RetPc);
  uint32_t jitHostCall(jit::JitContext &Ctx, uint32_t HostIdx, uint32_t SpRel,
                       uint32_t RetPc);
  uint32_t jitIndirectCall(jit::JitContext &Ctx, uint32_t Expect,
                           uint32_t SpRel, uint32_t RetPc);
  uint32_t jitMemoryGrow(jit::JitContext &Ctx, uint32_t SpRel);

private:

  std::unique_ptr<jit::ModuleJit> Jit;
  std::thread TierWorker;             ///< In-flight background compile.
  std::atomic<bool> TierBusy{false};  ///< Guards TierWorker.
  std::string JitTrapMsg;             ///< Final-trap message from helpers.
#endif
};

} // namespace rw::exec

#endif // RICHWASM_EXEC_ENGINE_H
