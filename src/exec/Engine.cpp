//===- exec/Engine.cpp - Flat-bytecode Wasm engine --------------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "exec/Engine.h"

#include "jit/Jit.h"
#include "obs/Obs.h"
#include "support/NumericOps.h"
#include "wasm/Interp.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

using namespace rw;
using namespace rw::exec;
using namespace rw::wasm;

FlatInstance::FlatInstance(const wasm::WModule &M, wasm::EngineKind K)
    : Instance(M), Kind(K) {}

FlatInstance::~FlatInstance() {
#if RW_JIT_ENABLED
  if (TierWorker.joinable())
    TierWorker.join();
#endif
}

uint32_t FlatInstance::jitCompiledCount() const {
#if RW_JIT_ENABLED
  return Jit ? Jit->compiledCount() : 0;
#else
  return 0;
#endif
}

Status FlatInstance::prepare() {
  if (PreFM && PreFM->Source != M)
    return Error("flat engine: adopted translation describes a different "
                 "module");
#if RW_JIT_ENABLED
  // Resolve the tier-up policy before the translation decision: a
  // threshold >= 1 needs the profile counters, so profiling must be on
  // before we pick (or produce) a translation. EngineKind::Jit defaults
  // to eager whole-module compilation; plain Flat instances honor
  // RW_JIT_THRESHOLD so the whole test suite can be run fully jitted.
  if (!TierPolicySet) {
    if (Kind == wasm::EngineKind::Jit)
      TierThreshold = 0;
    else if (const char *E = std::getenv("RW_JIT_THRESHOLD"))
      TierThreshold = std::strtoull(E, nullptr, 10);
  }
  if (TierThreshold != NeverTier && TierThreshold > 0 && !ProfileOn)
    enableProfiling();
#endif
  // A profiling instance needs FProfEnter/FProfLoop in the code; an
  // adopted unprofiled translation (the cache keeps the canonical,
  // unprofiled artifact) cannot serve it, so re-translate locally.
  if (PreFM && (!ProfileOn || PreFM->Profiled)) {
    Active = PreFM.get();
  } else {
    Expected<FlatModule> R = translate(*M, TranslateOptions{ProfileOn});
    if (!R)
      return R.error();
    FM = R.take();
    Active = &FM;
  }
  if (Active->Profiled) {
    // Profiled code bumps through the profile table unconditionally;
    // make sure it exists even if profiling was turned on via adoption.
    ProfileOn = true;
    ensureProfileTable();
  }
#if RW_JIT_ENABLED
  if (TierThreshold != NeverTier) {
    Jit = std::make_unique<jit::ModuleJit>(*Active);
    if (TierThreshold == 0)
      Jit->compileAll();
  }
#endif
  return Status::success();
}

Expected<std::vector<WValue>> FlatInstance::invoke(uint32_t FuncIdx,
                                                   std::vector<WValue> Args,
                                                   uint64_t MaxFuel) {
  if (!Active || !Active->Source)
    return Error("flat engine: instance not initialized");
  const FlatModule &FM = *Active;
  const FuncType &FT = M->funcType(FuncIdx);

#if RW_JIT_ENABLED
  // Threshold tiering: compile functions whose profile mass crossed the
  // threshold before entering (counters from earlier invokes; this
  // invoke then starts native). Never runs for eager or disabled tiers.
  if (Jit && TierThreshold != NeverTier && TierThreshold > 0 && !Running)
    maybeTierUp();
#endif

  // Invoking an import dispatches straight to the host, like the tree
  // engine's callFunction — including its result handling: keep the
  // last |results| values, error when the host returns too few.
  if (FuncIdx < FM.NumImports) {
    const HostFn *H = hostFor(FuncIdx);
    if (!H)
      return Error("trap: unsatisfied import" + trapNote(FuncIdx));
    if (ProfileOn)
      ++Prof[FuncIdx].Invocations;
    Expected<std::vector<WValue>> R = (*H)(*this, Args);
    if (!R)
      return Error("trap: " + R.error().message() + trapNote(FuncIdx));
    if (R->size() < FT.Results.size())
      return Error("function left too few results");
    return std::vector<WValue>(R->end() - FT.Results.size(), R->end());
  }

  // Host functions receive a reference to their calling instance; calling
  // invoke() on it while run() is live below would scribble over the
  // operand stack, register file, and frame stack of the suspended
  // execution. Detect the re-entry and trap instead.
  if (Running)
    return Error("trap: re-entrant invoke on a running instance (a host "
                 "function called back into its caller)" +
                 trapNote(FuncIdx));

  const FlatFunc &F = FM.Funcs[FuncIdx - FM.NumImports];
  if (Args.size() < F.NumParams)
    return Error("trap: call stack underflow" + trapNote(FuncIdx));

  Frames.clear();
  if (Regs.size() < F.NumRegs)
    Regs.resize(F.NumRegs);
  for (uint32_t I = 0; I < F.NumRegs; ++I)
    Regs[I] = I < F.NumParams ? Args[I].Bits : 0;
  if (OpStack.size() < F.MaxDepth)
    OpStack.resize(F.MaxDepth);
  Frames.push_back({&F, 0, 0, 0});

  std::string TrapMsg;
  uint64_t Fuel = MaxFuel;
  ResumeSp = 0;
  Running = true;
  bool Ok = false;
#if RW_JIT_ENABLED
  if (Jit && Jit->entry(FuncIdx - FM.NumImports)) {
    // Root frame is compiled: run it natively; on a deopt the flat
    // interpreter resumes from the recorded frame state below.
    switch (jitExecuteBack(Fuel)) {
    case JitRun::Done:
      Ok = true;
      break;
    case JitRun::Trapped:
      TrapMsg = JitTrapMsg;
      Ok = false;
      break;
    case JitRun::Resume:
      Ok = run(Fuel, TrapMsg);
      break;
    }
  } else {
    Ok = run(Fuel, TrapMsg);
  }
#else
  Ok = run(Fuel, TrapMsg);
#endif
  Running = false;
  Executed += MaxFuel - Fuel;
  if (!Ok)
    return Error("trap: " + TrapMsg + trapNote(LastTrapFunc));

  std::vector<WValue> Out;
  Out.reserve(FT.Results.size());
  for (uint32_t I = 0; I < FT.Results.size(); ++I)
    Out.push_back({FT.Results[I], OpStack[I]});
  return Out;
}

//===----------------------------------------------------------------------===//
// Dispatch plumbing: threaded (computed-goto) dispatch on GNU-compatible
// compilers — each handler ends in its own indirect jump, which the
// branch predictor can specialize per opcode pair — with a portable
// switch fallback elsewhere. One fuel decrement per dispatched
// instruction doubles as the executed-instruction counter
// (Executed = MaxFuel - Fuel at exit).
//===----------------------------------------------------------------------===//

#if (defined(__GNUC__) || defined(__clang__)) && defined(RW_FORCE_THREADED)
#define RW_THREADED 1
#else
#define RW_THREADED 0
#endif

#if RW_THREADED

#define RW_OPW(NAME) L_##NAME:
#define RW_OPF(NAME) L_##NAME:
#define RW_DEFAULT() L_generic:
#define RW_NEXT()                                                              \
  do {                                                                         \
    if (Fuel == 0)                                                             \
      return trapOut("fuel exhausted");                                        \
    --Fuel;                                                                    \
    OpC = *Pc++;                                                               \
    goto *DispatchTable[OpC];                                                  \
  } while (0)
#define RW_LOOP_BEGIN() RW_NEXT();
#define RW_LOOP_END()

#else

#define RW_OPW(NAME) case static_cast<uint32_t>(Op::NAME):
#define RW_OPF(NAME) case NAME:
#define RW_DEFAULT() default:
#define RW_NEXT() continue
#define RW_LOOP_BEGIN()                                                        \
  for (;;) {                                                                   \
    if (Fuel == 0)                                                             \
      return trapOut("fuel exhausted");                                        \
    --Fuel;                                                                    \
    OpC = *Pc++;                                                               \
    switch (OpC) {
#define RW_LOOP_END()                                                          \
  }                                                                            \
  }

#endif

bool FlatInstance::run(uint64_t &FuelRef, std::string &TrapMsg) {
  using namespace rw::num;

  const FlatModule &FM = *Active;
  uint64_t Fuel = FuelRef; // Local for the hot loop; written back on exit.

  CallFrame *Fr = &Frames.back();
  const uint32_t *C = Fr->F->Code.data();
  // Fresh invokes enter at Pc 0 / height 0; after a native deopt this
  // resumes mid-function at the frame's recorded pc and operand height.
  const uint32_t *Pc = C + Fr->Pc;
  uint64_t *Ops = OpStack.data();
  uint64_t *R = Regs.data() + Fr->RegBase;
  uint32_t Base = Fr->OpBase;
  uint32_t Sp = Base + ResumeSp; // Absolute operand-stack index.
  ResumeSp = 0;
  uint8_t *MemP = Mem.data();
  size_t MemSz = Mem.size();
  uint32_t OpC = 0;

  // Call-transfer scratch shared by FCall / FCallIndirect.
  uint32_t CalleeIdx = 0;
  uint32_t HostIdx = 0;

  // Profile table base; non-null whenever Active->Profiled (prepare()
  // guarantees the table), which is the only way FProf ops get executed.
  FunctionProfile *PT = Prof.empty() ? nullptr : Prof.data();

  auto trapOutAt = [&](std::string Msg, uint32_t Func) {
    TrapMsg = std::move(Msg);
    LastTrapFunc = Func;
    FuelRef = Fuel;
    Frames.clear();
    return false;
  };
  // Default attribution: the function executing when the trap fired
  // (matches the tree engine's innermost-frame rule; call_indirect
  // table/signature traps land on the caller in both).
  auto trapOut = [&](std::string Msg) {
    return trapOutAt(std::move(Msg),
                     static_cast<uint32_t>(Fr->F - FM.Funcs.data()) +
                         FM.NumImports);
  };

#if RW_THREADED
  // Opcode → handler label. Label addresses only exist inside this
  // function, so each entry builds the table locally (cheap: once per
  // invoke, not per instruction) and the first entry publishes it via
  // call_once — safe against concurrent first invokes on two threads.
  static const void *DispatchTable[FOpCount];
  static std::once_flag TableOnce;
  static std::atomic<bool> TablePublished{false};
  if (!TablePublished.load(std::memory_order_acquire)) {
    const void *Local[FOpCount];
    for (const void *&E : Local)
      E = &&L_generic;
#define RW_REGW(NAME) Local[static_cast<uint32_t>(Op::NAME)] = &&L_##NAME;
#define RW_REGF(NAME) Local[NAME] = &&L_##NAME;
    RW_REGW(Unreachable)
    RW_REGF(FGoto) RW_REGF(FGotoIf) RW_REGF(FGotoIfZ) RW_REGF(FBr)
    RW_REGF(FBrIf) RW_REGF(FBrTable) RW_REGF(FReturn) RW_REGF(FCall)
    RW_REGF(FCallHost) RW_REGF(FCallIndirect)
    RW_REGF(FGetGet) RW_REGF(FGetConst) RW_REGF(FGetGetAdd)
    RW_REGF(FGetConstAdd) RW_REGF(FGetGetAddSet) RW_REGF(FGetConstAddSet)
    RW_REGF(FMove) RW_REGF(FConstSet) RW_REGF(FGetLoadI32)
    RW_REGF(FGetGetStoreI32) RW_REGF(FGetConstStoreI32)
    RW_REGF(FProfEnter) RW_REGF(FProfLoop)
    RW_REGW(Drop) RW_REGW(Select)
    RW_REGW(LocalGet) RW_REGW(LocalSet) RW_REGW(LocalTee)
    RW_REGW(GlobalGet) RW_REGW(GlobalSet)
    RW_REGW(MemorySize) RW_REGW(MemoryGrow)
    RW_REGW(I32Load) RW_REGW(F32Load) RW_REGW(I64Load) RW_REGW(F64Load)
    RW_REGW(I32Load8S) RW_REGW(I32Load8U) RW_REGW(I32Load16S)
    RW_REGW(I32Load16U) RW_REGW(I64Load8S) RW_REGW(I64Load8U)
    RW_REGW(I64Load16S) RW_REGW(I64Load16U) RW_REGW(I64Load32S)
    RW_REGW(I64Load32U)
    RW_REGW(I32Store) RW_REGW(F32Store) RW_REGW(I64Store32)
    RW_REGW(I64Store) RW_REGW(F64Store) RW_REGW(I32Store8)
    RW_REGW(I64Store8) RW_REGW(I32Store16) RW_REGW(I64Store16)
    RW_REGW(I32Const) RW_REGW(F32Const) RW_REGW(I64Const) RW_REGW(F64Const)
    RW_REGW(I32Add) RW_REGW(I32Sub) RW_REGW(I32Mul) RW_REGW(I32And)
    RW_REGW(I32Or) RW_REGW(I32Xor) RW_REGW(I32Shl) RW_REGW(I32ShrU)
    RW_REGW(I32ShrS) RW_REGW(I32Eq) RW_REGW(I32Ne) RW_REGW(I32LtU)
    RW_REGW(I32GtU) RW_REGW(I32LeU) RW_REGW(I32GeU) RW_REGW(I32LtS)
    RW_REGW(I32GtS) RW_REGW(I32LeS) RW_REGW(I32GeS)
    RW_REGW(I64Add) RW_REGW(I64Sub) RW_REGW(I64Mul) RW_REGW(I64And)
    RW_REGW(I64Or) RW_REGW(I64Xor) RW_REGW(I64Shl) RW_REGW(I64ShrU)
    RW_REGW(I64Eq) RW_REGW(I64Ne) RW_REGW(I64LtU) RW_REGW(I64GtU)
    RW_REGW(I64LtS) RW_REGW(I64GtS)
    RW_REGW(I32Eqz) RW_REGW(I64Eqz)
    RW_REGW(I32DivS) RW_REGW(I32DivU) RW_REGW(I32RemS) RW_REGW(I32RemU)
#undef RW_REGW
#undef RW_REGF
    std::call_once(TableOnce, [&] {
      std::memcpy(DispatchTable, Local, sizeof(Local));
      TablePublished.store(true, std::memory_order_release);
    });
  }
#endif

  RW_LOOP_BEGIN()

  //===--------------------------------------------------------------===//
  // Control
  //===--------------------------------------------------------------===//
  RW_OPW(Unreachable)
  return trapOut("unreachable executed");

  RW_OPF(FGoto)
  Pc = C + *Pc;
  RW_NEXT();

  RW_OPF(FGotoIf) {
    uint32_t Cond = static_cast<uint32_t>(Ops[--Sp]);
    Pc = Cond ? C + *Pc : Pc + 1;
    RW_NEXT();
  }

  RW_OPF(FGotoIfZ) {
    uint32_t Cond = static_cast<uint32_t>(Ops[--Sp]);
    Pc = Cond ? Pc + 1 : C + *Pc;
    RW_NEXT();
  }

  RW_OPF(FBr) {
    uint32_t Target = Pc[0], Keep = Pc[1], Reset = Pc[2];
    uint64_t *Dst = Ops + Base + Reset, *Src = Ops + Sp - Keep;
    for (uint32_t K = 0; K < Keep; ++K)
      Dst[K] = Src[K];
    Sp = Base + Reset + Keep;
    Pc = C + Target;
    RW_NEXT();
  }

  RW_OPF(FBrIf) {
    uint32_t Cond = static_cast<uint32_t>(Ops[--Sp]);
    if (!Cond) {
      Pc += 3;
      RW_NEXT();
    }
    uint32_t Target = Pc[0], Keep = Pc[1], Reset = Pc[2];
    uint64_t *Dst = Ops + Base + Reset, *Src = Ops + Sp - Keep;
    for (uint32_t K = 0; K < Keep; ++K)
      Dst[K] = Src[K];
    Sp = Base + Reset + Keep;
    Pc = C + Target;
    RW_NEXT();
  }

  RW_OPF(FBrTable) {
    uint32_t N = *Pc++;
    uint32_t Idx = static_cast<uint32_t>(Ops[--Sp]);
    const uint32_t *Entry = Pc + 3 * (Idx < N ? Idx : N);
    uint32_t Target = Entry[0], Keep = Entry[1], Reset = Entry[2];
    uint64_t *Dst = Ops + Base + Reset, *Src = Ops + Sp - Keep;
    for (uint32_t K = 0; K < Keep; ++K)
      Dst[K] = Src[K];
    Sp = Base + Reset + Keep;
    Pc = C + Target;
    RW_NEXT();
  }

  RW_OPF(FReturn) {
    uint32_t NRes = Fr->F->NumResults;
    uint64_t *Dst = Ops + Base, *Src = Ops + Sp - NRes;
    if (Dst != Src)
      for (uint32_t K = 0; K < NRes; ++K)
        Dst[K] = Src[K];
    Sp = Base + NRes;
    Frames.pop_back();
    if (Frames.empty()) {
      FuelRef = Fuel;
      return true;
    }
    Fr = &Frames.back();
    C = Fr->F->Code.data();
    Pc = C + Fr->Pc;
    R = Regs.data() + Fr->RegBase;
    Base = Fr->OpBase;
    RW_NEXT();
  }

  //===--------------------------------------------------------------===//
  // Calls
  //===--------------------------------------------------------------===//
  RW_OPF(FCall)
  CalleeIdx = *Pc++;
  goto direct_call;

  RW_OPF(FCallHost)
  HostIdx = *Pc++;
  goto host_call;

  RW_OPF(FCallIndirect) {
    uint32_t Expect = *Pc++;
    uint32_t TblIdx = static_cast<uint32_t>(Ops[--Sp]);
    if (TblIdx >= Table.size())
      return trapOut("call_indirect: table index out of bounds");
    uint32_t Func = Table[TblIdx];
    if (FM.CanonType[Func] != Expect)
      return trapOut("call_indirect: signature mismatch");
    if (Func < FM.NumImports) {
      HostIdx = Func;
      goto host_call;
    }
    CalleeIdx = Func - FM.NumImports;
    goto direct_call;
  }

direct_call: {
  if (Frames.size() >= MaxCallDepth)
    // Attributed to the callee that failed to get a frame (the tree
    // engine's innermost attempted call claims this trap too).
    return trapOutAt("call stack exhausted", CalleeIdx + FM.NumImports);
  const FlatFunc *Callee = &FM.Funcs[CalleeIdx];
  uint32_t NewRegBase = Fr->RegBase + Fr->F->NumRegs;
  if (Regs.size() < NewRegBase + Callee->NumRegs)
    Regs.resize(
        std::max<size_t>(NewRegBase + Callee->NumRegs, Regs.size() * 2));
  uint32_t NP = Callee->NumParams;
  Sp -= NP;
  uint64_t *NR = Regs.data() + NewRegBase;
  for (uint32_t I = 0; I < NP; ++I)
    NR[I] = Ops[Sp + I];
  for (uint32_t I = NP; I < Callee->NumRegs; ++I)
    NR[I] = 0;
  if (OpStack.size() < Sp + Callee->MaxDepth)
    OpStack.resize(std::max<size_t>(Sp + Callee->MaxDepth, OpStack.size() * 2));
  Fr->Pc = static_cast<uint32_t>(Pc - C);
  Frames.push_back({Callee, 0, NewRegBase, Sp});
#if RW_JIT_ENABLED
  if (Jit && Jit->entry(CalleeIdx)) {
    // Tiered-up callee: run it natively. Done pops the frame with the
    // results at its base; Resume re-enters this loop at the deopt point
    // (possibly in a deeper frame); Trapped is fully recorded.
    switch (jitExecuteBack(Fuel)) {
    case JitRun::Done:
      Sp += Callee->NumResults;
      break;
    case JitRun::Trapped:
      TrapMsg = JitTrapMsg;
      FuelRef = Fuel;
      return false;
    case JitRun::Resume:
      Sp = Frames.back().OpBase + ResumeSp;
      ResumeSp = 0;
      break;
    }
    Fr = &Frames.back();
    C = Fr->F->Code.data();
    Pc = C + Fr->Pc;
    Ops = OpStack.data();
    R = Regs.data() + Fr->RegBase;
    Base = Fr->OpBase;
    MemP = Mem.data();
    MemSz = Mem.size();
    RW_NEXT();
  }
#endif
  Fr = &Frames.back();
  C = Callee->Code.data();
  Pc = C;
  Ops = OpStack.data();
  R = Regs.data() + NewRegBase;
  Base = Sp;
  RW_NEXT();
}

host_call: {
  const HostFn *H = hostFor(HostIdx);
  if (!H)
    return trapOutAt("unsatisfied import", HostIdx);
  const FuncType &HT = M->Types[M->ImportFuncs[HostIdx].TypeIdx];
  uint32_t NP = static_cast<uint32_t>(HT.Params.size());
  std::vector<WValue> HArgs(NP);
  Sp -= NP;
  for (uint32_t I = 0; I < NP; ++I)
    HArgs[I] = {HT.Params[I], Ops[Sp + I]};
  if (PT)
    ++PT[HostIdx].Invocations;
  Expected<std::vector<WValue>> HR = (*H)(*this, HArgs);
  if (!HR)
    return trapOutAt(HR.error().message(), HostIdx);
  if (OpStack.size() < Sp + HR->size())
    OpStack.resize(Sp + HR->size());
  Ops = OpStack.data();
  for (const WValue &V : *HR)
    Ops[Sp++] = V.Bits;
  // The host may have touched (or grown) the instance memory.
  MemP = Mem.data();
  MemSz = Mem.size();
  RW_NEXT();
}

  //===--------------------------------------------------------------===//
  // Superinstructions (translator peephole fusions; see Translate.h)
  //===--------------------------------------------------------------===//
  RW_OPF(FGetGet) {
    Ops[Sp] = R[Pc[0]];
    Ops[Sp + 1] = R[Pc[1]];
    Sp += 2;
    Pc += 2;
    RW_NEXT();
  }

  RW_OPF(FGetConst) {
    Ops[Sp] = R[Pc[0]];
    Ops[Sp + 1] = Pc[1];
    Sp += 2;
    Pc += 2;
    RW_NEXT();
  }

  RW_OPF(FGetGetAdd) {
    Ops[Sp++] = static_cast<uint32_t>(R[Pc[0]] + R[Pc[1]]);
    Pc += 2;
    RW_NEXT();
  }

  RW_OPF(FGetConstAdd) {
    Ops[Sp++] = static_cast<uint32_t>(R[Pc[0]] + Pc[1]);
    Pc += 2;
    RW_NEXT();
  }

  RW_OPF(FGetGetAddSet) {
    R[Pc[2]] = static_cast<uint32_t>(R[Pc[0]] + R[Pc[1]]);
    Pc += 3;
    RW_NEXT();
  }

  RW_OPF(FGetConstAddSet) {
    R[Pc[2]] = static_cast<uint32_t>(R[Pc[0]] + Pc[1]);
    Pc += 3;
    RW_NEXT();
  }

  RW_OPF(FMove) {
    R[Pc[1]] = R[Pc[0]];
    Pc += 2;
    RW_NEXT();
  }

  RW_OPF(FConstSet) {
    R[Pc[1]] = Pc[0];
    Pc += 2;
    RW_NEXT();
  }

  RW_OPF(FGetLoadI32) {
    uint64_t Addr =
        static_cast<uint32_t>(R[Pc[0]]) + static_cast<uint64_t>(Pc[1]);
    Pc += 2;
    if (Addr + 4 > MemSz)
      return trapOut("out-of-bounds memory access");
    uint32_t V;
    std::memcpy(&V, MemP + Addr, 4);
    Ops[Sp++] = V;
    RW_NEXT();
  }

  RW_OPF(FGetGetStoreI32) {
    uint64_t Addr =
        static_cast<uint32_t>(R[Pc[0]]) + static_cast<uint64_t>(Pc[2]);
    uint32_t V = static_cast<uint32_t>(R[Pc[1]]);
    Pc += 3;
    if (Addr + 4 > MemSz)
      return trapOut("out-of-bounds memory access");
    std::memcpy(MemP + Addr, &V, 4);
    RW_NEXT();
  }

  RW_OPF(FGetConstStoreI32) {
    uint64_t Addr =
        static_cast<uint32_t>(R[Pc[0]]) + static_cast<uint64_t>(Pc[2]);
    uint32_t V = Pc[1];
    Pc += 3;
    if (Addr + 4 > MemSz)
      return trapOut("out-of-bounds memory access");
    std::memcpy(MemP + Addr, &V, 4);
    RW_NEXT();
  }

  //===--------------------------------------------------------------===//
  // Execution profiling (present only in profiled translations). The
  // ++Fuel refunds the dispatch decrement: profiled and unprofiled runs
  // agree on fuel, trap points, and Executed exactly.
  //===--------------------------------------------------------------===//
  RW_OPF(FProfEnter) {
    ++Fuel;
    ++PT[*Pc++].Invocations;
    RW_NEXT();
  }

  RW_OPF(FProfLoop) {
    ++Fuel;
    ++PT[*Pc++].LoopHeads;
    RW_NEXT();
  }

  //===--------------------------------------------------------------===//
  // Parametric / variables
  //===--------------------------------------------------------------===//
  RW_OPW(Drop)
  --Sp;
  RW_NEXT();

  RW_OPW(Select) {
    uint32_t Cond = static_cast<uint32_t>(Ops[Sp - 1]);
    Sp -= 2;
    Ops[Sp - 1] = Cond ? Ops[Sp - 1] : Ops[Sp];
    RW_NEXT();
  }

  RW_OPW(LocalGet)
  Ops[Sp++] = R[*Pc++];
  RW_NEXT();

  RW_OPW(LocalSet)
  R[*Pc++] = Ops[--Sp];
  RW_NEXT();

  RW_OPW(LocalTee)
  R[*Pc++] = Ops[Sp - 1];
  RW_NEXT();

  RW_OPW(GlobalGet)
  Ops[Sp++] = Globals[*Pc++].Bits;
  RW_NEXT();

  RW_OPW(GlobalSet)
  Globals[*Pc++].Bits = Ops[--Sp];
  RW_NEXT();

  //===--------------------------------------------------------------===//
  // Memory
  //===--------------------------------------------------------------===//
  RW_OPW(MemorySize)
  Ops[Sp++] = MemSz / PageSize;
  RW_NEXT();

  RW_OPW(MemoryGrow) {
    uint32_t Delta = static_cast<uint32_t>(Ops[Sp - 1]);
    uint64_t OldPages = MemSz / PageSize;
    uint64_t NewPages = OldPages + Delta;
    uint64_t MaxPages =
        M->Memory && M->Memory->second ? *M->Memory->second : 65536;
    if (NewPages > MaxPages) {
      Ops[Sp - 1] = 0xffffffffu;
    } else {
      Mem.resize(NewPages * PageSize, 0);
      MemP = Mem.data();
      MemSz = Mem.size();
      Ops[Sp - 1] = OldPages;
    }
    RW_NEXT();
  }

#define RW_LOAD(NBYTES, EXPR)                                                  \
  {                                                                            \
    uint64_t Addr =                                                            \
        static_cast<uint32_t>(Ops[Sp - 1]) + static_cast<uint64_t>(*Pc++);     \
    if (Addr + (NBYTES) > MemSz)                                               \
      return trapOut("out-of-bounds memory access");                           \
    uint64_t V = 0;                                                            \
    std::memcpy(&V, MemP + Addr, (NBYTES));                                    \
    Ops[Sp - 1] = (EXPR);                                                      \
    RW_NEXT();                                                                 \
  }
#define RW_STORE(NBYTES)                                                       \
  {                                                                            \
    uint64_t Val = Ops[Sp - 1];                                                \
    uint64_t Addr =                                                            \
        static_cast<uint32_t>(Ops[Sp - 2]) + static_cast<uint64_t>(*Pc++);     \
    Sp -= 2;                                                                   \
    if (Addr + (NBYTES) > MemSz)                                               \
      return trapOut("out-of-bounds memory access");                           \
    std::memcpy(MemP + Addr, &Val, (NBYTES));                                  \
    RW_NEXT();                                                                 \
  }

  RW_OPW(I32Load) RW_OPW(F32Load) RW_LOAD(4, V)
  RW_OPW(I64Load) RW_OPW(F64Load) RW_LOAD(8, V)
  RW_OPW(I32Load8S)
  RW_LOAD(1, static_cast<uint64_t>(
                 static_cast<int64_t>(static_cast<int8_t>(V))) &
                 0xffffffffu)
  RW_OPW(I32Load8U) RW_LOAD(1, V)
  RW_OPW(I32Load16S)
  RW_LOAD(2, static_cast<uint64_t>(
                 static_cast<int64_t>(static_cast<int16_t>(V))) &
                 0xffffffffu)
  RW_OPW(I32Load16U) RW_LOAD(2, V)
  RW_OPW(I64Load8S)
  RW_LOAD(1,
          static_cast<uint64_t>(static_cast<int64_t>(static_cast<int8_t>(V))))
  RW_OPW(I64Load8U) RW_LOAD(1, V)
  RW_OPW(I64Load16S)
  RW_LOAD(2,
          static_cast<uint64_t>(static_cast<int64_t>(static_cast<int16_t>(V))))
  RW_OPW(I64Load16U) RW_LOAD(2, V)
  RW_OPW(I64Load32S)
  RW_LOAD(4,
          static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(V))))
  RW_OPW(I64Load32U) RW_LOAD(4, V)

  RW_OPW(I32Store) RW_OPW(F32Store) RW_OPW(I64Store32) RW_STORE(4)
  RW_OPW(I64Store) RW_OPW(F64Store) RW_STORE(8)
  RW_OPW(I32Store8) RW_OPW(I64Store8) RW_STORE(1)
  RW_OPW(I32Store16) RW_OPW(I64Store16) RW_STORE(2)

#undef RW_LOAD
#undef RW_STORE

  //===--------------------------------------------------------------===//
  // Constants
  //===--------------------------------------------------------------===//
  RW_OPW(I32Const) RW_OPW(F32Const)
  Ops[Sp++] = *Pc++;
  RW_NEXT();

  RW_OPW(I64Const) RW_OPW(F64Const) {
    uint64_t Lo = Pc[0], Hi = Pc[1];
    Pc += 2;
    Ops[Sp++] = Lo | (Hi << 32);
    RW_NEXT();
  }

  //===--------------------------------------------------------------===//
  // Hot ALU ops: dedicated handlers so the common path is one indirect
  // jump instead of the range chain in the generic tail.
  //===--------------------------------------------------------------===//
#define RW_BIN32(OPNAME, EXPR)                                                 \
  RW_OPW(OPNAME) {                                                             \
    uint32_t B = static_cast<uint32_t>(Ops[--Sp]);                             \
    uint32_t A = static_cast<uint32_t>(Ops[Sp - 1]);                           \
    Ops[Sp - 1] = static_cast<uint32_t>(EXPR);                                 \
    (void)A;                                                                   \
    (void)B;                                                                   \
    RW_NEXT();                                                                 \
  }
#define RW_BIN64(OPNAME, EXPR)                                                 \
  RW_OPW(OPNAME) {                                                             \
    uint64_t B = Ops[--Sp];                                                    \
    uint64_t A = Ops[Sp - 1];                                                  \
    Ops[Sp - 1] = (EXPR);                                                      \
    (void)A;                                                                   \
    (void)B;                                                                   \
    RW_NEXT();                                                                 \
  }

  RW_BIN32(I32Add, A + B)
  RW_BIN32(I32Sub, A - B)
  RW_BIN32(I32Mul, A * B)
  RW_BIN32(I32And, A & B)
  RW_BIN32(I32Or, A | B)
  RW_BIN32(I32Xor, A ^ B)
  RW_BIN32(I32Shl, A << (B & 31))
  RW_BIN32(I32ShrU, A >> (B & 31))
  RW_BIN32(I32ShrS, static_cast<uint32_t>(static_cast<int32_t>(A) >> (B & 31)))
  RW_BIN32(I32Eq, A == B ? 1 : 0)
  RW_BIN32(I32Ne, A != B ? 1 : 0)
  RW_BIN32(I32LtU, A < B ? 1 : 0)
  RW_BIN32(I32GtU, A > B ? 1 : 0)
  RW_BIN32(I32LeU, A <= B ? 1 : 0)
  RW_BIN32(I32GeU, A >= B ? 1 : 0)
  RW_BIN32(I32LtS, static_cast<int32_t>(A) < static_cast<int32_t>(B) ? 1 : 0)
  RW_BIN32(I32GtS, static_cast<int32_t>(A) > static_cast<int32_t>(B) ? 1 : 0)
  RW_BIN32(I32LeS, static_cast<int32_t>(A) <= static_cast<int32_t>(B) ? 1 : 0)
  RW_BIN32(I32GeS, static_cast<int32_t>(A) >= static_cast<int32_t>(B) ? 1 : 0)
  RW_BIN64(I64Add, A + B)
  RW_BIN64(I64Sub, A - B)
  RW_BIN64(I64Mul, A * B)
  RW_BIN64(I64And, A & B)
  RW_BIN64(I64Or, A | B)
  RW_BIN64(I64Xor, A ^ B)
  RW_BIN64(I64Shl, A << (B & 63))
  RW_BIN64(I64ShrU, A >> (B & 63))
  RW_BIN64(I64Eq, A == B ? 1 : 0)
  RW_BIN64(I64Ne, A != B ? 1 : 0)
  RW_BIN64(I64LtU, A < B ? 1 : 0)
  RW_BIN64(I64GtU, A > B ? 1 : 0)
  RW_BIN64(I64LtS, static_cast<int64_t>(A) < static_cast<int64_t>(B) ? 1 : 0)
  RW_BIN64(I64GtS, static_cast<int64_t>(A) > static_cast<int64_t>(B) ? 1 : 0)

#undef RW_BIN32
#undef RW_BIN64

  RW_OPW(I32Eqz)
  Ops[Sp - 1] = static_cast<uint32_t>(Ops[Sp - 1]) == 0 ? 1 : 0;
  RW_NEXT();

  RW_OPW(I64Eqz)
  Ops[Sp - 1] = Ops[Sp - 1] == 0 ? 1 : 0;
  RW_NEXT();

  RW_OPW(I32DivS) {
    uint32_t B = static_cast<uint32_t>(Ops[--Sp]);
    uint32_t A = static_cast<uint32_t>(Ops[Sp - 1]);
    if (B == 0 || (A == 0x80000000u && B == 0xffffffffu))
      return trapOut("integer divide error");
    Ops[Sp - 1] =
        static_cast<uint32_t>(static_cast<int32_t>(A) / static_cast<int32_t>(B));
    RW_NEXT();
  }

  RW_OPW(I32DivU) {
    uint32_t B = static_cast<uint32_t>(Ops[--Sp]);
    if (B == 0)
      return trapOut("integer divide error");
    Ops[Sp - 1] = static_cast<uint32_t>(Ops[Sp - 1]) / B;
    RW_NEXT();
  }

  RW_OPW(I32RemS) {
    uint32_t B = static_cast<uint32_t>(Ops[--Sp]);
    uint32_t A = static_cast<uint32_t>(Ops[Sp - 1]);
    if (B == 0)
      return trapOut("integer divide error");
    Ops[Sp - 1] = B == 0xffffffffu
                      ? 0
                      : static_cast<uint32_t>(static_cast<int32_t>(A) %
                                              static_cast<int32_t>(B));
    RW_NEXT();
  }

  RW_OPW(I32RemU) {
    uint32_t B = static_cast<uint32_t>(Ops[--Sp]);
    if (B == 0)
      return trapOut("integer divide error");
    Ops[Sp - 1] = static_cast<uint32_t>(Ops[Sp - 1]) % B;
    RW_NEXT();
  }

  //===--------------------------------------------------------------===//
  // Generic tail: the remaining numerics and conversions, evaluated
  // with the same helpers as the tree engine (bit-exact agreement).
  // Opcodes with dedicated handlers above never land here.
  //===--------------------------------------------------------------===//
  RW_DEFAULT() {
    if (OpC >= 0x46 && OpC <= 0x4f) { // i32 relops
      static const IntRelop Map[] = {IntRelop::Eq, IntRelop::Ne, IntRelop::Lt,
                                     IntRelop::Lt, IntRelop::Gt, IntRelop::Gt,
                                     IntRelop::Le, IntRelop::Le, IntRelop::Ge,
                                     IntRelop::Ge};
      static const bool Signed[] = {false, false, true, false, true,
                                    false, true,  false, true, false};
      unsigned Idx = OpC - 0x46;
      uint64_t B = Ops[--Sp];
      Ops[Sp - 1] = evalIntRelop(Map[Idx], Ops[Sp - 1], B, false, Signed[Idx]);
      RW_NEXT();
    }
    if (OpC >= 0x51 && OpC <= 0x5a) { // i64 relops
      static const IntRelop Map[] = {IntRelop::Eq, IntRelop::Ne, IntRelop::Lt,
                                     IntRelop::Lt, IntRelop::Gt, IntRelop::Gt,
                                     IntRelop::Le, IntRelop::Le, IntRelop::Ge,
                                     IntRelop::Ge};
      static const bool Signed[] = {false, false, true, false, true,
                                    false, true,  false, true, false};
      unsigned Idx = OpC - 0x51;
      uint64_t B = Ops[--Sp];
      Ops[Sp - 1] = evalIntRelop(Map[Idx], Ops[Sp - 1], B, true, Signed[Idx]);
      RW_NEXT();
    }
    if (OpC >= 0x5b && OpC <= 0x66) { // float relops
      static const FloatRelop Map[] = {FloatRelop::Eq, FloatRelop::Ne,
                                       FloatRelop::Lt, FloatRelop::Gt,
                                       FloatRelop::Le, FloatRelop::Ge};
      bool Is64 = OpC >= 0x61;
      unsigned Idx = Is64 ? OpC - 0x61 : OpC - 0x5b;
      uint64_t B = Ops[--Sp];
      Ops[Sp - 1] = evalFloatRelop(Map[Idx], Ops[Sp - 1], B, Is64);
      RW_NEXT();
    }
    if (OpC >= 0x67 && OpC <= 0x69) { // i32 unary
      uint64_t A = Ops[Sp - 1];
      Ops[Sp - 1] = OpC == 0x67   ? intClz(A, false)
                    : OpC == 0x68 ? intCtz(A, false)
                                  : intPopcnt(A, false);
      RW_NEXT();
    }
    if (OpC >= 0x79 && OpC <= 0x7b) { // i64 unary
      uint64_t A = Ops[Sp - 1];
      Ops[Sp - 1] = OpC == 0x79   ? intClz(A, true)
                    : OpC == 0x7a ? intCtz(A, true)
                                  : intPopcnt(A, true);
      RW_NEXT();
    }
    if ((OpC >= 0x6a && OpC <= 0x78) ||
        (OpC >= 0x7c && OpC <= 0x8a)) { // remaining int binops
      static const IntBinop Map[] = {
          IntBinop::Add, IntBinop::Sub,  IntBinop::Mul, IntBinop::Div,
          IntBinop::Div, IntBinop::Rem,  IntBinop::Rem, IntBinop::And,
          IntBinop::Or,  IntBinop::Xor,  IntBinop::Shl, IntBinop::Shr,
          IntBinop::Shr, IntBinop::Rotl, IntBinop::Rotr};
      static const bool Signed[] = {false, false, false, true,  false,
                                    true,  false, false, false, false,
                                    false, true,  false, false, false};
      bool Is64 = OpC >= 0x7c;
      unsigned Idx = Is64 ? OpC - 0x7c : OpC - 0x6a;
      uint64_t B = Ops[--Sp];
      std::optional<uint64_t> V =
          evalIntBinop(Map[Idx], Ops[Sp - 1], B, Is64, Signed[Idx]);
      if (!V)
        return trapOut("integer divide error");
      Ops[Sp - 1] = *V;
      RW_NEXT();
    }
    if ((OpC >= 0x8b && OpC <= 0x91) ||
        (OpC >= 0x99 && OpC <= 0x9f)) { // float unops
      static const FloatUnop Map[] = {FloatUnop::Abs,   FloatUnop::Neg,
                                      FloatUnop::Ceil,  FloatUnop::Floor,
                                      FloatUnop::Trunc, FloatUnop::Nearest,
                                      FloatUnop::Sqrt};
      bool Is64 = OpC >= 0x99;
      unsigned Idx = Is64 ? OpC - 0x99 : OpC - 0x8b;
      Ops[Sp - 1] = evalFloatUnop(Map[Idx], Ops[Sp - 1], Is64);
      RW_NEXT();
    }
    if ((OpC >= 0x92 && OpC <= 0x98) ||
        (OpC >= 0xa0 && OpC <= 0xa6)) { // float binops
      static const FloatBinop Map[] = {
          FloatBinop::Add, FloatBinop::Sub, FloatBinop::Mul, FloatBinop::Div,
          FloatBinop::Min, FloatBinop::Max, FloatBinop::Copysign};
      bool Is64 = OpC >= 0xa0;
      unsigned Idx = Is64 ? OpC - 0xa0 : OpC - 0x92;
      uint64_t B = Ops[--Sp];
      Ops[Sp - 1] = evalFloatBinop(Map[Idx], Ops[Sp - 1], B, Is64);
      RW_NEXT();
    }

    // Conversions.
    switch (static_cast<Op>(OpC)) {
    case Op::I32WrapI64:
      Ops[Sp - 1] &= 0xffffffffu;
      RW_NEXT();
    case Op::I64ExtendI32S:
      Ops[Sp - 1] = static_cast<uint64_t>(static_cast<int64_t>(
          static_cast<int32_t>(static_cast<uint32_t>(Ops[Sp - 1]))));
      RW_NEXT();
    case Op::I64ExtendI32U:
      Ops[Sp - 1] = static_cast<uint32_t>(Ops[Sp - 1]);
      RW_NEXT();
    case Op::I32TruncF32S:
    case Op::I32TruncF32U:
    case Op::I64TruncF32S:
    case Op::I64TruncF32U: {
      bool Dst64 = OpC == static_cast<uint32_t>(Op::I64TruncF32S) ||
                   OpC == static_cast<uint32_t>(Op::I64TruncF32U);
      bool Sgn = OpC == static_cast<uint32_t>(Op::I32TruncF32S) ||
                 OpC == static_cast<uint32_t>(Op::I64TruncF32S);
      std::optional<uint64_t> V = truncToInt(bitsToF32(Ops[Sp - 1]), Dst64, Sgn);
      if (!V)
        return trapOut("invalid conversion to integer");
      Ops[Sp - 1] = *V;
      RW_NEXT();
    }
    case Op::I32TruncF64S:
    case Op::I32TruncF64U:
    case Op::I64TruncF64S:
    case Op::I64TruncF64U: {
      bool Dst64 = OpC == static_cast<uint32_t>(Op::I64TruncF64S) ||
                   OpC == static_cast<uint32_t>(Op::I64TruncF64U);
      bool Sgn = OpC == static_cast<uint32_t>(Op::I32TruncF64S) ||
                 OpC == static_cast<uint32_t>(Op::I64TruncF64S);
      std::optional<uint64_t> V = truncToInt(bitsToF64(Ops[Sp - 1]), Dst64, Sgn);
      if (!V)
        return trapOut("invalid conversion to integer");
      Ops[Sp - 1] = *V;
      RW_NEXT();
    }
    case Op::F32ConvertI32S:
      Ops[Sp - 1] = f32ToBits(static_cast<float>(
          static_cast<int32_t>(static_cast<uint32_t>(Ops[Sp - 1]))));
      RW_NEXT();
    case Op::F32ConvertI32U:
      Ops[Sp - 1] =
          f32ToBits(static_cast<float>(static_cast<uint32_t>(Ops[Sp - 1])));
      RW_NEXT();
    case Op::F32ConvertI64S:
      Ops[Sp - 1] =
          f32ToBits(static_cast<float>(static_cast<int64_t>(Ops[Sp - 1])));
      RW_NEXT();
    case Op::F32ConvertI64U:
      Ops[Sp - 1] = f32ToBits(static_cast<float>(Ops[Sp - 1]));
      RW_NEXT();
    case Op::F64ConvertI32S:
      Ops[Sp - 1] = f64ToBits(static_cast<double>(
          static_cast<int32_t>(static_cast<uint32_t>(Ops[Sp - 1]))));
      RW_NEXT();
    case Op::F64ConvertI32U:
      Ops[Sp - 1] =
          f64ToBits(static_cast<double>(static_cast<uint32_t>(Ops[Sp - 1])));
      RW_NEXT();
    case Op::F64ConvertI64S:
      Ops[Sp - 1] =
          f64ToBits(static_cast<double>(static_cast<int64_t>(Ops[Sp - 1])));
      RW_NEXT();
    case Op::F64ConvertI64U:
      Ops[Sp - 1] = f64ToBits(static_cast<double>(Ops[Sp - 1]));
      RW_NEXT();
    case Op::F32DemoteF64:
      Ops[Sp - 1] = f32ToBits(static_cast<float>(bitsToF64(Ops[Sp - 1])));
      RW_NEXT();
    case Op::F64PromoteF32:
      Ops[Sp - 1] = f64ToBits(static_cast<double>(bitsToF32(Ops[Sp - 1])));
      RW_NEXT();
    case Op::I32ReinterpretF32:
    case Op::I64ReinterpretF64:
    case Op::F32ReinterpretI32:
    case Op::F64ReinterpretI64:
      RW_NEXT(); // Bit patterns are already untyped slots.
    default:
      return trapOut("unhandled opcode");
    }
  }

  RW_LOOP_END()
}

//===----------------------------------------------------------------------===//
// Engine factory (declared in wasm/Instance.h; defined here where both
// engines are visible)
//===----------------------------------------------------------------------===//

std::unique_ptr<Instance> rw::wasm::createInstance(const WModule &M,
                                                   EngineKind K) {
  // EngineKind::Jit is the flat engine with eager tier-up; under
  // -DRW_JIT=OFF it still instantiates (reporting engine() == Jit) but
  // every function runs flat — semantics are engine-identical anyway.
  if (K == EngineKind::Flat || K == EngineKind::Jit)
    return std::make_unique<FlatInstance>(M, K);
  return std::make_unique<WasmInstance>(M);
}
