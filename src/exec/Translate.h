//===- exec/Translate.h - Wasm AST → flat bytecode --------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-time translation of a validated wasm::WModule into the flat
/// bytecode executed by exec::FlatInstance (DESIGN.md §5). Each function
/// body becomes a single linear uint32_t stream:
///
///   * structured control flow (block/loop/if/br/br_if/br_table) is
///     resolved to absolute jump targets, computed here once instead of
///     being re-discovered on every branch;
///   * every branch carries its stack fix-up as immediates — how many
///     result slots to keep and the operand height to reset to — so the
///     engine performs a bounded copy instead of re-deriving label
///     arities;
///   * calls are pre-split into direct calls (operand = defined-function
///     index), host calls (operand = import index), and indirect calls
///     (operand = canonical type id for the signature check);
///   * per-function operand-stack bounds (MaxDepth) and register counts
///     are precomputed so the engine reserves space once per call and
///     runs the body without per-push bounds checks.
///
/// Translation assumes a validated module (wasm::validate); on malformed
/// input it fails with an Error rather than crashing, but the produced
/// bytecode is only meaningful for valid input.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_EXEC_TRANSLATE_H
#define RICHWASM_EXEC_TRANSLATE_H

#include "support/Error.h"
#include "wasm/WasmAst.h"

#include <vector>

namespace rw::exec {

/// Flat opcodes. Values 0x00..0xbf are the Wasm binary opcode bytes,
/// reused verbatim for the one-to-one data/numeric instructions; the
/// re-encoded control-flow opcodes live at 0x100+ (they can never
/// collide with a Wasm byte).
///
/// Operand layout (words following the opcode):
///   FGoto / FGotoIf / FGotoIfZ     target
///   FBr / FBrIf                    target, keep, reset
///   FBrTable                       count, then (count+1) × (target, keep,
///                                  reset); the default entry is last
///   FCall                          defined-function index
///   FCallHost                      import index
///   FCallIndirect                  canonical type id
///   local/global ops               index
///   memory ops                     static offset
///   i32/f32 const                  1 value word;  i64/f64 const: lo, hi
enum FOp : uint32_t {
  FGoto = 0x100, ///< Unconditional jump, stack already in shape.
  FBr,           ///< Jump with stack fix-up (keep top slots, reset).
  FGotoIf,       ///< Pop cond; jump if non-zero (no fix-up needed).
  FBrIf,         ///< Pop cond; jump with fix-up if non-zero.
  FGotoIfZ,      ///< Pop cond; jump if zero (lowered `if`).
  FBrTable,      ///< Pop index; select among pre-resolved triples.
  FReturn,       ///< Move results to the frame base; pop the frame.
  FCall,         ///< Direct call of a defined function.
  FCallHost,     ///< Call of an imported host function.
  FCallIndirect, ///< Table dispatch with canonical-type check.

  // Superinstructions: peephole fusions of adjacent data ops formed at
  // translation time (never across a branch target — the translator
  // fences fusion at every label point). Lowered RichWasm code is pure
  // i32 register traffic, so these cover its hottest patterns.
  FGetGet,           ///< a b: push R[a]; push R[b].
  FGetConst,         ///< a k: push R[a]; push k.
  FGetGetAdd,        ///< a b: push u32(R[a] + R[b]).
  FGetConstAdd,      ///< a k: push u32(R[a] + k).
  FGetGetAddSet,     ///< a b d: R[d] = u32(R[a] + R[b]).
  FGetConstAddSet,   ///< a k d: R[d] = u32(R[a] + k).
  FMove,             ///< a d: R[d] = R[a]  (local.get; local.set).
  FConstSet,         ///< k d: R[d] = k     (i32/f32 const; local.set).
  FGetLoadI32,       ///< a off: push u32 memory[R[a] + off].
  FGetGetStoreI32,   ///< a b off: memory[R[a] + off] = u32(R[b]).
  FGetConstStoreI32, ///< a k off: memory[R[a] + off] = k.

  // Execution-profile bumps, emitted only by profiled translations
  // (TranslateOptions::Profile): the steady-state dispatch loop of an
  // unprofiled module never sees them. Both are fuel-neutral so a
  // profiled run traps/halts at exactly the same instruction count as an
  // unprofiled one. Operand: function-space index.
  FProfEnter, ///< f: first body instruction; count one invocation.
  FProfLoop,  ///< f: loop header (branch target); count one execution.

  FOpCount, ///< Table size for threaded dispatch.
};

/// One translated function: a linear code stream plus the frame shape.
struct FlatFunc {
  uint32_t TypeIdx = 0;
  uint32_t NumParams = 0;
  uint32_t NumRegs = 0; ///< Parameters + declared locals.
  uint32_t NumResults = 0;
  uint32_t MaxDepth = 0; ///< Max operand-stack height inside the body.
  std::vector<uint32_t> Code;
};

/// A whole translated module.
struct FlatModule {
  const wasm::WModule *Source = nullptr;
  uint32_t NumImports = 0;
  std::vector<FlatFunc> Funcs; ///< Defined functions only.
  /// Function-space index → canonical type id (index of the first
  /// structurally equal entry in Source->Types); call_indirect compares
  /// these instead of re-comparing FuncTypes at run time.
  std::vector<uint32_t> CanonType;
  /// Whether the code streams contain FProfEnter/FProfLoop bumps. An
  /// instance with profiling on cannot adopt an unprofiled translation
  /// (it re-translates locally); one adopting a profiled translation
  /// allocates its profile table so the bumps always have a target.
  bool Profiled = false;
};

struct TranslateOptions {
  bool Profile = false; ///< Fuse FProfEnter/FProfLoop into the code.
};

/// Translates every function of \p M. The module must outlive the result.
Expected<FlatModule> translate(const wasm::WModule &M);
Expected<FlatModule> translate(const wasm::WModule &M,
                               const TranslateOptions &Opts);

} // namespace rw::exec

#endif // RICHWASM_EXEC_TRANSLATE_H
