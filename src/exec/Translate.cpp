//===- exec/Translate.cpp - Wasm AST → flat bytecode ------------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "exec/Translate.h"

#include "obs/Obs.h"

using namespace rw;
using namespace rw::exec;
using namespace rw::wasm;

namespace {

/// Operand/result counts of a non-structured, non-call opcode, derived
/// from the Wasm opcode byte ranges (cheaper than wasm::opSignature,
/// which materializes type vectors).
struct Arity {
  uint32_t In = 0, Out = 0;
};

/// Canonical type id: index of the first structurally equal entry in
/// M.Types. call_indirect's runtime check compares these, so every
/// producer of a canonical id must use this one definition.
uint32_t canonTypeId(const WModule &M, uint32_t TypeIdx) {
  for (uint32_t J = 0; J < TypeIdx; ++J)
    if (M.Types[J] == M.Types[TypeIdx])
      return J;
  return TypeIdx;
}

Arity simpleArity(Op K) {
  uint8_t C = static_cast<uint8_t>(K);
  if (C >= 0x28 && C <= 0x35) // loads
    return {1, 1};
  if (C >= 0x36 && C <= 0x3e) // stores
    return {2, 0};
  if (K == Op::MemorySize)
    return {0, 1};
  if (K == Op::MemoryGrow)
    return {1, 1};
  if (C >= 0x41 && C <= 0x44) // consts
    return {0, 1};
  if (C == 0x45 || C == 0x50) // eqz
    return {1, 1};
  if ((C >= 0x46 && C <= 0x4f) || (C >= 0x51 && C <= 0x66)) // relops
    return {2, 1};
  if ((C >= 0x67 && C <= 0x69) || (C >= 0x79 && C <= 0x7b)) // int unops
    return {1, 1};
  if ((C >= 0x6a && C <= 0x78) || (C >= 0x7c && C <= 0x8a)) // int binops
    return {2, 1};
  if ((C >= 0x8b && C <= 0x91) || (C >= 0x99 && C <= 0x9f)) // float unops
    return {1, 1};
  if ((C >= 0x92 && C <= 0x98) || (C >= 0xa0 && C <= 0xa6)) // float binops
    return {2, 1};
  if (C >= 0xa7 && C <= 0xbf) // conversions
    return {1, 1};
  return {0, 0}; // unreachable/nop handled by the caller
}

/// Translates one function body. Tracks the virtual operand height the
/// validator proved consistent, so every branch can be annotated with an
/// absolute target plus its stack fix-up.
class FuncTranslator {
public:
  /// \p ProfileIdx: function-space index to bump from the emitted
  /// FProfEnter/FProfLoop ops, or UINT32_MAX for no profiling.
  FuncTranslator(const WModule &M, const FlatModule &FM, FlatFunc &Out,
                 uint32_t ProfileIdx = UINT32_MAX)
      : M(M), FM(FM), Out(Out), Code(Out.Code), ProfileIdx(ProfileIdx) {}

  Status run(const WFunc &F) {
    const FuncType &FT = M.Types[F.TypeIdx];
    // The implicit function-body label: a block whose results are the
    // function results and whose branches land on the final FReturn.
    Ctrl.push_back({CtrlKind::Block, 0, 0,
                    static_cast<uint32_t>(FT.Results.size()), 0, {}, false});
    if (ProfileIdx != UINT32_MAX) {
      emit(FProfEnter);
      emit(ProfileIdx);
    }
    if (Status S = seq(F.Body); !S)
      return S;
    patchTo(Ctrl.back(), static_cast<uint32_t>(Code.size()));
    Ctrl.pop_back();
    emit(FReturn);
    Out.MaxDepth = MaxHeight;
    return Status::success();
  }

private:
  enum class CtrlKind : uint8_t { Block, Loop, If };

  struct CtrlFrame {
    CtrlKind K;
    uint32_t Base;    ///< Operand height just below the label's params.
    uint32_t Params;  ///< Label params (branch arity for loops).
    uint32_t Results; ///< Label results (branch arity for blocks/ifs).
    uint32_t LoopTarget = 0; ///< Loops: absolute pc of the body start.
    std::vector<uint32_t> Patches; ///< Target words to patch at `end`.
    bool HadBr = false; ///< A branch targeted this label.
  };

  const WModule &M;
  const FlatModule &FM;
  FlatFunc &Out;
  std::vector<uint32_t> &Code;
  std::vector<CtrlFrame> Ctrl;
  uint32_t Height = 0, MaxHeight = 0;
  uint32_t ProfileIdx = UINT32_MAX;
  bool Dead = false;

  /// Peephole state: what the previously emitted instruction was, for
  /// superinstruction fusion. Fusion is only legal within a basic
  /// block; fence() forgets the state at every point a label can bind.
  enum class Prev : uint8_t {
    None,
    Get,         ///< local.get a           (at PrevPos)
    Const,       ///< single-word const k
    GetGet,      ///< FGetGet a b
    GetConst,    ///< FGetConst a k
    GetGetAdd,   ///< FGetGetAdd a b
    GetConstAdd, ///< FGetConstAdd a k
  };
  Prev Last = Prev::None;
  size_t PrevPos = 0;

  void fence() { Last = Prev::None; }
  void setLast(Prev P, size_t Pos) {
    Last = P;
    PrevPos = Pos;
  }

  void emit(uint32_t W) { Code.push_back(W); }
  void push(uint32_t N) {
    Height += N;
    if (Height > MaxHeight)
      MaxHeight = Height;
  }
  Status pop(uint32_t N) {
    if (Height < N)
      return Error("flat translation: operand stack underflow");
    Height -= N;
    return Status::success();
  }

  void patchTo(CtrlFrame &F, uint32_t Target) {
    for (uint32_t Pos : F.Patches)
      Code[Pos] = Target;
    F.Patches.clear();
  }

  /// Label arity: what a branch to this frame keeps on the stack.
  static uint32_t arity(const CtrlFrame &F) {
    return F.K == CtrlKind::Loop ? F.Params : F.Results;
  }

  /// Emits the target word for a branch to \p F: the loop header, or a
  /// forward patch recorded on the frame.
  void emitTarget(CtrlFrame &F) {
    F.HadBr = true;
    if (F.K == CtrlKind::Loop) {
      emit(F.LoopTarget);
    } else {
      F.Patches.push_back(static_cast<uint32_t>(Code.size()));
      emit(0);
    }
  }

  /// Emits a branch to relative depth \p Depth. \p CondOp is FGotoIf /
  /// FBrIf for br_if, or 0 for an unconditional br. The virtual height
  /// must already account for a popped condition.
  Status emitBranch(uint32_t Depth, bool Conditional) {
    fence();
    if (Depth >= Ctrl.size())
      return Error("flat translation: branch depth out of range");
    CtrlFrame &F = Ctrl[Ctrl.size() - 1 - Depth];
    uint32_t Keep = arity(F);
    if (Height < F.Base + Keep)
      return Error("flat translation: branch below label height");
    if (Height == F.Base + Keep) {
      emit(Conditional ? FGotoIf : FGoto);
      emitTarget(F);
    } else {
      emit(Conditional ? FBrIf : FBr);
      emitTarget(F);
      emit(Keep);
      emit(F.Base);
    }
    return Status::success();
  }

  /// One br_table entry (always the full triple, for uniform decoding).
  Status emitTableEntry(uint32_t Depth) {
    fence();
    if (Depth >= Ctrl.size())
      return Error("flat translation: br_table depth out of range");
    CtrlFrame &F = Ctrl[Ctrl.size() - 1 - Depth];
    uint32_t Keep = arity(F);
    if (Height < F.Base + Keep)
      return Error("flat translation: br_table below label height");
    emitTarget(F);
    emit(Keep);
    emit(F.Base);
    return Status::success();
  }

  Status seq(const std::vector<WInst> &Body) {
    for (const WInst &I : Body) {
      if (Dead)
        return Status::success(); // Skip the unreachable tail.
      if (Status S = inst(I); !S)
        return S;
    }
    return Status::success();
  }

  Status inst(const WInst &I);
};

Status FuncTranslator::inst(const WInst &I) {
  switch (I.K) {
  case Op::Nop:
    return Status::success(); // Erased: costs nothing at run time.
  case Op::Unreachable:
    fence();
    emit(static_cast<uint32_t>(Op::Unreachable));
    Dead = true;
    return Status::success();

  case Op::Block: {
    fence();
    uint32_t P = static_cast<uint32_t>(I.BT.Params.size());
    uint32_t R = static_cast<uint32_t>(I.BT.Results.size());
    if (Status S = pop(P); !S)
      return S;
    Ctrl.push_back({CtrlKind::Block, Height, P, R, 0, {}, false});
    push(P);
    if (Status S = seq(I.Body); !S)
      return S;
    CtrlFrame F = std::move(Ctrl.back());
    Ctrl.pop_back();
    patchTo(F, static_cast<uint32_t>(Code.size()));
    fence();
    Dead = Dead && !F.HadBr;
    Height = F.Base + R;
    if (Height > MaxHeight)
      MaxHeight = Height;
    return Status::success();
  }
  case Op::Loop: {
    fence();
    uint32_t P = static_cast<uint32_t>(I.BT.Params.size());
    uint32_t R = static_cast<uint32_t>(I.BT.Results.size());
    if (Status S = pop(P); !S)
      return S;
    Ctrl.push_back({CtrlKind::Loop, Height, P, R,
                    static_cast<uint32_t>(Code.size()), {}, false});
    // The loop target recorded above points AT this bump, so it runs on
    // fall-in entry and on every back-branch — exactly the tree engine's
    // loop-header count.
    if (ProfileIdx != UINT32_MAX) {
      emit(FProfLoop);
      emit(ProfileIdx);
    }
    push(P);
    if (Status S = seq(I.Body); !S)
      return S;
    CtrlFrame F = std::move(Ctrl.back());
    Ctrl.pop_back();
    fence();
    // Back-branches never fall out downward, so reachability after the
    // loop is exactly the body's fall-through reachability.
    Height = F.Base + R;
    if (Height > MaxHeight)
      MaxHeight = Height;
    return Status::success();
  }
  case Op::If: {
    fence();
    if (Status S = pop(1); !S) // condition
      return S;
    uint32_t P = static_cast<uint32_t>(I.BT.Params.size());
    uint32_t R = static_cast<uint32_t>(I.BT.Results.size());
    if (Status S = pop(P); !S)
      return S;
    uint32_t Base = Height;
    emit(FGotoIfZ);
    uint32_t ElsePatch = static_cast<uint32_t>(Code.size());
    emit(0);
    Ctrl.push_back({CtrlKind::If, Base, P, R, 0, {}, false});
    push(P);
    if (Status S = seq(I.Body); !S)
      return S;
    bool ThenDead = Dead;
    Dead = false;
    CtrlFrame &F = Ctrl.back();
    bool ElseDead = true;
    if (!I.Else.empty()) {
      if (!ThenDead) {
        // Skip the else arm when the then arm falls through.
        emit(FGoto);
        F.Patches.push_back(static_cast<uint32_t>(Code.size()));
        emit(0);
      }
      Code[ElsePatch] = static_cast<uint32_t>(Code.size());
      fence();
      Height = Base;
      push(P);
      if (Status S = seq(I.Else); !S)
        return S;
      ElseDead = Dead;
      Dead = false;
    } else {
      // No else: the false path falls through to the end label.
      F.Patches.push_back(ElsePatch);
      ElseDead = false;
    }
    CtrlFrame Done = std::move(Ctrl.back());
    Ctrl.pop_back();
    patchTo(Done, static_cast<uint32_t>(Code.size()));
    fence();
    Dead = ThenDead && ElseDead && !Done.HadBr;
    Height = Base + R;
    if (Height > MaxHeight)
      MaxHeight = Height;
    return Status::success();
  }

  case Op::Br:
    if (Status S = emitBranch(I.U32, /*Conditional=*/false); !S)
      return S;
    Dead = true;
    return Status::success();
  case Op::BrIf:
    if (Status S = pop(1); !S)
      return S;
    return emitBranch(I.U32, /*Conditional=*/true);
  case Op::BrTable: {
    fence();
    if (Status S = pop(1); !S)
      return S;
    emit(FBrTable);
    emit(static_cast<uint32_t>(I.Table.size()));
    for (uint32_t Depth : I.Table)
      if (Status S = emitTableEntry(Depth); !S)
        return S;
    if (Status S = emitTableEntry(I.U32); !S) // default, last
      return S;
    Dead = true;
    return Status::success();
  }
  case Op::Return:
    fence();
    emit(FReturn);
    Dead = true;
    return Status::success();

  case Op::Call: {
    const FuncType &FT = M.funcType(I.U32);
    if (Status S = pop(static_cast<uint32_t>(FT.Params.size())); !S)
      return S;
    fence();
    if (I.U32 < FM.NumImports) {
      emit(FCallHost);
      emit(I.U32);
    } else {
      emit(FCall);
      emit(I.U32 - FM.NumImports);
    }
    push(static_cast<uint32_t>(FT.Results.size()));
    return Status::success();
  }
  case Op::CallIndirect: {
    if (I.U32 >= M.Types.size())
      return Error("flat translation: call_indirect type out of range");
    const FuncType &FT = M.Types[I.U32];
    if (Status S = pop(1 + static_cast<uint32_t>(FT.Params.size())); !S)
      return S;
    fence();
    emit(FCallIndirect);
    // Canonicalize so the runtime check is a single integer compare.
    emit(canonTypeId(M, I.U32));
    push(static_cast<uint32_t>(FT.Results.size()));
    return Status::success();
  }

  case Op::Drop:
    if (Status S = pop(1); !S)
      return S;
    emit(static_cast<uint32_t>(Op::Drop));
    fence();
    return Status::success();
  case Op::Select:
    if (Status S = pop(3); !S)
      return S;
    emit(static_cast<uint32_t>(Op::Select));
    fence();
    push(1);
    return Status::success();

  case Op::LocalGet: {
    if (I.U32 >= Out.NumRegs)
      return Error("flat translation: local/global index out of range");
    push(1);
    if (Last == Prev::Get) {
      // [get a][get b] → FGetGet a b
      Code[PrevPos] = FGetGet;
      emit(I.U32);
      setLast(Prev::GetGet, PrevPos);
    } else {
      size_t P = Code.size();
      emit(static_cast<uint32_t>(Op::LocalGet));
      emit(I.U32);
      setLast(Prev::Get, P);
    }
    return Status::success();
  }
  case Op::LocalSet: {
    if (I.U32 >= Out.NumRegs)
      return Error("flat translation: local/global index out of range");
    if (Status S = pop(1); !S)
      return S;
    if (Last == Prev::GetGetAdd) {
      Code[PrevPos] = FGetGetAddSet; // a b d
      emit(I.U32);
    } else if (Last == Prev::GetConstAdd) {
      Code[PrevPos] = FGetConstAddSet; // a k d
      emit(I.U32);
    } else if (Last == Prev::Get) {
      Code[PrevPos] = FMove; // a d
      emit(I.U32);
    } else if (Last == Prev::Const) {
      Code[PrevPos] = FConstSet; // k d
      emit(I.U32);
    } else {
      emit(static_cast<uint32_t>(Op::LocalSet));
      emit(I.U32);
    }
    fence();
    return Status::success();
  }
  case Op::LocalTee:
  case Op::GlobalGet:
  case Op::GlobalSet: {
    uint32_t Limit = (I.K == Op::GlobalGet || I.K == Op::GlobalSet)
                         ? static_cast<uint32_t>(M.Globals.size())
                         : Out.NumRegs;
    if (I.U32 >= Limit)
      return Error("flat translation: local/global index out of range");
    if (I.K == Op::GlobalGet)
      push(1);
    else if (I.K == Op::GlobalSet)
      if (Status S = pop(1); !S)
        return S;
    emit(static_cast<uint32_t>(I.K));
    emit(I.U32);
    fence();
    return Status::success();
  }

  case Op::I32Const:
  case Op::F32Const: {
    push(1);
    if (Last == Prev::Get) {
      // [get a][const k] → FGetConst a k
      Code[PrevPos] = FGetConst;
      emit(static_cast<uint32_t>(I.U64));
      setLast(Prev::GetConst, PrevPos);
    } else {
      size_t P = Code.size();
      emit(static_cast<uint32_t>(I.K));
      emit(static_cast<uint32_t>(I.U64));
      setLast(Prev::Const, P);
    }
    return Status::success();
  }
  case Op::I64Const:
  case Op::F64Const:
    emit(static_cast<uint32_t>(I.K));
    emit(static_cast<uint32_t>(I.U64));
    emit(static_cast<uint32_t>(I.U64 >> 32));
    fence();
    push(1);
    return Status::success();

  default: {
    // Memory and numeric opcodes map one-to-one (with peephole
    // fusions for the i32 patterns lowered RichWasm code lives in).
    Arity A = simpleArity(I.K);
    if (A.In == 0 && A.Out == 0)
      return Error("flat translation: unhandled opcode");
    if (Status S = pop(A.In); !S)
      return S;
    if (I.K == Op::I32Add && Last == Prev::GetGet) {
      Code[PrevPos] = FGetGetAdd;
      setLast(Prev::GetGetAdd, PrevPos);
    } else if (I.K == Op::I32Add && Last == Prev::GetConst) {
      Code[PrevPos] = FGetConstAdd;
      setLast(Prev::GetConstAdd, PrevPos);
    } else if (I.K == Op::I32Load && Last == Prev::Get) {
      Code[PrevPos] = FGetLoadI32; // a off
      emit(I.Offset);
      fence();
    } else if (I.K == Op::I32Store && Last == Prev::GetGet) {
      Code[PrevPos] = FGetGetStoreI32; // a b off
      emit(I.Offset);
      fence();
    } else if (I.K == Op::I32Store && Last == Prev::GetConst) {
      Code[PrevPos] = FGetConstStoreI32; // a k off
      emit(I.Offset);
      fence();
    } else {
      emit(static_cast<uint32_t>(I.K));
      uint8_t C = static_cast<uint8_t>(I.K);
      if (C >= 0x28 && C <= 0x3e) // memarg: static offset immediate
        emit(I.Offset);
      fence();
    }
    push(A.Out);
    return Status::success();
  }
  }
}

} // namespace

Expected<FlatModule> rw::exec::translate(const WModule &M) {
  return translate(M, TranslateOptions{});
}

Expected<FlatModule> rw::exec::translate(const WModule &M,
                                         const TranslateOptions &Opts) {
  OBS_SPAN("translate", M.Funcs.size());
  static obs::Counter FuncsTranslated("exec.funcs_translated");

  FlatModule FM;
  FM.Source = &M;
  FM.NumImports = static_cast<uint32_t>(M.ImportFuncs.size());
  FM.Profiled = Opts.Profile;

  // Canonical type id for every function-space index.
  for (const WImportFunc &Imp : M.ImportFuncs)
    FM.CanonType.push_back(canonTypeId(M, Imp.TypeIdx));
  for (const WFunc &F : M.Funcs)
    FM.CanonType.push_back(canonTypeId(M, F.TypeIdx));

  FM.Funcs.reserve(M.Funcs.size());
  for (uint32_t FI = 0; FI < M.Funcs.size(); ++FI) {
    const WFunc &F = M.Funcs[FI];
    if (F.TypeIdx >= M.Types.size())
      return Error("flat translation: function type out of range");
    const FuncType &FT = M.Types[F.TypeIdx];
    FlatFunc Out;
    Out.TypeIdx = F.TypeIdx;
    Out.NumParams = static_cast<uint32_t>(FT.Params.size());
    Out.NumRegs =
        Out.NumParams + static_cast<uint32_t>(F.Locals.size());
    Out.NumResults = static_cast<uint32_t>(FT.Results.size());
    FuncTranslator T(M, FM, Out,
                     Opts.Profile ? FM.NumImports + FI : UINT32_MAX);
    if (Status S = T.run(F); !S)
      return S.error().addContext("function " + std::to_string(FI));
    FM.Funcs.push_back(std::move(Out));
  }
  FuncsTranslated.add(M.Funcs.size());
  return FM;
}
