//===- support/FaultInject.cpp - Compile-time-gated fault injection -------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Entirely preprocessed away in the default build (RW_FAULT_ENABLED=0): CI
// asserts this TU contributes zero defined symbols to the archive, the same
// compile-out contract obs/Obs.cpp and jit/Jit.cpp honor.
//
//===----------------------------------------------------------------------===//

#include "FaultInject.h"

#if RW_FAULT_ENABLED

#include <atomic>

namespace rw::support::fault {
namespace {

enum class Mode : uint8_t { Off, Nth, Every, Probability };

// Per-seam state. Arm/disarm happen on a quiescent test thread; only
// shouldFail() runs concurrently, so relaxed atomics suffice — the tests
// assert on counts after joining all workers.
struct SeamState {
  std::atomic<Mode> M{Mode::Off};
  std::atomic<uint64_t> Param{0};    // Nth target or Every period.
  std::atomic<uint64_t> Count{0};    // Occurrences since last arm.
  std::atomic<uint64_t> Fired{0};    // Failures injected since last arm.
  std::atomic<uint64_t> Rng{0};      // xorshift64* state (Probability).
  std::atomic<uint32_t> PerMille{0}; // Probability in 1/1000ths.
};

SeamState States[NumSeams];

SeamState &state(Seam S) { return States[static_cast<uint8_t>(S)]; }

void rearm(Seam S, Mode M, uint64_t Param, uint32_t PerMille, uint64_t Seed) {
  SeamState &St = state(S);
  St.Count.store(0, std::memory_order_relaxed);
  St.Fired.store(0, std::memory_order_relaxed);
  St.Param.store(Param, std::memory_order_relaxed);
  St.PerMille.store(PerMille, std::memory_order_relaxed);
  St.Rng.store(Seed ? Seed : 0x9e3779b97f4a7c15ull, std::memory_order_relaxed);
  St.M.store(M, std::memory_order_relaxed);
}

} // namespace

bool shouldFail(Seam S) {
  SeamState &St = state(S);
  uint64_t N = St.Count.fetch_add(1, std::memory_order_relaxed) + 1;
  switch (St.M.load(std::memory_order_relaxed)) {
  case Mode::Off:
    return false;
  case Mode::Nth:
    if (N != St.Param.load(std::memory_order_relaxed))
      return false;
    St.M.store(Mode::Off, std::memory_order_relaxed); // single-shot
    St.Fired.fetch_add(1, std::memory_order_relaxed);
    return true;
  case Mode::Every: {
    uint64_t P = St.Param.load(std::memory_order_relaxed);
    if (P == 0 || N % P != 0)
      return false;
    St.Fired.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  case Mode::Probability: {
    // xorshift64* advanced with a CAS-free relaxed RMW: exact reproduction
    // of the sequence only matters single-threaded, which is how the
    // deterministic tests use it.
    uint64_t X = St.Rng.load(std::memory_order_relaxed);
    X ^= X >> 12;
    X ^= X << 25;
    X ^= X >> 27;
    St.Rng.store(X, std::memory_order_relaxed);
    uint64_t Draw = (X * 0x2545f4914f6cdd1dull) >> 32;
    if (Draw % 1000 >= St.PerMille.load(std::memory_order_relaxed))
      return false;
    St.Fired.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  }
  return false;
}

void armNth(Seam S, uint64_t Nth) { rearm(S, Mode::Nth, Nth, 0, 0); }

void armEvery(Seam S, uint64_t Period) { rearm(S, Mode::Every, Period, 0, 0); }

void armProbability(Seam S, uint32_t PerMille, uint64_t Seed) {
  rearm(S, Mode::Probability, 0, PerMille > 1000 ? 1000 : PerMille, Seed);
}

void disarm(Seam S) { state(S).M.store(Mode::Off, std::memory_order_relaxed); }

void disarmAll() {
  for (unsigned I = 0; I < NumSeams; ++I)
    disarm(static_cast<Seam>(I));
}

uint64_t occurrences(Seam S) {
  return state(S).Count.load(std::memory_order_relaxed);
}

uint64_t injected(Seam S) {
  return state(S).Fired.load(std::memory_order_relaxed);
}

} // namespace rw::support::fault

#endif // RW_FAULT_ENABLED
