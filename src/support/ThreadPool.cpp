//===- support/ThreadPool.cpp - Work-stealing parallel-for pool ----------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "obs/Obs.h"
#include "support/FaultInject.h"

#include <algorithm>
#include <string>

using namespace rw::support;

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0) {
    Threads = std::thread::hardware_concurrency();
    if (Threads == 0)
      Threads = 1;
  }
  Workers.reserve(Threads - 1);
  for (unsigned I = 1; I < Threads; ++I) {
    // Spawn-failure seam: a skipped worker just shrinks the pool — size()
    // derives from Workers.size(), ranges are computed from actual size,
    // and stealing covers the rest, so parallelFor output is unchanged.
    if (RW_FAULT_POINT(rw::support::fault::Seam::PoolSpawn))
      continue;
    Workers.emplace_back([this, I] { workerLoop(I); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> G(M);
    Stop = true;
  }
  CV.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void ThreadPool::runJob(Job &J, unsigned Self, std::mutex &M,
                        std::condition_variable &DoneCV) {
  size_t Done = 0;
  // Own range first; once it drains, sweep the other ranges and steal
  // whatever iterations remain there.
  for (unsigned Off = 0; Off < J.NumRanges; ++Off) {
    Range &R = J.Ranges[(Self + Off) % J.NumRanges];
    for (;;) {
      size_t I = R.Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= R.End)
        break;
      (*J.Fn)(I);
      ++Done;
    }
  }
  if (Done &&
      J.Remaining.fetch_sub(Done, std::memory_order_acq_rel) == Done) {
    // Last iterations of the job: wake the caller. Taking the mutex
    // orders this notify against the caller's predicate check.
    std::lock_guard<std::mutex> G(M);
    DoneCV.notify_all();
  }
}

void ThreadPool::workerLoop(unsigned Id) {
  // Stable worker identity: traces and TSan reports say "pool-3", not a
  // raw thread id. Id 0 is the caller participating in runJob directly.
  obs::setThreadName(("pool-" + std::to_string(Id)).c_str());
  uint64_t Seen = 0;
  for (;;) {
    std::shared_ptr<Job> J;
    {
      std::unique_lock<std::mutex> L(M);
      CV.wait(L, [&] { return Stop || Gen != Seen; });
      if (Stop)
        return;
      Seen = Gen;
      J = Cur;
    }
    if (J)
      runJob(*J, Id % std::max(1u, J->NumRanges), M, DoneCV);
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  unsigned P = size();
  if (Workers.empty() || N == 1) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }

  auto J = std::make_shared<Job>();
  J->Fn = &Fn;
  J->NumRanges = static_cast<unsigned>(std::min<size_t>(P, N));
  J->Ranges = std::make_unique<Range[]>(J->NumRanges);
  J->Remaining.store(N, std::memory_order_relaxed);
  size_t Chunk = N / J->NumRanges, Extra = N % J->NumRanges, Begin = 0;
  for (unsigned I = 0; I < J->NumRanges; ++I) {
    size_t Len = Chunk + (I < Extra ? 1 : 0);
    J->Ranges[I].Next.store(Begin, std::memory_order_relaxed);
    J->Ranges[I].End = Begin + Len;
    Begin += Len;
  }

  {
    std::lock_guard<std::mutex> G(M);
    Cur = J;
    ++Gen;
  }
  CV.notify_all();

  runJob(*J, 0, M, DoneCV);

  {
    std::unique_lock<std::mutex> L(M);
    DoneCV.wait(L, [&] {
      return J->Remaining.load(std::memory_order_acquire) == 0;
    });
    // Drop the published job so late-waking workers see an empty one at
    // the next generation bump (they re-read Cur under the lock).
    if (Cur == J)
      Cur.reset();
  }
}
