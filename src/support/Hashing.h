//===- support/Hashing.h - Shared hash mixing primitives --------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 64-bit mixing primitives shared by the link-time export index, the
/// serialization layer, and the admission cache. One definition, so the
/// cache's program key can never silently diverge from the per-module
/// hashes it folds.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_SUPPORT_HASHING_H
#define RICHWASM_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>

namespace rw::support {

/// murmur3's 64-bit finalizer: full avalanche, so inputs whose entropy
/// sits in a few bits still spread over the low bits a power-of-two
/// table masks with.
inline uint64_t mix64(uint64_t X) {
  X ^= X >> 33;
  X *= 0xff51afd7ed558ccdull;
  X ^= X >> 33;
  X *= 0xc4ceb9fe1a85ec53ull;
  X ^= X >> 33;
  return X;
}

/// FNV-1a over a byte range (the serial payload checksum; not a MAC).
inline uint64_t fnv1a(const uint8_t *D, size_t N,
                      uint64_t H = 0xcbf29ce484222325ull) {
  for (size_t I = 0; I < N; ++I)
    H = (H ^ D[I]) * 0x100000001b3ull;
  return H;
}

} // namespace rw::support

#endif // RICHWASM_SUPPORT_HASHING_H
