//===- support/Error.h - Error and Expected<T> ------------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight recoverable-error plumbing. The RichWasm libraries never
/// throw; fallible operations return Expected<T> (a value or an Error) and
/// callers must inspect the result. Type errors carry a human-readable
/// message in the LLVM diagnostic style (lowercase first word, no trailing
/// period).
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_SUPPORT_ERROR_H
#define RICHWASM_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace rw {

/// A recoverable error: a message plus an optional source context note.
class Error {
public:
  Error() = default;
  explicit Error(std::string Msg) : Msg(std::move(Msg)) {}

  const std::string &message() const { return Msg; }

  /// Prefixes \p Context to the message, for adding scope as errors
  /// propagate outward ("in function f: ...").
  Error &addContext(const std::string &Context) {
    Msg = Context + ": " + Msg;
    return *this;
  }

private:
  std::string Msg;
};

/// Convenience constructor mirroring llvm::createStringError.
inline Error makeError(std::string Msg) { return Error(std::move(Msg)); }

/// Either a value of type T or an Error. Must be checked before use.
template <typename T> class Expected {
public:
  Expected(T Val) : Val(std::move(Val)) {}
  Expected(Error E) : Err(std::move(E)) {}

  explicit operator bool() const { return Val.has_value(); }

  T &operator*() {
    assert(Val && "dereferencing an Expected in error state");
    return *Val;
  }
  const T &operator*() const {
    assert(Val && "dereferencing an Expected in error state");
    return *Val;
  }
  T *operator->() {
    assert(Val && "dereferencing an Expected in error state");
    return &*Val;
  }
  const T *operator->() const {
    assert(Val && "dereferencing an Expected in error state");
    return &*Val;
  }

  T &get() { return **this; }
  const T &get() const { return **this; }

  Error &error() {
    assert(!Val && "no error in Expected holding a value");
    return Err;
  }
  const Error &error() const {
    assert(!Val && "no error in Expected holding a value");
    return Err;
  }

  /// Takes the value out of a successful Expected.
  T take() {
    assert(Val && "taking from an Expected in error state");
    return std::move(*Val);
  }

private:
  std::optional<T> Val;
  Error Err;
};

/// Result of an operation with no payload: success or an Error.
class Status {
public:
  Status() = default;
  Status(Error E) : Err(std::move(E)) {}

  static Status success() { return Status(); }

  explicit operator bool() const { return !Err.has_value(); }
  bool ok() const { return !Err.has_value(); }

  Error &error() {
    assert(Err && "no error in successful Status");
    return *Err;
  }
  const Error &error() const {
    assert(Err && "no error in successful Status");
    return *Err;
  }

private:
  std::optional<Error> Err;
};

} // namespace rw

#endif // RICHWASM_SUPPORT_ERROR_H
