//===- support/ThreadPool.h - Work-stealing parallel-for pool ---*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small persistent thread pool built around one primitive:
/// parallelFor(N, Fn) runs Fn(0..N-1) across the workers plus the calling
/// thread and returns when every index has completed.
///
/// Scheduling is range-stealing self-scheduling: the index space is split
/// into one contiguous range per participant, each participant drains its
/// own range from the front, and a participant whose range is exhausted
/// steals iterations from the other ranges. Stealing keeps the pool
/// balanced under skewed per-index costs (one huge function among many
/// small ones) while the contiguous ranges keep the common case — balanced
/// work — almost contention-free: each participant's atomic cursor stays
/// in its own cache line's neighborhood until the tail of the job.
///
/// The pool makes no fairness or ordering guarantees; callers needing
/// deterministic output (the parallel checker's diagnostics) must collect
/// results per index and order them afterwards. Fn must not throw.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_SUPPORT_THREADPOOL_H
#define RICHWASM_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rw::support {

class ThreadPool {
public:
  /// Spawns \p Threads - 1 workers (the calling thread is the remaining
  /// participant of every parallelFor). Threads == 0 picks the hardware
  /// concurrency. A pool of one thread runs everything inline — useful for
  /// the determinism tests.
  explicit ThreadPool(unsigned Threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of participants (workers + the calling thread).
  unsigned size() const { return static_cast<unsigned>(Workers.size()) + 1; }

  /// Runs Fn(I) for every I in [0, N), distributing across all
  /// participants; returns when all N calls have completed. Not
  /// re-entrant: do not call parallelFor from inside Fn.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

private:
  struct Range {
    std::atomic<size_t> Next{0};
    size_t End = 0;
  };
  struct Job {
    const std::function<void(size_t)> *Fn = nullptr;
    std::unique_ptr<Range[]> Ranges;
    unsigned NumRanges = 0;
    /// Iterations not yet completed; the job is done when it hits zero.
    std::atomic<size_t> Remaining{0};
  };

  void workerLoop(unsigned Id);
  /// Drains the job: own range first (by participant id), then steals.
  static void runJob(Job &J, unsigned Self, std::mutex &M,
                     std::condition_variable &DoneCV);

  std::mutex M;
  std::condition_variable CV;     ///< Wakes workers for a new job.
  std::condition_variable DoneCV; ///< Wakes the caller on completion.
  std::shared_ptr<Job> Cur;
  uint64_t Gen = 0;
  bool Stop = false;
  std::vector<std::thread> Workers;
};

} // namespace rw::support

#endif // RICHWASM_SUPPORT_THREADPOOL_H
