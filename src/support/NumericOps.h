//===- support/NumericOps.h - Shared numeric evaluation ---------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-exact evaluation of the Wasm numeric operator alphabet, shared by
/// the RichWasm small-step machine and the Wasm interpreter. All integer
/// values travel as zero-extended uint64_t bit patterns; floats as their
/// IEEE-754 bit patterns. Operations that can trap (division by zero,
/// overflowing float-to-int truncation) return std::nullopt.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_SUPPORT_NUMERICOPS_H
#define RICHWASM_SUPPORT_NUMERICOPS_H

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>

namespace rw::num {

//===----------------------------------------------------------------------===//
// Bit-pattern plumbing
//===----------------------------------------------------------------------===//

inline uint64_t wrap(uint64_t Bits, bool Is64) {
  return Is64 ? Bits : (Bits & 0xffffffffull);
}

inline float bitsToF32(uint64_t Bits) {
  return std::bit_cast<float>(static_cast<uint32_t>(Bits));
}
inline double bitsToF64(uint64_t Bits) { return std::bit_cast<double>(Bits); }
inline uint64_t f32ToBits(float F) { return std::bit_cast<uint32_t>(F); }
inline uint64_t f64ToBits(double D) { return std::bit_cast<uint64_t>(D); }

inline int64_t toSigned(uint64_t Bits, bool Is64) {
  if (Is64)
    return static_cast<int64_t>(Bits);
  return static_cast<int64_t>(static_cast<int32_t>(Bits));
}

//===----------------------------------------------------------------------===//
// Integer operations
//===----------------------------------------------------------------------===//

inline uint64_t intClz(uint64_t V, bool Is64) {
  if (Is64)
    return V == 0 ? 64 : static_cast<uint64_t>(std::countl_zero(V));
  uint32_t X = static_cast<uint32_t>(V);
  return X == 0 ? 32 : static_cast<uint64_t>(std::countl_zero(X));
}

inline uint64_t intCtz(uint64_t V, bool Is64) {
  if (Is64)
    return V == 0 ? 64 : static_cast<uint64_t>(std::countr_zero(V));
  uint32_t X = static_cast<uint32_t>(V);
  return X == 0 ? 32 : static_cast<uint64_t>(std::countr_zero(X));
}

inline uint64_t intPopcnt(uint64_t V, bool Is64) {
  return static_cast<uint64_t>(std::popcount(wrap(V, Is64)));
}

/// Integer add/sub/mul/bitwise/shift/rotate; Div/Rem take signedness and
/// may trap.
enum class IntBinop {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Rotl,
  Rotr,
};

inline std::optional<uint64_t> evalIntBinop(IntBinop Op, uint64_t A,
                                            uint64_t B, bool Is64,
                                            bool Signed) {
  const uint64_t Width = Is64 ? 64 : 32;
  A = wrap(A, Is64);
  B = wrap(B, Is64);
  switch (Op) {
  case IntBinop::Add:
    return wrap(A + B, Is64);
  case IntBinop::Sub:
    return wrap(A - B, Is64);
  case IntBinop::Mul:
    return wrap(A * B, Is64);
  case IntBinop::Div: {
    if (B == 0)
      return std::nullopt;
    if (!Signed)
      return wrap(A / B, Is64);
    int64_t SA = toSigned(A, Is64), SB = toSigned(B, Is64);
    // INT_MIN / -1 overflows and traps, per the Wasm spec.
    int64_t Min = Is64 ? std::numeric_limits<int64_t>::min()
                       : static_cast<int64_t>(std::numeric_limits<int32_t>::min());
    if (SA == Min && SB == -1)
      return std::nullopt;
    return wrap(static_cast<uint64_t>(SA / SB), Is64);
  }
  case IntBinop::Rem: {
    if (B == 0)
      return std::nullopt;
    if (!Signed)
      return wrap(A % B, Is64);
    int64_t SA = toSigned(A, Is64), SB = toSigned(B, Is64);
    if (SB == -1)
      return 0; // INT_MIN % -1 == 0 without trapping.
    return wrap(static_cast<uint64_t>(SA % SB), Is64);
  }
  case IntBinop::And:
    return A & B;
  case IntBinop::Or:
    return A | B;
  case IntBinop::Xor:
    return A ^ B;
  case IntBinop::Shl:
    return wrap(A << (B % Width), Is64);
  case IntBinop::Shr: {
    uint64_t Sh = B % Width;
    if (!Signed)
      return wrap(A >> Sh, Is64);
    return wrap(static_cast<uint64_t>(toSigned(A, Is64) >> Sh), Is64);
  }
  case IntBinop::Rotl: {
    uint64_t Sh = B % Width;
    if (Sh == 0)
      return A;
    return wrap((A << Sh) | (A >> (Width - Sh)), Is64);
  }
  case IntBinop::Rotr: {
    uint64_t Sh = B % Width;
    if (Sh == 0)
      return A;
    return wrap((A >> Sh) | (A << (Width - Sh)), Is64);
  }
  }
  return std::nullopt;
}

enum class IntRelop { Eq, Ne, Lt, Gt, Le, Ge };

inline uint64_t evalIntRelop(IntRelop Op, uint64_t A, uint64_t B, bool Is64,
                             bool Signed) {
  A = wrap(A, Is64);
  B = wrap(B, Is64);
  bool R = false;
  if (Signed) {
    int64_t SA = toSigned(A, Is64), SB = toSigned(B, Is64);
    switch (Op) {
    case IntRelop::Eq:
      R = SA == SB;
      break;
    case IntRelop::Ne:
      R = SA != SB;
      break;
    case IntRelop::Lt:
      R = SA < SB;
      break;
    case IntRelop::Gt:
      R = SA > SB;
      break;
    case IntRelop::Le:
      R = SA <= SB;
      break;
    case IntRelop::Ge:
      R = SA >= SB;
      break;
    }
  } else {
    switch (Op) {
    case IntRelop::Eq:
      R = A == B;
      break;
    case IntRelop::Ne:
      R = A != B;
      break;
    case IntRelop::Lt:
      R = A < B;
      break;
    case IntRelop::Gt:
      R = A > B;
      break;
    case IntRelop::Le:
      R = A <= B;
      break;
    case IntRelop::Ge:
      R = A >= B;
      break;
    }
  }
  return R ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// Float operations
//===----------------------------------------------------------------------===//

enum class FloatUnop { Abs, Neg, Sqrt, Ceil, Floor, Trunc, Nearest };

template <typename F> F evalFloatUnopT(FloatUnop Op, F A) {
  switch (Op) {
  case FloatUnop::Abs:
    return std::fabs(A);
  case FloatUnop::Neg:
    return -A;
  case FloatUnop::Sqrt:
    return std::sqrt(A);
  case FloatUnop::Ceil:
    return std::ceil(A);
  case FloatUnop::Floor:
    return std::floor(A);
  case FloatUnop::Trunc:
    return std::trunc(A);
  case FloatUnop::Nearest:
    return std::nearbyint(A);
  }
  return A;
}

inline uint64_t evalFloatUnop(FloatUnop Op, uint64_t Bits, bool Is64) {
  if (Is64)
    return f64ToBits(evalFloatUnopT(Op, bitsToF64(Bits)));
  return f32ToBits(evalFloatUnopT(Op, bitsToF32(Bits)));
}

enum class FloatBinop { Add, Sub, Mul, Div, Min, Max, Copysign };

template <typename F> F evalFloatBinopT(FloatBinop Op, F A, F B) {
  switch (Op) {
  case FloatBinop::Add:
    return A + B;
  case FloatBinop::Sub:
    return A - B;
  case FloatBinop::Mul:
    return A * B;
  case FloatBinop::Div:
    return A / B;
  case FloatBinop::Min:
    if (std::isnan(A) || std::isnan(B))
      return std::numeric_limits<F>::quiet_NaN();
    if (A == 0 && B == 0)
      return std::signbit(A) ? A : B;
    return A < B ? A : B;
  case FloatBinop::Max:
    if (std::isnan(A) || std::isnan(B))
      return std::numeric_limits<F>::quiet_NaN();
    if (A == 0 && B == 0)
      return std::signbit(A) ? B : A;
    return A > B ? A : B;
  case FloatBinop::Copysign:
    return std::copysign(A, B);
  }
  return A;
}

inline uint64_t evalFloatBinop(FloatBinop Op, uint64_t ABits, uint64_t BBits,
                               bool Is64) {
  if (Is64)
    return f64ToBits(evalFloatBinopT(Op, bitsToF64(ABits), bitsToF64(BBits)));
  return f32ToBits(evalFloatBinopT(Op, bitsToF32(ABits), bitsToF32(BBits)));
}

enum class FloatRelop { Eq, Ne, Lt, Gt, Le, Ge };

template <typename F> bool evalFloatRelopT(FloatRelop Op, F A, F B) {
  switch (Op) {
  case FloatRelop::Eq:
    return A == B;
  case FloatRelop::Ne:
    return A != B;
  case FloatRelop::Lt:
    return A < B;
  case FloatRelop::Gt:
    return A > B;
  case FloatRelop::Le:
    return A <= B;
  case FloatRelop::Ge:
    return A >= B;
  }
  return false;
}

inline uint64_t evalFloatRelop(FloatRelop Op, uint64_t A, uint64_t B,
                               bool Is64) {
  bool R = Is64 ? evalFloatRelopT(Op, bitsToF64(A), bitsToF64(B))
                : evalFloatRelopT(Op, bitsToF32(A), bitsToF32(B));
  return R ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// Conversions
//===----------------------------------------------------------------------===//

/// Truncating float-to-int conversion with Wasm trap semantics.
template <typename F>
std::optional<uint64_t> truncToInt(F Val, bool DstIs64, bool DstSigned) {
  if (std::isnan(Val))
    return std::nullopt;
  F T = std::trunc(Val);
  if (DstSigned) {
    if (DstIs64) {
      if (T < -static_cast<F>(9223372036854775808.0) ||
          T >= static_cast<F>(9223372036854775808.0))
        return std::nullopt;
      return static_cast<uint64_t>(static_cast<int64_t>(T));
    }
    if (T < -static_cast<F>(2147483648.0) || T >= static_cast<F>(2147483648.0))
      return std::nullopt;
    return static_cast<uint64_t>(
        static_cast<uint32_t>(static_cast<int32_t>(T)));
  }
  if (DstIs64) {
    if (T <= -1 || T >= static_cast<F>(18446744073709551616.0))
      return std::nullopt;
    return static_cast<uint64_t>(T);
  }
  if (T <= -1 || T >= static_cast<F>(4294967296.0))
    return std::nullopt;
  return static_cast<uint64_t>(static_cast<uint32_t>(T));
}

} // namespace rw::num

#endif // RICHWASM_SUPPORT_NUMERICOPS_H
