//===- support/FlatMap.h - Open-addressed insert-only hash map --*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal open-addressed hash map for hot insert/lookup paths where
/// std::unordered_map's node-per-entry allocation dominates (measured in
/// the linker's export index: one heap allocation per export add). Linear
/// probing over one contiguous slot array, power-of-two capacity, no
/// erase (the users never remove entries), insert-or-assign semantics.
///
/// Requirements: K and V are cheap to move; Hash is stateless. Iteration
/// order is unspecified and changes on rehash — callers needing
/// determinism must not depend on it (the linker orders results by module
/// index, never by map order).
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_SUPPORT_FLATMAP_H
#define RICHWASM_SUPPORT_FLATMAP_H

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace rw::support {

template <class K, class V, class Hash> class FlatMap {
public:
  FlatMap() = default;

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  /// Pre-sizes for \p N entries without exceeding the load factor.
  void reserve(size_t N) {
    size_t Want = 16;
    while (Want * MaxLoadNum < N * MaxLoadDen)
      Want *= 2;
    if (Want > Slots.size())
      rehash(Want);
  }

  /// Inserts or overwrites.
  void insert_or_assign(const K &Key, V Val) {
    if ((Count + 1) * MaxLoadDen > Slots.size() * MaxLoadNum)
      rehash(Slots.empty() ? 16 : Slots.size() * 2);
    Slot &S = probe(Key);
    if (!S.Used) {
      S.Key = Key;
      S.Used = true;
      ++Count;
    }
    S.Val = std::move(Val);
  }

  /// Returns the value for \p Key, or null.
  const V *find(const K &Key) const {
    if (Slots.empty())
      return nullptr;
    size_t Mask = Slots.size() - 1;
    for (size_t I = Hash()(Key) & Mask;; I = (I + 1) & Mask) {
      const Slot &S = Slots[I];
      if (!S.Used)
        return nullptr;
      if (S.Key == Key)
        return &S.Val;
    }
  }

private:
  struct Slot {
    K Key{};
    V Val{};
    bool Used = false;
  };
  // Max load factor 7/8: linear probing stays short and the table is
  // still reserve()-friendly.
  static constexpr size_t MaxLoadNum = 7, MaxLoadDen = 8;

  Slot &probe(const K &Key) {
    size_t Mask = Slots.size() - 1;
    for (size_t I = Hash()(Key) & Mask;; I = (I + 1) & Mask) {
      Slot &S = Slots[I];
      if (!S.Used || S.Key == Key)
        return S;
    }
  }

  void rehash(size_t NewCap) {
    assert((NewCap & (NewCap - 1)) == 0 && "capacity must be a power of 2");
    std::vector<Slot> Old = std::move(Slots);
    Slots.clear();
    Slots.resize(NewCap);
    for (Slot &S : Old)
      if (S.Used) {
        Slot &D = probe(S.Key);
        D.Key = std::move(S.Key);
        D.Val = std::move(S.Val);
        D.Used = true;
      }
  }

  std::vector<Slot> Slots;
  size_t Count = 0;
};

} // namespace rw::support

#endif // RICHWASM_SUPPORT_FLATMAP_H
