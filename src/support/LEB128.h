//===- support/LEB128.h - LEB128 encoding utilities -------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unsigned and signed LEB128 encoding/decoding, as used throughout the
/// WebAssembly binary format.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_SUPPORT_LEB128_H
#define RICHWASM_SUPPORT_LEB128_H

#include <cstdint>
#include <optional>
#include <vector>

namespace rw {

/// Appends the ULEB128 encoding of \p Value to \p Out.
inline void encodeULEB128(uint64_t Value, std::vector<uint8_t> &Out) {
  do {
    uint8_t Byte = Value & 0x7f;
    Value >>= 7;
    if (Value != 0)
      Byte |= 0x80;
    Out.push_back(Byte);
  } while (Value != 0);
}

/// Appends the SLEB128 encoding of \p Value to \p Out.
inline void encodeSLEB128(int64_t Value, std::vector<uint8_t> &Out) {
  bool More = true;
  while (More) {
    uint8_t Byte = Value & 0x7f;
    Value >>= 7;
    bool SignBit = (Byte & 0x40) != 0;
    if ((Value == 0 && !SignBit) || (Value == -1 && SignBit))
      More = false;
    else
      Byte |= 0x80;
    Out.push_back(Byte);
  }
}

/// Decodes a ULEB128 value starting at \p Pos in \p Data; advances \p Pos.
/// Returns std::nullopt on truncated or over-long input.
inline std::optional<uint64_t> decodeULEB128(const std::vector<uint8_t> &Data,
                                             size_t &Pos) {
  uint64_t Result = 0;
  unsigned Shift = 0;
  while (true) {
    if (Pos >= Data.size() || Shift >= 64)
      return std::nullopt;
    uint8_t Byte = Data[Pos++];
    Result |= uint64_t(Byte & 0x7f) << Shift;
    if (!(Byte & 0x80))
      return Result;
    Shift += 7;
  }
}

/// Decodes an SLEB128 value starting at \p Pos in \p Data; advances \p Pos.
inline std::optional<int64_t> decodeSLEB128(const std::vector<uint8_t> &Data,
                                            size_t &Pos) {
  int64_t Result = 0;
  unsigned Shift = 0;
  uint8_t Byte;
  do {
    if (Pos >= Data.size() || Shift >= 64)
      return std::nullopt;
    Byte = Data[Pos++];
    Result |= int64_t(Byte & 0x7f) << Shift;
    Shift += 7;
  } while (Byte & 0x80);
  if (Shift < 64 && (Byte & 0x40))
    Result |= -(int64_t(1) << Shift);
  return Result;
}

} // namespace rw

#endif // RICHWASM_SUPPORT_LEB128_H
