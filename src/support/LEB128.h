//===- support/LEB128.h - LEB128 encoding utilities -------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unsigned and signed LEB128 encoding/decoding, as used throughout the
/// WebAssembly binary format.
///
/// The decoders are strict: they accept only the canonical (minimal-length)
/// encoding our own encoders produce, reject zero-padded ULEB tails and
/// redundant SLEB sign-extension bytes as Overlong, cap the payload at a
/// caller-chosen bit width (u32 indices, s33 block types, s64 constants),
/// and on failure leave the cursor at the exact offending byte so decode
/// errors can cite a precise byte offset. This is deliberately tighter
/// than the Wasm spec (which tolerates non-minimal encodings up to the
/// ceil(N/7) byte ceiling): canonical-only input is what makes
/// encode(decode(B)) == B stability checkable, and hostile producers get
/// a structured rejection instead of silent bit truncation.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_SUPPORT_LEB128_H
#define RICHWASM_SUPPORT_LEB128_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace rw {

/// Appends the ULEB128 encoding of \p Value to \p Out.
inline void encodeULEB128(uint64_t Value, std::vector<uint8_t> &Out) {
  do {
    uint8_t Byte = Value & 0x7f;
    Value >>= 7;
    if (Value != 0)
      Byte |= 0x80;
    Out.push_back(Byte);
  } while (Value != 0);
}

/// Appends the SLEB128 encoding of \p Value to \p Out.
inline void encodeSLEB128(int64_t Value, std::vector<uint8_t> &Out) {
  bool More = true;
  while (More) {
    uint8_t Byte = Value & 0x7f;
    Value >>= 7;
    bool SignBit = (Byte & 0x40) != 0;
    if ((Value == 0 && !SignBit) || (Value == -1 && SignBit))
      More = false;
    else
      Byte |= 0x80;
    Out.push_back(Byte);
  }
}

/// Why a strict decode rejected its input.
enum class LEBError : uint8_t {
  Ok,
  Truncated,  ///< Ran off the end of the buffer mid-value.
  Overlong,   ///< Non-minimal encoding (zero-pad / redundant sign byte).
  OutOfRange, ///< Payload bits beyond the requested MaxBits width.
};

inline const char *lebErrorName(LEBError E) {
  switch (E) {
  case LEBError::Ok:
    return "ok";
  case LEBError::Truncated:
    return "truncated";
  case LEBError::Overlong:
    return "overlong";
  case LEBError::OutOfRange:
    return "out of range";
  }
  return "?";
}

/// Strictly decodes a canonical ULEB128 value of at most \p MaxBits payload
/// bits from D[Pos..Sz). On Ok, \p Pos is advanced past the value and \p V
/// holds it. On failure, \p V is unspecified and \p Pos points at the
/// offending byte (== Sz for truncation).
inline LEBError decodeULEB128Strict(const uint8_t *D, size_t Sz, size_t &Pos,
                                    uint64_t &V, unsigned MaxBits = 64) {
  V = 0;
  unsigned Shift = 0;
  for (;;) {
    if (Pos >= Sz)
      return LEBError::Truncated;
    uint8_t Byte = D[Pos];
    if (Shift >= MaxBits)
      return LEBError::OutOfRange;
    uint64_t Payload = Byte & 0x7f;
    unsigned Remain = MaxBits - Shift;
    if (Remain < 7 && (Payload >> Remain) != 0)
      return LEBError::OutOfRange;
    V |= Payload << Shift;
    ++Pos;
    if (!(Byte & 0x80)) {
      // A terminal zero byte after at least one continuation byte encodes
      // no payload — the canonical form would have stopped earlier.
      if (Shift > 0 && Byte == 0) {
        --Pos;
        return LEBError::Overlong;
      }
      return LEBError::Ok;
    }
    Shift += 7;
  }
}

/// Strictly decodes a canonical SLEB128 value of at most \p MaxBits payload
/// bits (including the sign bit; 33 for Wasm block types, 64 for i64
/// constants). Same cursor contract as decodeULEB128Strict.
inline LEBError decodeSLEB128Strict(const uint8_t *D, size_t Sz, size_t &Pos,
                                    int64_t &V, unsigned MaxBits = 64) {
  uint64_t Result = 0;
  unsigned Shift = 0;
  uint8_t Byte = 0, Prev = 0;
  for (;;) {
    if (Pos >= Sz)
      return LEBError::Truncated;
    Prev = Byte;
    Byte = D[Pos];
    if (Shift >= MaxBits)
      return LEBError::OutOfRange;
    uint64_t Payload = Byte & 0x7f;
    unsigned Remain = MaxBits - Shift;
    if (Remain < 7) {
      // Bits past MaxBits must all equal the value's sign bit (bit
      // Remain-1 of this byte's payload): all-zero for non-negative,
      // all-one for negative.
      uint64_t Top = Payload >> (Remain - 1);
      uint64_t Mask = (uint64_t(1) << (7 - Remain + 1)) - 1;
      if (Top != 0 && Top != Mask)
        return LEBError::OutOfRange;
    }
    Result |= Payload << Shift;
    ++Pos;
    if (!(Byte & 0x80)) {
      // Canonical SLEB: a terminal 0x00 is redundant unless the previous
      // byte's bit 6 would otherwise sign-extend to negative; a terminal
      // 0x7f is redundant unless it flips the sign the other way.
      if (Shift > 0 && ((Byte == 0x00 && !(Prev & 0x40)) ||
                        (Byte == 0x7f && (Prev & 0x40)))) {
        --Pos;
        return LEBError::Overlong;
      }
      break;
    }
    Shift += 7;
  }
  // Sign-extend from the final byte's sign bit; Shift + 7 is the total
  // payload width consumed.
  unsigned Total = Shift + 7;
  if (Total < 64 && (Byte & 0x40))
    Result |= ~uint64_t(0) << Total;
  V = static_cast<int64_t>(Result);
  return LEBError::Ok;
}

/// Decodes a canonical ULEB128 value starting at \p Pos in \p Data;
/// advances \p Pos. Returns std::nullopt on truncated, overlong, or
/// out-of-range input (Pos then points at the offending byte).
inline std::optional<uint64_t> decodeULEB128(const std::vector<uint8_t> &Data,
                                             size_t &Pos,
                                             unsigned MaxBits = 64) {
  uint64_t V;
  if (decodeULEB128Strict(Data.data(), Data.size(), Pos, V, MaxBits) !=
      LEBError::Ok)
    return std::nullopt;
  return V;
}

/// Decodes a canonical SLEB128 value starting at \p Pos in \p Data;
/// advances \p Pos. Returns std::nullopt on malformed input.
inline std::optional<int64_t> decodeSLEB128(const std::vector<uint8_t> &Data,
                                            size_t &Pos,
                                            unsigned MaxBits = 64) {
  int64_t V;
  if (decodeSLEB128Strict(Data.data(), Data.size(), Pos, V, MaxBits) !=
      LEBError::Ok)
    return std::nullopt;
  return V;
}

} // namespace rw

#endif // RICHWASM_SUPPORT_LEB128_H
