//===- support/FaultInject.h - Compile-time-gated fault injection -*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Induced-failure testing for the admission pipeline (DESIGN.md §12): a
/// set of named *seams* — points where production code can genuinely fail
/// (allocation limits, mmap, background compilation, cache stores, worker
/// spawn) — each of which a test can arm to fail on the Nth occurrence,
/// every Nth occurrence, or probabilistically. The degradation suite
/// (tests/fault_test.cpp) proves the graceful-degradation contracts the
/// rest of the codebase claims: a JIT compile failure falls back to the
/// flat interpreter with identical results and trap bytes, a cache-store
/// failure degrades to uncached (still correct) admission, a mid-decode
/// failure rejects cleanly with zero arena residue.
///
/// Compile-time gating: the layer only exists under -DRW_FAULT=ON
/// (RW_FAULT_ENABLED=1, test builds). In the default build every
/// RW_FAULT_POINT collapses to a constant `false` that the optimizer
/// deletes, and FaultInject.cpp contributes zero symbols to the archive
/// (CI asserts this with nm) — production binaries carry no injection
/// machinery at all.
///
/// Thread-safety: seams are armed/disarmed from a quiescent test thread;
/// occurrence counting in shouldFail() is a relaxed atomic, so seams may
/// fire from pool workers and background tier-up threads.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_SUPPORT_FAULTINJECT_H
#define RICHWASM_SUPPORT_FAULTINJECT_H

#include <cstdint>

#ifndef RW_FAULT_ENABLED
#define RW_FAULT_ENABLED 0
#endif

namespace rw::support::fault {

/// The injection seams. Each names one failure mode of the pipeline and
/// the degradation contract its failure must honor.
enum class Seam : uint8_t {
  DecodeAlloc,  ///< Allocation budget charge in wasm::decode / ingest.
  CheckAlloc,   ///< Checker working-state allocation (typing::checkModule).
  LowerAlloc,   ///< Lowering working-state allocation (lower::lowerProgram).
  JitMap,       ///< JIT code-page mmap/mprotect (jit::ModuleJit).
  JitCompile,   ///< JIT function compilation (template emit).
  CacheStore,   ///< cache::AdmissionCache store (verdict or artifact).
  PoolSpawn,    ///< support::ThreadPool worker thread spawn.
};
constexpr unsigned NumSeams = 7;

/// Stable lowercase token for obs counters and test diagnostics.
inline const char *seamName(Seam S) {
  switch (S) {
  case Seam::DecodeAlloc:
    return "decode_alloc";
  case Seam::CheckAlloc:
    return "check_alloc";
  case Seam::LowerAlloc:
    return "lower_alloc";
  case Seam::JitMap:
    return "jit_map";
  case Seam::JitCompile:
    return "jit_compile";
  case Seam::CacheStore:
    return "cache_store";
  case Seam::PoolSpawn:
    return "pool_spawn";
  }
  return "?";
}

#if RW_FAULT_ENABLED

/// True when the injection layer is compiled in (-DRW_FAULT=ON).
constexpr bool compiledIn() { return true; }

/// Counts one occurrence of seam \p S and decides whether to inject a
/// failure there, per the seam's armed policy. Disarmed seams always
/// return false (but still count occurrences).
bool shouldFail(Seam S);

/// Arms \p S to fail exactly once, on the \p Nth occurrence from now
/// (1-based: armNth(S, 1) fails the next occurrence). Resets the seam's
/// occurrence counter.
void armNth(Seam S, uint64_t Nth);

/// Arms \p S to fail every \p Period-th occurrence from now (1 = every
/// occurrence). Resets the seam's occurrence counter.
void armEvery(Seam S, uint64_t Period);

/// Arms \p S to fail each occurrence independently with probability
/// \p PerMille / 1000, from a deterministic per-seam RNG seeded with
/// \p Seed (same seed → same failure sequence).
void armProbability(Seam S, uint32_t PerMille, uint64_t Seed);

void disarm(Seam S);
void disarmAll();

/// Occurrences observed / failures injected since the seam was last
/// armed (or since process start when never armed).
uint64_t occurrences(Seam S);
uint64_t injected(Seam S);

#else // !RW_FAULT_ENABLED — every entry point collapses to nothing.

constexpr bool compiledIn() { return false; }
constexpr bool shouldFail(Seam) { return false; }
inline void armNth(Seam, uint64_t) {}
inline void armEvery(Seam, uint64_t) {}
inline void armProbability(Seam, uint32_t, uint64_t) {}
inline void disarm(Seam) {}
inline void disarmAll() {}
inline uint64_t occurrences(Seam) { return 0; }
inline uint64_t injected(Seam) { return 0; }

#endif // RW_FAULT_ENABLED

} // namespace rw::support::fault

/// The seam probe production code branches on:
///   if (RW_FAULT_POINT(rw::support::fault::Seam::CacheStore)) return;
/// Compiled out, this is a constant false and the branch is deleted.
#define RW_FAULT_POINT(S) (::rw::support::fault::shouldFail(S))

#endif // RICHWASM_SUPPORT_FAULTINJECT_H
