//===- support/SmallVec.h - Small-size-optimized vector ---------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal small-size-optimized vector: the first N elements live inline
/// in the object, so containers that rarely exceed N never touch the heap.
/// The checker's operand stack and binder lists are the motivating users —
/// they are created once per function check and cycle through a few dozen
/// elements, so inline storage removes every steady-state allocation from
/// the admission hot loop (DESIGN.md §7).
///
/// Deliberately not a drop-in std::vector: no copy construction (the
/// checker never copies its stacks — block bodies borrow a segment of the
/// parent stack instead), no insert/erase in the middle, and truncate()
/// instead of resize() (the only shrink operation the stack discipline
/// needs).
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_SUPPORT_SMALLVEC_H
#define RICHWASM_SUPPORT_SMALLVEC_H

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace rw::support {

template <class T, unsigned N> class SmallVec {
public:
  SmallVec() : Data(inlineData()), Size(0), Cap(N) {}
  ~SmallVec() {
    destroyRange(Data, Data + Size);
    if (!isInline())
      ::operator delete(Data);
  }
  SmallVec(const SmallVec &) = delete;
  SmallVec &operator=(const SmallVec &) = delete;

  /// Moves steal the heap buffer when there is one; inline elements are
  /// moved element-wise (their pointers cannot be stolen).
  SmallVec(SmallVec &&O) noexcept : Data(inlineData()), Size(0), Cap(N) {
    takeFrom(O);
  }
  SmallVec &operator=(SmallVec &&O) noexcept {
    if (this == &O)
      return *this;
    destroyRange(Data, Data + Size);
    if (!isInline()) {
      ::operator delete(Data);
      Data = inlineData();
      Cap = N;
    }
    Size = 0;
    takeFrom(O);
    return *this;
  }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }
  size_t capacity() const { return Cap; }

  T *begin() { return Data; }
  T *end() { return Data + Size; }
  const T *begin() const { return Data; }
  const T *end() const { return Data + Size; }

  T &operator[](size_t I) {
    assert(I < Size && "index out of range");
    return Data[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Size && "index out of range");
    return Data[I];
  }
  T &back() {
    assert(Size && "back of empty SmallVec");
    return Data[Size - 1];
  }
  const T &back() const {
    assert(Size && "back of empty SmallVec");
    return Data[Size - 1];
  }

  // push_back is self-alias safe (push_back(v[0]) works even when it
  // grows): the grow path copies the element out before the old buffer
  // is destroyed. The grow path is deliberately out-of-line so the
  // common no-grow push stays small enough to inline everywhere.
  void push_back(const T &V) {
    if (Size == Cap) {
      pushSlow(V);
      return;
    }
    unsafeEmplace(V);
  }
  void push_back(T &&V) {
    if (Size == Cap) {
      pushSlow(std::move(V));
      return;
    }
    unsafeEmplace(std::move(V));
  }

  /// NOT self-alias safe (unlike std::vector): arguments must not
  /// reference elements of this container — grow() would invalidate them
  /// before construction. Use push_back to re-push an element.
  template <class... Args> T &emplace_back(Args &&...A) {
    if (Size == Cap)
      grow(Cap * 2);
    return unsafeEmplace(std::forward<Args>(A)...);
  }

  void pop_back() {
    assert(Size && "pop of empty SmallVec");
    --Size;
    Data[Size].~T();
  }

  /// Destroys every element at index >= NewSize. The only shrink operation:
  /// the checker unwinds block segments by truncating to the block's base.
  void truncate(size_t NewSize) {
    assert(NewSize <= Size && "truncate cannot grow");
    destroyRange(Data + NewSize, Data + Size);
    Size = NewSize;
  }

  void clear() { truncate(0); }

  void reserve(size_t Want) {
    if (Want > Cap)
      grow(Want);
  }

private:
  template <class... Args> T &unsafeEmplace(Args &&...A) {
    T *Slot = Data + Size;
    ::new (static_cast<void *>(Slot)) T(std::forward<Args>(A)...);
    ++Size;
    return *Slot;
  }

  template <class U>
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((noinline))
#endif
  void pushSlow(U &&V) {
    T Tmp(std::forward<U>(V)); // Copy out first: V may alias an element.
    grow(Cap * 2);
    unsafeEmplace(std::move(Tmp));
  }

  void takeFrom(SmallVec &O) {
    if (!O.isInline()) {
      Data = O.Data;
      Size = O.Size;
      Cap = O.Cap;
      O.Data = O.inlineData();
      O.Size = 0;
      O.Cap = N;
      return;
    }
    for (T *Src = O.Data, *E = O.Data + O.Size; Src != E; ++Src) {
      ::new (static_cast<void *>(Data + Size)) T(std::move(*Src));
      ++Size;
      Src->~T();
    }
    O.Size = 0;
  }

  T *inlineData() { return reinterpret_cast<T *>(Inline); }
  bool isInline() const {
    return Data == reinterpret_cast<const T *>(Inline);
  }

  static void destroyRange(T *B, T *E) {
    for (; B != E; ++B)
      B->~T();
  }

  void grow(size_t NewCap) {
    if (NewCap < Cap * 2)
      NewCap = Cap * 2;
    T *NewData = static_cast<T *>(::operator new(NewCap * sizeof(T)));
    T *Dst = NewData;
    for (T *Src = Data, *E = Data + Size; Src != E; ++Src, ++Dst) {
      ::new (static_cast<void *>(Dst)) T(std::move(*Src));
      Src->~T();
    }
    if (!isInline())
      ::operator delete(Data);
    Data = NewData;
    Cap = NewCap;
  }

  T *Data;
  size_t Size;
  size_t Cap;
  alignas(T) unsigned char Inline[N * sizeof(T)];
};

} // namespace rw::support

#endif // RICHWASM_SUPPORT_SMALLVEC_H
