//===- support/Casting.h - isa/cast/dyn_cast templates ----------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled opt-in RTTI in the LLVM style. A class hierarchy participates
/// by exposing a `Kind` discriminator and a static `classof(const Base *)`
/// predicate on each derived class; `isa`, `cast`, and `dyn_cast` then work
/// without enabling compiler RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_SUPPORT_CASTING_H
#define RICHWASM_SUPPORT_CASTING_H

#include <cassert>
#include <memory>
#include <type_traits>

namespace rw {

/// Returns true if \p Val is an instance of class \p To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename From> bool isa(const From &Val) {
  return To::classof(&Val);
}

template <typename To, typename From>
bool isa(const std::shared_ptr<From> &Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val.get());
}

/// Checked downcast: asserts that the dynamic type matches.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To &cast(const From &Val) {
  assert(isa<To>(&Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To &>(Val);
}

template <typename To, typename From>
std::shared_ptr<const To> cast(const std::shared_ptr<const From> &Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return std::static_pointer_cast<const To>(Val);
}

/// Downcast that yields nullptr when the dynamic type does not match.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast(const std::shared_ptr<const From> &Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val.get()) : nullptr;
}

} // namespace rw

#endif // RICHWASM_SUPPORT_CASTING_H
