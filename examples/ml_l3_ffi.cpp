//===- examples/ml_l3_ffi.cpp - Figs 1 & 3: unsafe interop caught ----------===//
//
// The paper's headline demonstration. An ML module provides `stash` (which
// keeps a copy of a linear reference AND returns it) and `get_stashed`; an
// L3 client frees both the returned and the retrieved reference — a double
// free. Neither source checker can see the bug (it spans the language
// boundary), but the compiled RichWasm module fails type checking before
// anything runs. The corrected program links and runs safely.
//
//===----------------------------------------------------------------------===//

#include "l3/L3.h"
#include "link/Link.h"
#include "ml/ML.h"
#include "typing/Checker.h"

#include <cstdio>

using namespace rw;

int main() {
  printf("== Fig 3: unsafe ML/L3 interoperation ==\n\n");
  const char *MLUnsafe =
      "global c = linref [ref int] () ;;\n"
      "export fun stash (r : lin (ref int)) : lin (ref int) = c := r; r ;;\n"
      "export fun get_stashed (u : unit) : lin (ref int) = !c ;;";
  const char *L3Unsafe =
      "import ml.stash : Ref int -o Ref int ;;\n"
      "import ml.get_stashed : unit -o Ref int ;;\n"
      "export fun main (u : unit) : int =\n"
      "  free (split (stash (join (new 42)))) ;\n"
      "  free (split (get_stashed ())) ;; (* would CRASH: double free *)";

  printf("--- ML source (accepted by the ML checker) ---\n%s\n\n", MLUnsafe);
  printf("--- L3 source (accepted by the L3 checker) ---\n%s\n\n", L3Unsafe);

  Expected<ir::Module> ML1 = ml::compileSource("ml", MLUnsafe);
  Expected<ir::Module> L31 = l3::compileSource("l3", L3Unsafe);
  if (!ML1 || !L31) {
    printf("unexpected frontend failure\n");
    return 1;
  }
  printf("both source modules compile: their own type systems cannot see\n"
         "the cross-language double free.\n\n");

  Status S = typing::checkModule(*ML1);
  printf("RichWasm check of the compiled ML module:\n  REJECTED: %s\n\n",
         S.ok() ? "(unexpectedly accepted!)" : S.error().message().c_str());
  printf("`stash` duplicates its linear argument (stores it and returns\n"
         "it); the second get_local of the moved slot no longer matches.\n\n");

  printf("== The corrected program ==\n\n");
  const char *MLSafe =
      "global c = linref [ref int] () ;;"
      "export fun stash (r : lin (ref int)) : unit = c := r ;;"
      "export fun get_stashed (u : unit) : lin (ref int) = !c ;;";
  const char *L3Safe =
      "import ml.stash : Ref int -o unit ;;"
      "import ml.get_stashed : unit -o Ref int ;;"
      "export fun main (u : unit) : int = "
      "  stash (join (new 42)) ; "
      "  free (split (get_stashed ())) ;;";

  Expected<ir::Module> ML2 = ml::compileSource("ml", MLSafe);
  Expected<ir::Module> L32 = l3::compileSource("l3", L3Safe);
  auto Mach = link::instantiate({&*ML2, &*L32});
  if (!Mach) {
    printf("link error: %s\n", Mach.error().message().c_str());
    return 1;
  }
  auto R = (*Mach)->invoke(1, *link::findExport(*L32, "main"), {},
                           {sem::Value::unit()});
  if (!R) {
    printf("run error: %s\n", R.error().message().c_str());
    return 1;
  }
  printf("stash keeps the reference; L3 frees the one it retrieves.\n");
  printf("result: %llu; linear frees: %llu; leaked linear cells: %zu\n",
         (unsigned long long)(*R)[0].bits(),
         (unsigned long long)(*Mach)->store().Mem.FreeCountLin,
         (*Mach)->store().Mem.Lin.size() - 1 /* the linref's option cell */);
  return 0;
}
