//===- examples/observe_admission.cpp - Tracing one cold admission --------===//
//
// The "observing an admission" quickstart (README): run one cold
// N-module admission — batch check, link, lower, validate, flat
// translation, cache store — with the obs layer enabled, then export
//
//   * a Chrome trace_event JSON (open in Perfetto / chrome://tracing)
//     showing every pipeline phase attributed to the worker that ran it;
//   * the obs::snapshot() JSON: phase latency histograms, cache/arena
//     counters, and the per-function execution profiles of a short run;
//   * the same snapshot as Prometheus text exposition (metrics.prom) —
//     what a scraper would pull from a long-running admission server.
//
// Also computes what fraction of the admission's wall time is covered by
// the union of recorded spans (the acceptance bar is >= 95%: the trace
// must explain where the time went, not just sample it) and exits
// non-zero below that, so CI can run this as a smoke test.
//
// Usage: example_observe_admission [num_modules] [trace.json] [stats.json]
//                                  [metrics.prom]
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"

#include "cache/AdmissionCache.h"
#include "link/Link.h"
#include "obs/Obs.h"
#include "support/ThreadPool.h"
#include "typing/Checker.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

using namespace rw;

namespace {

/// [start, end) of one recorded span, microseconds on the global steady
/// clock. Parsed back out of the trace JSON this process just produced —
/// the same bytes a human would load into Perfetto.
struct Interval {
  double Lo, Hi;
};

std::vector<Interval> parseIntervals(const std::string &J) {
  std::vector<Interval> Out;
  const std::string Prefix = "{\"ph\":\"X\",\"name\":\"";
  size_t At = 0;
  while ((At = J.find(Prefix, At)) != std::string::npos) {
    size_t End = J.find('"', At + Prefix.size());
    size_t P = J.find("\"ts\":", End);
    double Ts = std::strtod(J.c_str() + P + 5, nullptr);
    P = J.find("\"dur\":", End);
    double Dur = std::strtod(J.c_str() + P + 6, nullptr);
    Out.push_back({Ts, Ts + Dur});
    At = End;
  }
  return Out;
}

/// Length of the union of \p Ivs clipped to [Lo, Hi] (spans overlap both
/// across threads and by nesting, so summing durations would overcount).
double unionLength(std::vector<Interval> Ivs, double Lo, double Hi) {
  std::sort(Ivs.begin(), Ivs.end(),
            [](const Interval &A, const Interval &B) { return A.Lo < B.Lo; });
  double Covered = 0, At = Lo;
  for (const Interval &I : Ivs) {
    double S = std::max(I.Lo, At), E = std::min(I.Hi, Hi);
    if (E > S) {
      Covered += E - S;
      At = E;
    }
  }
  return Covered;
}

bool writeFile(const char *Path, const std::string &Bytes) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F)
    return false;
  std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  std::fclose(F);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  unsigned N = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 64;
  const char *TracePath = argc > 2 ? argv[2] : "admission_trace.json";
  const char *StatsPath = argc > 3 ? argv[3] : "admission_snapshot.json";
  const char *PromPath = argc > 4 ? argv[4] : "metrics.prom";

  if (!obs::compiledIn()) {
    std::fprintf(stderr, "built with -DRW_OBS=OFF: nothing to observe\n");
    return 2;
  }
  // Equivalent of RW_OBS=1 RW_OBS_TRACE=1 in the environment, forced on
  // so the example is self-contained.
  obs::setEnabled(true);
  obs::setTracing(true);
  obs::clearTrace();
  obs::setThreadName("main");

  rwbench::AdmissionSet Set(N);
  support::ThreadPool Pool;
  cache::AdmissionCache Cache;

  uint64_t T0 = obs::nowNs();
  std::vector<Status> Verdicts = typing::checkModules(Set.Ptrs, Pool, &Cache);
  for (size_t I = 0; I < Verdicts.size(); ++I)
    if (!Verdicts[I].ok()) {
      std::fprintf(stderr, "module %zu rejected: %s\n", I,
                   Verdicts[I].error().message().c_str());
      return 1;
    }
  link::LinkOptions Opts;
  Opts.Cache = &Cache;
  Opts.Engine = wasm::EngineKind::Flat;
  Opts.RunStart = false;
  auto LI = link::instantiateLowered(Set.Ptrs, Opts);
  if (!LI) {
    std::fprintf(stderr, "admission failed: %s\n",
                 LI.error().message().c_str());
    return 1;
  }
  uint64_t T1 = obs::nowNs();

  // A short profiled run so the snapshot carries a FunctionProfile table
  // (the hotness signal a tier-up JIT would consume).
  LI->Instance->enableProfiling();
  (void)LI->Instance->invokeByName("user_pkg_000000.f0_0", {wasm::WValue::i32(1)});

  std::string Trace = obs::traceJson();
  obs::Snapshot Snap = obs::snapshot();
  std::string Stats = obs::renderJson(Snap);
  std::string Prom = obs::renderPrometheus(Snap);
  if (!writeFile(TracePath, Trace) || !writeFile(StatsPath, Stats) ||
      !writeFile(PromPath, Prom)) {
    std::fprintf(stderr, "cannot write output files\n");
    return 1;
  }

  double WallUs = static_cast<double>(T1 - T0) / 1000.0;
  double LoUs = static_cast<double>(T0) / 1000.0;
  double CoveredUs =
      unionLength(parseIntervals(Trace), LoUs, LoUs + WallUs);
  double Pct = WallUs > 0 ? 100.0 * CoveredUs / WallUs : 0.0;

  std::printf("admitted %u modules cold in %.1f us\n", N, WallUs);
  std::printf("trace:    %s (%zu events)\n", TracePath,
              obs::traceEventCount());
  std::printf("snapshot: %s\n", StatsPath);
  std::printf("prom:     %s (scrape target format)\n", PromPath);
  std::printf("span coverage of admission wall time: %.1f%%\n", Pct);
  std::printf("\n%s", obs::renderText(Snap).c_str());

  if (Pct < 95.0) {
    std::fprintf(stderr, "FAIL: span coverage %.1f%% < 95%%\n", Pct);
    return 1;
  }
  return 0;
}
