//===- examples/gc_finalizers.cpp - GC owning linear memory (§3) -----------===//
//
// When a reference into the linear memory is stored in garbage-collected
// memory, the collector *owns* that linear cell: if the unrestricted cell
// becomes unreachable, the linear one is finalized with it. This example
// builds that situation directly with the builder API and watches the
// collector do its job.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "link/Link.h"

#include <cstdio>

using namespace rw;
using namespace rw::ir;
using namespace rw::ir::build;

int main() {
  // main() allocates a linear cell, stores its reference inside an
  // unrestricted cell, and drops the only reference to the latter.
  ir::Module M;
  M.Name = "gc";
  M.Funcs.push_back(function(
      {"main"}, FunType::get({}, arrow({}, {})), {},
      {
          iconst(7),
          structMalloc({Size::constant(32)}, Qual::lin()),
          memUnpack(arrow({}, {}), {},
                    {
                        // The opened linear ref becomes the field of an
                        // unrestricted (GC'd) cell: the GC now owns it.
                        structMalloc({Size::constant(64)}, Qual::unr()),
                        memUnpack(arrow({}, {}), {}, {drop()}),
                    }),
      }));

  link::LinkOptions Opts;
  auto Mach = link::instantiate({&M}, Opts);
  if (!Mach) {
    printf("error: %s\n", Mach.error().message().c_str());
    return 1;
  }
  auto R = (*Mach)->invoke(0, 0, {}, {});
  if (!R) {
    printf("run error: %s\n", R.error().message().c_str());
    return 1;
  }

  const sem::Memory &Mem = (*Mach)->store().Mem;
  printf("before collect: %zu unrestricted, %zu linear cells live\n",
         Mem.Unr.size(), Mem.Lin.size());

  uint64_t Reclaimed = (*Mach)->collect();
  printf("collect() reclaimed %llu cells\n", (unsigned long long)Reclaimed);
  printf("after collect:  %zu unrestricted, %zu linear cells live\n",
         Mem.Unr.size(), Mem.Lin.size());
  printf("collected unrestricted: %llu, finalized linear: %llu\n",
         (unsigned long long)Mem.CollectedUnr,
         (unsigned long long)Mem.FinalizedLin);
  printf("\nThe linear cell was never manually freed — the collector\n"
         "finalized it when its GC'd owner died (the paper's finalizer\n"
         "story for linear memory owned by the unrestricted heap).\n");
  return 0;
}
