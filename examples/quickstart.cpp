//===- examples/quickstart.cpp - RichWasm in five minutes ------------------===//
//
// Builds a RichWasm module with the C++ builder API, type-checks it, runs
// it on the small-step machine, then compiles it to WebAssembly and runs
// the binary on both execution engines (the tree-walking reference
// interpreter and the flat-bytecode engine).
//
//   cmake --build build && ./build/example_quickstart
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "ir/Print.h"
#include "link/Link.h"
#include "lower/Lower.h"
#include "typing/Checker.h"
#include "wasm/Binary.h"
#include "wasm/Interp.h"
#include "wasm/Validate.h"

#include <cstdio>

using namespace rw;
using namespace rw::ir;
using namespace rw::ir::build;

int main() {
  // A module with one exported function:
  //   triple_plus(x) = let cell = new lin cell holding x in
  //                    3*x read back from the cell, freed manually.
  ir::Module M;
  M.Name = "quickstart";
  M.Funcs.push_back(function(
      {"triple"}, FunType::get({}, arrow({i32T()}, {i32T()})),
      {Size::constant(32)},
      {
          getLocal(0, Qual::unr()),
          structMalloc({Size::constant(32)}, Qual::lin()), // a linear cell
          memUnpack(arrow({}, {i32T()}), {{1, i32T()}},
                    {
                        structGet(0),  // read it back
                        setLocal(1),   // stash
                        structFree(),  // manual free — checked statically!
                        getLocal(1, Qual::unr()),
                        iconst(3),
                        mulI32(),
                    }),
      }));

  printf("== RichWasm module ==\n%s\n", printModule(M).c_str());

  // 1. The type checker guarantees memory safety before anything runs.
  Status Check = typing::checkModule(M);
  printf("type check: %s\n", Check.ok() ? "OK" : Check.error().message().c_str());
  if (!Check.ok())
    return 1;

  // 2. Run on the RichWasm small-step machine.
  auto Mach = link::instantiate({&M});
  if (!Mach) {
    printf("link error: %s\n", Mach.error().message().c_str());
    return 1;
  }
  auto R = (*Mach)->invoke(0, 0, {}, {sem::Value::i32(14)});
  printf("machine: triple(14) = %llu  (steps: %llu, lin cells live: %zu)\n",
         (unsigned long long)(*R)[0].bits(),
         (unsigned long long)(*Mach)->stepCount(),
         (*Mach)->store().Mem.Lin.size());

  // 3. Compile to WebAssembly, validate, encode to binary, run.
  auto LP = lower::lowerProgram({&M});
  if (!LP) {
    printf("lowering error: %s\n", LP.error().message().c_str());
    return 1;
  }
  Status V = wasm::validate(LP->Module);
  printf("wasm validate: %s\n", V.ok() ? "OK" : V.error().message().c_str());
  std::vector<uint8_t> Bytes = wasm::encode(LP->Module);
  printf("wasm binary: %zu bytes\n", Bytes.size());

  auto M2 = wasm::decode(Bytes);
  wasm::WasmInstance Inst(*M2);
  (void)Inst.initialize();
  auto W = Inst.invokeByName("quickstart.triple", {wasm::WValue::i32(14)});
  printf("wasm (tree): triple(14) = %u  (instructions executed: %llu)\n",
         (*W)[0].asU32(), (unsigned long long)Inst.instrCount());

  // 4. The same module on the flat-bytecode engine: identical embedder
  //    surface, selected by EngineKind (or LinkOptions::Engine when
  //    going through link::instantiateLowered).
  auto Flat = wasm::createInstance(*M2, wasm::EngineKind::Flat);
  (void)Flat->initialize();
  auto WF = Flat->invokeByName("quickstart.triple", {wasm::WValue::i32(14)});
  printf("wasm (%s): triple(14) = %u  (instructions executed: %llu)\n",
         wasm::engineKindName(Flat->engine()), (*WF)[0].asU32(),
         (unsigned long long)Flat->instrCount());
  return 0;
}
