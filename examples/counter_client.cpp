//===- examples/counter_client.cpp - Fig 9: the Counter/Client layout ------===//
//
// The paper's §4.2 example: a performance-critical library written in the
// manually-managed language (L3) — here, a mutable counter — used by
// higher-level logic written in the GC'd language (ML), which hides the
// linearity behind an interface. GC'd code references linear values, which
// in turn live alongside shared mutable configuration state.
//
//===----------------------------------------------------------------------===//

#include "l3/L3.h"
#include "link/Link.h"
#include "lower/Lower.h"
#include "ml/ML.h"
#include "wasm/Interp.h"
#include "wasm/Validate.h"

#include <cstdio>

using namespace rw;

// The linear counter library (L3): allocation, increment, and destruction
// of a manually-managed cell.
static const char *CounterLib =
    "export fun make (n : int) : Ref int = join (new n) ;;"
    "export fun bump (r : Ref int) : Ref int = "
    "  let (old, c) = swap (split r) 0 in "
    "  let (z, c2) = swap c (old + 1) in "
    "  join c2 ;;"
    "export fun finish (r : Ref int) : int = free (split r) ;;";

// The GC'd client (ML): stores the linear counter in a ref_to_lin cell and
// exposes a linearity-free interface driven by shared mutable config.
static const char *Client =
    "import lib.make : int -> lin (ref int) ;;"
    "import lib.bump : lin (ref int) -> lin (ref int) ;;"
    "import lib.finish : lin (ref int) -> int ;;"
    "global cell = linref [ref int] () ;;"
    "global rate = ref 1 ;;"
    "export fun init (u : unit) : unit = cell := make 0 ;;"
    "fun ntimes (n : int) : unit = "
    "  if n = 0 then () else (cell := bump !cell; ntimes (n - 1)) ;;"
    "export fun tick (u : unit) : unit = ntimes !rate ;;"
    "export fun set_rate (n : int) : unit = rate := n ;;"
    "export fun total (u : unit) : int = finish !cell ;;";

int main() {
  Expected<ir::Module> Lib = l3::compileSource("lib", CounterLib);
  if (!Lib) {
    printf("L3 error: %s\n", Lib.error().message().c_str());
    return 1;
  }
  Expected<ir::Module> App = ml::compileSource("app", Client);
  if (!App) {
    printf("ML error: %s\n", App.error().message().c_str());
    return 1;
  }

  // Link: the RichWasm checker validates each module and every boundary.
  auto Mach = link::instantiate({&*Lib, &*App});
  if (!Mach) {
    printf("link error: %s\n", Mach.error().message().c_str());
    return 1;
  }
  auto Call = [&](const char *Name,
                  sem::Value Arg) -> Expected<std::vector<sem::Value>> {
    return (*Mach)->invoke(1, *link::findExport(*App, Name), {}, {Arg});
  };

  printf("== Fig 9 counter/client on the RichWasm machine ==\n");
  (void)Call("init", sem::Value::unit());
  (void)Call("tick", sem::Value::unit()); // +1
  (void)Call("set_rate", sem::Value::i32(5));
  (void)Call("tick", sem::Value::unit()); // +5
  (void)Call("tick", sem::Value::unit()); // +5
  auto Total = Call("total", sem::Value::unit());
  printf("total after ticks at rates [1,5,5]: %llu (expected 11)\n",
         (unsigned long long)(*Total)[0].bits());
  printf("linear cells remaining: %zu (the emptied linref option)\n",
         (*Mach)->store().Mem.Lin.size());
  printf("linear frees performed: %llu\n",
         (unsigned long long)(*Mach)->store().Mem.FreeCountLin);

  // The same program compiled to one Wasm module.
  printf("\n== Same program lowered to WebAssembly ==\n");
  auto LP = lower::lowerProgram({&*Lib, &*App});
  if (!LP) {
    printf("lowering error: %s\n", LP.error().message().c_str());
    return 1;
  }
  Status V = wasm::validate(LP->Module);
  printf("wasm validate: %s\n", V.ok() ? "OK" : V.error().message().c_str());
  wasm::WasmInstance Inst(LP->Module);
  (void)Inst.initialize();
  (void)Inst.invokeByName("app.init", {});
  (void)Inst.invokeByName("app.tick", {});
  (void)Inst.invokeByName("app.set_rate", {wasm::WValue::i32(5)});
  (void)Inst.invokeByName("app.tick", {});
  (void)Inst.invokeByName("app.tick", {});
  auto W = Inst.invokeByName("app.total", {});
  printf("total: %u (expected 11); live heap cells: %u\n", (*W)[0].asU32(),
         Inst.global(LP->Runtime.GLive).asU32());
  return 0;
}
