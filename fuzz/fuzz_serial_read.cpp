//===- fuzz/fuzz_serial_read.cpp - libFuzzer target for serial::read ------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Totality harness for the RichWasm wire-format reader. A private arena
// per input keeps rejected payloads from growing any shared state; a
// payload that reads back must re-serialize and hash without UB.
//
//===----------------------------------------------------------------------===//

#include "ir/TypeArena.h"
#include "serial/Serial.h"

#include <cstddef>
#include <cstdint>
#include <memory>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::vector<uint8_t> Bytes(Data, Data + Size);
  auto Arena = std::make_shared<rw::ir::TypeArena>();
  rw::Expected<rw::ir::Module> M = rw::serial::read(Bytes, Arena);
  if (M) {
    (void)rw::serial::write(*M);
    (void)rw::serial::moduleHash(*M);
  }
  return 0;
}
