//===- fuzz/fuzz_wasm_decode.cpp - libFuzzer target for wasm::decode ------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Totality harness for the hardened binary decoder: any byte string must
// either decode (in which case it must also re-encode and validate without
// UB) or produce a structured rejection — never crash, never allocate past
// the Limits budget. Build with -DRW_FUZZ=ON under Clang; seed with
// `make_corpus <dir>` plus fuzz/corpus/regression/.
//
//===----------------------------------------------------------------------===//

#include "wasm/Binary.h"
#include "wasm/Validate.h"

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::vector<uint8_t> Bytes(Data, Data + Size);
  rw::ingest::Limits L;
  // Keep single-input cost small so the fuzzer explores structure instead
  // of grinding big allocations.
  L.MaxModuleBytes = 1 << 20;
  L.MaxTotalAlloc = 16u << 20;
  rw::ingest::IngestError E;
  rw::Expected<rw::wasm::WModule> M = rw::wasm::decode(Bytes, L, &E);
  if (M) {
    // Anything that decodes must survive the rest of the trusted-side
    // contract: re-encoding and validation are total on decoder output.
    (void)rw::wasm::encode(*M);
    (void)rw::wasm::validate(*M, L.MaxOperandDepth);
  }
  return 0;
}
