//===- fuzz/fuzz_ingest_admit.cpp - libFuzzer target for ingest::admit ----===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// End-to-end totality harness for the whole front door: decode → validate
// → check → link → lower → translate → instantiate on arbitrary bytes,
// both container routes. RunStart is off so hostile start functions cost
// no fuel; everything up to and including instance initialization runs.
//
//===----------------------------------------------------------------------===//

#include "ingest/Ingest.h"

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::vector<uint8_t> Bytes(Data, Data + Size);
  rw::ingest::Limits L;
  L.MaxModuleBytes = 1 << 20;
  L.MaxTotalAlloc = 16u << 20;
  rw::link::LinkOptions Opts;
  Opts.RunStart = false;
  rw::ingest::IngestError E;
  rw::Expected<rw::ingest::AdmittedModule> A =
      rw::ingest::admit(Bytes, L, Opts, &E);
  (void)A;
  return 0;
}
