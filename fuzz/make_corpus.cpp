//===- fuzz/make_corpus.cpp - Seed-corpus generator for the fuzz targets --===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Writes the seed corpus into the directory given as argv[1]: real
// admissible inputs for both container routes — wasm::encode of lowered
// bench/example workloads and serial::write of the RichWasm modules —
// plus a handful of small adversarial shapes (truncations, overlong LEBs,
// hostile counts) mirroring fuzz/corpus/regression/. Seeding with valid
// modules is what lets the fuzzer mutate *deep* structure instead of
// spending its budget rediscovering the header.
//
// Usage: make_corpus <output-dir>
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"
#include "bench/ServerMix.h"
#include "lower/Lower.h"
#include "serial/Serial.h"
#include "wasm/Binary.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace rw;

namespace {

bool writeFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  if (!Bytes.empty())
    std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  std::fclose(F);
  return true;
}

std::vector<uint8_t> lowerAndEncode(const ir::Module &M) {
  Expected<lower::LoweredProgram> LP = lower::lowerProgram({&M}, {});
  if (!LP) {
    std::fprintf(stderr, "lowering failed: %s\n",
                 LP.error().message().c_str());
    return {};
  }
  return wasm::encode(LP->Module);
}

} // namespace

int main(int argc, char **argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  std::string Dir = argv[1];
  int Failures = 0;
  auto Emit = [&](const char *Name, const std::vector<uint8_t> &Bytes) {
    if (Bytes.empty() || !writeFile(Dir + "/" + Name, Bytes)) {
      std::fprintf(stderr, "failed to write %s\n", Name);
      ++Failures;
    }
  };

  // Wasm-route seeds: lowered bench workloads (loops, linear allocation,
  // wide multi-function modules) cover blocks, calls, memory, globals,
  // exports, and data in real proportions.
  Emit("wasm_loop.bin", lowerAndEncode(rwbench::loopModule(10)));
  Emit("wasm_alloc_lin.bin", lowerAndEncode(rwbench::allocModule(4, true)));
  Emit("wasm_alloc_unr.bin", lowerAndEncode(rwbench::allocModule(4, false)));
  Emit("wasm_wide.bin", lowerAndEncode(rwbench::wideModule(6)));

  // RichWasm-route seeds: the same modules on the wire format.
  Emit("serial_loop.bin", serial::write(rwbench::loopModule(10)));
  Emit("serial_alloc.bin", serial::write(rwbench::allocModule(4, true)));
  Emit("serial_wide.bin", serial::write(rwbench::wideModule(6)));

  // Adversarial shapes (kept in sync with fuzz/corpus/regression/).
  Emit("adv_empty_wasm.bin",
       {0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00});
  // Truncated header.
  Emit("adv_truncated_magic.bin", {0x00, 0x61, 0x73});
  // Type section claiming 2^32-1 entries in 5 bytes.
  Emit("adv_hostile_count.bin",
       {0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00, 0x01, 0x05, 0xff,
        0xff, 0xff, 0xff, 0x0f});
  // Overlong (zero-padded) LEB section size.
  Emit("adv_overlong_leb.bin",
       {0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00, 0x01, 0x80, 0x00});
  // Serial header with a corrupt checksum.
  Emit("adv_serial_badsum.bin",
       {'R', 'W', 'B', 'M', 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        0x00, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x00, 0x00, 0x00,
        0x00});

  // c7 server-mix seeds: the admission-server simulation's hot universe
  // and its deterministic adversarial mutator (bench/ServerMix.h) feed
  // the same front door the fuzzer attacks, so its payloads are ideal
  // deep-structure seeds. Two hot payloads plus one mutant per mutation
  // class (truncate / bitflip / magic / zero-run / splice).
  std::vector<uint8_t> Hot0 = serial::write(rwbench::serverModule(0));
  Emit("serial_server_hot0.bin", Hot0);
  Emit("serial_server_hot1.bin", serial::write(rwbench::serverModule(1)));
  for (uint64_t Class = 0; Class < 5; ++Class) {
    // Scan seeds until the mutator's class draw lands on each class, so
    // the emitted set covers the whole battery deterministically.
    for (uint64_t Seed = 0;; ++Seed) {
      uint64_t S = 0xadee5eedull + Seed;
      uint64_t Probe = S;
      if (rwbench::splitmix64(Probe) % 5 != Class)
        continue;
      Emit(("adv_servermix_" + std::to_string(Class) + ".bin").c_str(),
           rwbench::serverMutate(Hot0, S));
      break;
    }
  }

  if (Failures) {
    std::fprintf(stderr, "%d corpus seeds failed\n", Failures);
    return 1;
  }
  std::printf("seed corpus written to %s\n", Dir.c_str());
  return 0;
}
